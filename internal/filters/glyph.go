package filters

import (
	"context"
	"math"

	"chatvis/internal/data"
	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// GlyphType selects the glyph source geometry.
type GlyphType int

// Glyph source shapes supported by the Glyph filter (the paper's
// experiments use cones).
const (
	GlyphCone GlyphType = iota
	GlyphArrow
	GlyphSphere
)

func (g GlyphType) String() string {
	switch g {
	case GlyphCone:
		return "Cone"
	case GlyphArrow:
		return "Arrow"
	case GlyphSphere:
		return "Sphere"
	}
	return "Unknown"
}

// GlyphOptions configures glyph placement, mirroring ParaView's Glyph
// proxy defaults.
type GlyphOptions struct {
	// Type of glyph geometry (default cone).
	Type GlyphType
	// OrientationArray names the vector field used to orient glyphs
	// (empty: no orientation).
	OrientationArray string
	// ScaleFactor multiplies the base glyph size (default: 5% of the input
	// diagonal).
	ScaleFactor float64
	// Stride places a glyph every Stride-th point (default: chosen so at
	// most MaxGlyphs glyphs are produced).
	Stride int
	// MaxGlyphs bounds the number of glyphs when Stride is 0 (default
	// 500, ParaView's "Uniform Spatial Distribution" default count scale).
	MaxGlyphs int
	// Resolution is the facet count of cones/spheres (default 12).
	Resolution int
}

func (o GlyphOptions) withDefaults(pd *data.PolyData) GlyphOptions {
	if o.ScaleFactor <= 0 {
		o.ScaleFactor = pd.Bounds().Diagonal() * 0.05
		if o.ScaleFactor == 0 {
			o.ScaleFactor = 0.05
		}
	}
	if o.MaxGlyphs <= 0 {
		o.MaxGlyphs = 500
	}
	if o.Stride <= 0 {
		o.Stride = (pd.NumPoints() + o.MaxGlyphs - 1) / o.MaxGlyphs
		if o.Stride < 1 {
			o.Stride = 1
		}
	}
	if o.Resolution < 3 {
		o.Resolution = 12
	}
	return o
}

// Glyph instances oriented glyph geometry at (a subsample of) the input
// points, like VTK's Glyph3D. Point data of the source point is copied to
// every vertex of its glyph so color mapping carries over.
func Glyph(pd *data.PolyData, opt GlyphOptions) *data.PolyData {
	out, _ := GlyphContext(context.Background(), pd, opt)
	return out
}

// GlyphContext is Glyph with cancellation. Instances are independent and
// their output slots are preallocated, so instancing parallelizes over
// the par worker pool with byte-identical output for any worker count.
func GlyphContext(ctx context.Context, pd *data.PolyData, opt GlyphOptions) (*data.PolyData, error) {
	opt = opt.withDefaults(pd)
	out := data.NewPolyData()
	var srcFields, outFields []*data.Field
	for i := 0; i < pd.Points.Len(); i++ {
		f := pd.Points.At(i)
		srcFields = append(srcFields, f)
		outFields = append(outFields, data.NewField(f.Name, f.NumComponents, 0))
	}
	var orient *data.Field
	if opt.OrientationArray != "" {
		orient = pd.Points.Get(opt.OrientationArray)
		if orient != nil && orient.NumComponents != 3 {
			orient = nil
		}
	}
	proto := glyphSource(opt.Type, opt.Resolution)
	numGlyphs := (pd.NumPoints() + opt.Stride - 1) / opt.Stride
	protoPts, protoPolys := len(proto.Pts), len(proto.Polys)

	// Every glyph owns a fixed slot in the output arrays, including a
	// disjoint range of one flat connectivity slab — workers fill their
	// ranges without touching a shared allocator.
	protoOff := make([]int, protoPolys)
	protoConnLen := 0
	for pi, poly := range proto.Polys {
		protoOff[pi] = protoConnLen
		protoConnLen += len(poly)
	}
	conn := make([]int, numGlyphs*protoConnLen)
	out.Pts = make([]vmath.Vec3, numGlyphs*protoPts)
	out.Polys = make([][]int, numGlyphs*protoPolys)
	for fi, f := range srcFields {
		outFields[fi].Data = make([]float64, numGlyphs*protoPts*f.NumComponents)
	}

	err := par.For(ctx, numGlyphs, func(start, end int) {
		for g := start; g < end; g++ {
			i := g * opt.Stride
			dir := vmath.V(1, 0, 0)
			if orient != nil {
				v := orient.Vec3(i)
				if v.Len() > 1e-12 {
					dir = v.Norm()
				}
			}
			rot := rotationTo(dir)
			base := g * protoPts
			for pi, p := range proto.Pts {
				out.Pts[base+pi] = pd.Pts[i].Add(rot.MulDir(p.Mul(opt.ScaleFactor)))
				for fi, f := range srcFields {
					nf := outFields[fi]
					nc := f.NumComponents
					copy(nf.Data[(base+pi)*nc:(base+pi+1)*nc], f.Data[i*nc:(i+1)*nc])
				}
			}
			for pi, poly := range proto.Polys {
				off := g*protoConnLen + protoOff[pi]
				ids := conn[off : off+len(poly) : off+len(poly)]
				for j, id := range poly {
					ids[j] = base + id
				}
				out.Polys[g*protoPolys+pi] = ids
			}
		}
	})
	if err != nil {
		return nil, err
	}
	for _, nf := range outFields {
		out.Points.Add(nf)
	}
	return out, nil
}

// rotationTo returns a rotation carrying +X onto dir (glyph prototypes
// point along +X, following VTK's cone/arrow sources).
func rotationTo(dir vmath.Vec3) vmath.Mat4 {
	x := vmath.V(1, 0, 0)
	d := dir.Norm()
	axis := x.Cross(d)
	s := axis.Len()
	c := vmath.Clamp(x.Dot(d), -1, 1)
	if s < 1e-12 {
		if c > 0 {
			return vmath.Identity()
		}
		// 180 degrees: rotate about any axis orthogonal to X.
		return vmath.RotateAxis(vmath.V(0, 0, 1), math.Pi)
	}
	return vmath.RotateAxis(axis.Mul(1/s), math.Atan2(s, c))
}

// glyphSource builds the unit prototype geometry for a glyph type,
// pointing along +X and centred per VTK conventions.
func glyphSource(t GlyphType, res int) *data.PolyData {
	pd := data.NewPolyData()
	switch t {
	case GlyphSphere:
		// Latitude-longitude sphere of radius 0.5.
		stacks := res / 2
		if stacks < 2 {
			stacks = 2
		}
		for st := 0; st <= stacks; st++ {
			phi := math.Pi * float64(st) / float64(stacks)
			for sl := 0; sl < res; sl++ {
				th := 2 * math.Pi * float64(sl) / float64(res)
				pd.AddPoint(vmath.V(
					0.5*math.Cos(phi),
					0.5*math.Sin(phi)*math.Cos(th),
					0.5*math.Sin(phi)*math.Sin(th)))
			}
		}
		at := func(st, sl int) int { return st*res + sl%res }
		for st := 0; st < stacks; st++ {
			for sl := 0; sl < res; sl++ {
				pd.AddPoly(at(st, sl), at(st, sl+1), at(st+1, sl+1), at(st+1, sl))
			}
		}
	case GlyphArrow:
		// Shaft (thin cylinder) + head (cone), total length 1 along +X.
		shaftR, headR := 0.03, 0.1
		shaftLen := 0.65
		tip := pd.AddPoint(vmath.V(1, 0, 0))
		tail := pd.AddPoint(vmath.V(0, 0, 0))
		headBase := make([]int, res)
		shaft0 := make([]int, res)
		shaft1 := make([]int, res)
		for s := 0; s < res; s++ {
			ang := 2 * math.Pi * float64(s) / float64(res)
			cy, cz := math.Cos(ang), math.Sin(ang)
			headBase[s] = pd.AddPoint(vmath.V(shaftLen, headR*cy, headR*cz))
			shaft0[s] = pd.AddPoint(vmath.V(0, shaftR*cy, shaftR*cz))
			shaft1[s] = pd.AddPoint(vmath.V(shaftLen, shaftR*cy, shaftR*cz))
		}
		for s := 0; s < res; s++ {
			sn := (s + 1) % res
			pd.AddTriangle(tip, headBase[s], headBase[sn])
			pd.AddTriangle(tail, shaft0[sn], shaft0[s])
			pd.AddPoly(shaft0[s], shaft0[sn], shaft1[sn], shaft1[s])
			pd.AddPoly(headBase[s], headBase[sn], shaft1[sn], shaft1[s])
		}
	default: // GlyphCone
		// Cone of length 1 along +X, base radius 0.3, centred like VTK's
		// ConeSource (center at origin, so base at -0.5, tip at +0.5).
		tip := pd.AddPoint(vmath.V(0.5, 0, 0))
		center := pd.AddPoint(vmath.V(-0.5, 0, 0))
		ring := make([]int, res)
		for s := 0; s < res; s++ {
			ang := 2 * math.Pi * float64(s) / float64(res)
			ring[s] = pd.AddPoint(vmath.V(-0.5, 0.3*math.Cos(ang), 0.3*math.Sin(ang)))
		}
		for s := 0; s < res; s++ {
			sn := (s + 1) % res
			pd.AddTriangle(tip, ring[s], ring[sn])
			pd.AddTriangle(center, ring[sn], ring[s])
		}
	}
	return pd
}
