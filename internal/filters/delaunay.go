package filters

import (
	"fmt"
	"math"
	"sort"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

// delTet is a tetrahedron during Bowyer–Watson insertion with its cached
// circumsphere.
type delTet struct {
	v      [4]int
	center vmath.Vec3
	r2     float64
	alive  bool
}

// circumsphere computes the circumcenter and squared radius of (a,b,c,d).
// ok is false for (nearly) degenerate tetrahedra.
func circumsphere(a, b, c, d vmath.Vec3) (center vmath.Vec3, r2 float64, ok bool) {
	// Solve 2*(x-a)·(b-a) = |b|²-|a|² style system relative to a.
	ab := b.Sub(a)
	ac := c.Sub(a)
	ad := d.Sub(a)
	// Matrix rows: ab, ac, ad; rhs: half squared lengths.
	rhs := vmath.V(ab.Len2()/2, ac.Len2()/2, ad.Len2()/2)
	det := ab.Dot(ac.Cross(ad))
	if math.Abs(det) < 1e-14 {
		return center, 0, false
	}
	// Cramer's rule with the cross-product form of the inverse.
	inv := 1 / det
	u := ac.Cross(ad).Mul(rhs.X)
	v := ad.Cross(ab).Mul(rhs.Y)
	w := ab.Cross(ac).Mul(rhs.Z)
	rel := u.Add(v).Add(w).Mul(inv)
	center = a.Add(rel)
	r2 = rel.Len2()
	return center, r2, true
}

// Delaunay3D computes the three-dimensional Delaunay tetrahedralization of
// the input points using incremental Bowyer–Watson insertion, as VTK's
// Delaunay3D filter does. Point data from the input is carried over
// unchanged (the output references the same point set in the same order).
func Delaunay3D(ds data.Dataset) (*data.UnstructuredGrid, error) {
	n := ds.NumPoints()
	if n < 4 {
		return nil, fmt.Errorf("filters: delaunay3d: need at least 4 points, have %d", n)
	}
	pts := make([]vmath.Vec3, n)
	for i := 0; i < n; i++ {
		pts[i] = ds.Point(i)
	}
	bounds := ds.Bounds()
	diag := bounds.Diagonal()
	if diag == 0 {
		return nil, fmt.Errorf("filters: delaunay3d: degenerate point cloud")
	}
	// Deterministic symbolic-perturbation jitter for the predicates only;
	// output geometry keeps the original coordinates.
	jittered := make([]vmath.Vec3, n)
	for i, p := range pts {
		h := uint64(i)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
		j := func(shift uint) float64 {
			return (float64((h>>shift)&0xffff)/65535 - 0.5) * diag * 1e-7
		}
		jittered[i] = p.Add(vmath.V(j(0), j(16), j(32)))
	}
	// Super-tetrahedron comfortably containing everything.
	c := bounds.Center()
	s := diag * 20
	super := [4]vmath.Vec3{
		c.Add(vmath.V(0, 0, 3*s)),
		c.Add(vmath.V(-2*s, -s, -s)),
		c.Add(vmath.V(2*s, -s, -s)),
		c.Add(vmath.V(0, 2*s, -s)),
	}
	all := append(append([]vmath.Vec3{}, jittered...), super[0], super[1], super[2], super[3])
	superBase := n

	var tets []delTet
	addTet := func(a, b, cc, d int) error {
		ctr, r2, ok := circumsphere(all[a], all[b], all[cc], all[d])
		if !ok {
			// Degenerate sliver caused by coplanar inputs: skip it; the
			// cavity fill from neighbouring faces still covers the region.
			return nil
		}
		tets = append(tets, delTet{v: [4]int{a, b, cc, d}, center: ctr, r2: r2, alive: true})
		return nil
	}
	if err := addTet(superBase, superBase+1, superBase+2, superBase+3); err != nil {
		return nil, err
	}

	type face struct{ a, b, c int }
	canon := func(a, b, c int) face {
		v := []int{a, b, c}
		sort.Ints(v)
		return face{v[0], v[1], v[2]}
	}

	for pi := 0; pi < n; pi++ {
		p := all[pi]
		// Find all alive tets whose circumsphere contains p.
		faceCount := make(map[face]int)
		found := false
		for ti := range tets {
			t := &tets[ti]
			if !t.alive {
				continue
			}
			if p.Sub(t.center).Len2() <= t.r2*(1+1e-12) {
				t.alive = false
				found = true
				v := t.v
				for _, f := range [4][3]int{
					{v[0], v[1], v[2]}, {v[0], v[1], v[3]},
					{v[0], v[2], v[3]}, {v[1], v[2], v[3]},
				} {
					faceCount[canon(f[0], f[1], f[2])]++
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("filters: delaunay3d: point %d not inside any circumsphere (numerical failure)", pi)
		}
		// Cavity boundary = faces used exactly once; connect p to each.
		for f, cnt := range faceCount {
			if cnt == 1 {
				if err := addTet(f.a, f.b, f.c, pi); err != nil {
					return nil, err
				}
			}
		}
		// Periodic compaction keeps the scan cost bounded.
		if len(tets) > 4*n+1024 {
			compact := tets[:0]
			for _, t := range tets {
				if t.alive {
					compact = append(compact, t)
				}
			}
			tets = compact
		}
	}

	out := data.NewUnstructuredGrid()
	out.Pts = append(out.Pts, pts...)
	out.Points = ds.PointData().Clone()
	for _, t := range tets {
		if !t.alive {
			continue
		}
		usesSuper := false
		for _, v := range t.v {
			if v >= superBase {
				usesSuper = true
				break
			}
		}
		if usesSuper {
			continue
		}
		// Keep positive orientation for downstream volume math.
		a, b, cc, d := t.v[0], t.v[1], t.v[2], t.v[3]
		if TetVolume(pts[a], pts[b], pts[cc], pts[d]) < 0 {
			b, cc = cc, b
		}
		out.AddCell(data.CellTetra, a, b, cc, d)
	}
	if out.NumCells() == 0 {
		return nil, fmt.Errorf("filters: delaunay3d: triangulation produced no tetrahedra")
	}
	return out, nil
}
