package filters

import (
	"context"
	"fmt"
	"sort"

	"chatvis/internal/data"
	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// clipPointSet accumulates clip output points identified by canonical
// keys: a kept source point i is {i,i}; a cut edge (i,j) is {min,max}.
// Values are always computed from the canonical edge orientation, so
// chunk-local sets merge into exactly the numbering a serial sweep
// produces.
type clipPointSet struct {
	srcPts    []vmath.Vec3
	srcFields []*data.Field
	plane     vmath.Plane

	pts    []vmath.Vec3
	keys   [][2]int
	fields []*data.Field // output data, parallel to srcFields
	index  map[[2]int]int
}

func newClipPointSet(srcPts []vmath.Vec3, fs *data.FieldSet, plane vmath.Plane) *clipPointSet {
	cp := &clipPointSet{srcPts: srcPts, plane: plane, index: make(map[[2]int]int)}
	for i := 0; i < fs.Len(); i++ {
		f := fs.At(i)
		cp.srcFields = append(cp.srcFields, f)
		cp.fields = append(cp.fields, data.NewField(f.Name, f.NumComponents, 0))
	}
	return cp
}

// keep returns the output id of source point i, copying it on first use.
func (cp *clipPointSet) keep(i int) int {
	key := [2]int{i, i}
	if id, ok := cp.index[key]; ok {
		return id
	}
	id := len(cp.pts)
	cp.pts = append(cp.pts, cp.srcPts[i])
	for fi, f := range cp.srcFields {
		nf := cp.fields[fi]
		for c := 0; c < f.NumComponents; c++ {
			nf.Data = append(nf.Data, f.Value(i, c))
		}
	}
	cp.index[key] = id
	cp.keys = append(cp.keys, key)
	return id
}

// cut returns the output id of the plane crossing on edge (i,j),
// interpolating it on first use.
func (cp *clipPointSet) cut(i, j int) int {
	key := [2]int{i, j}
	if j < i {
		key = [2]int{j, i}
	}
	if id, ok := cp.index[key]; ok {
		return id
	}
	di := cp.plane.Eval(cp.srcPts[key[0]])
	dj := cp.plane.Eval(cp.srcPts[key[1]])
	t := 0.5
	if di != dj {
		t = di / (di - dj)
	}
	id := len(cp.pts)
	cp.pts = append(cp.pts, cp.srcPts[key[0]].Lerp(cp.srcPts[key[1]], t))
	for fi, f := range cp.srcFields {
		nf := cp.fields[fi]
		for c := 0; c < f.NumComponents; c++ {
			v0, v1 := f.Value(key[0], c), f.Value(key[1], c)
			nf.Data = append(nf.Data, v0+t*(v1-v0))
		}
	}
	cp.index[key] = id
	cp.keys = append(cp.keys, key)
	return id
}

// absorb merges a chunk-local point set into cp (in the chunk's creation
// order) and returns the local→global id remap. First use wins, exactly
// as in a serial sweep.
func (cp *clipPointSet) absorb(ch *clipPointSet) []int {
	remap := make([]int, len(ch.pts))
	for li, key := range ch.keys {
		if gid, ok := cp.index[key]; ok {
			remap[li] = gid
			continue
		}
		gid := len(cp.pts)
		cp.pts = append(cp.pts, ch.pts[li])
		for fi, gf := range cp.fields {
			cf := ch.fields[fi]
			nc := cf.NumComponents
			gf.Data = append(gf.Data, cf.Data[li*nc:(li+1)*nc]...)
		}
		cp.index[key] = gid
		cp.keys = append(cp.keys, key)
		remap[li] = gid
	}
	return remap
}

// planeDistances evaluates the plane at every point, in parallel.
func planeDistances(ctx context.Context, pts []vmath.Vec3, plane vmath.Plane) ([]float64, error) {
	dist := make([]float64, len(pts))
	err := par.For(ctx, len(pts), func(start, end int) {
		for i := start; i < end; i++ {
			dist[i] = plane.Eval(pts[i])
		}
	})
	if err != nil {
		return nil, err
	}
	return dist, nil
}

// ClipPolyData clips a triangulated surface with a plane, keeping the side
// the normal points to (VTK keeps the positive side; pass InsideOut
// semantics by flipping the plane normal). Point data is interpolated on
// cut edges. Polylines and vertices are clipped as well.
func ClipPolyData(pd *data.PolyData, plane vmath.Plane) *data.PolyData {
	out, _ := ClipPolyDataContext(context.Background(), pd, plane)
	return out
}

// ClipPolyDataContext is ClipPolyData with cancellation; the triangle
// sweep runs in parallel chunks with a deterministic merge.
func ClipPolyDataContext(ctx context.Context, pd *data.PolyData, plane vmath.Plane) (*data.PolyData, error) {
	dist, err := planeDistances(ctx, pd.Pts, plane)
	if err != nil {
		return nil, err
	}
	tris := make([][3]int, 0, pd.NumTriangles())
	pd.EachTriangle(func(a, b, c int) { tris = append(tris, [3]int{a, b, c}) })

	// Triangles: Sutherland–Hodgman against a single plane yields a
	// triangle or quad. Chunks clip disjoint triangle ranges into local
	// point sets, merged below in sweep order.
	type clipChunk struct {
		set   *clipPointSet
		polys [][]int
	}
	chunks, err := par.MapChunks(ctx, len(tris), func(start, end int) clipChunk {
		set := newClipPointSet(pd.Pts, pd.Points, plane)
		var polys [][]int
		for _, tri := range tris[start:end] {
			var poly []int
			for e := 0; e < 3; e++ {
				i, j := tri[e], tri[(e+1)%3]
				if dist[i] >= 0 {
					poly = append(poly, set.keep(i))
					if dist[j] < 0 {
						poly = append(poly, set.cut(i, j))
					}
				} else if dist[j] >= 0 {
					poly = append(poly, set.cut(i, j))
				}
			}
			if len(poly) >= 3 {
				polys = append(polys, poly)
			}
		}
		return clipChunk{set: set, polys: polys}
	})
	if err != nil {
		return nil, err
	}

	global := newClipPointSet(pd.Pts, pd.Points, plane)
	out := data.NewPolyData()
	for _, ch := range chunks {
		remap := global.absorb(ch.set)
		for _, poly := range ch.polys {
			ids := make([]int, len(poly))
			for i, id := range poly {
				ids[i] = remap[id]
			}
			out.AddPoly(ids...)
		}
	}

	// Polylines: break at crossings (serial — line work is negligible and
	// shares the global point set with the triangle phase).
	for _, line := range pd.Lines {
		var run []int
		flush := func() {
			if len(run) >= 2 {
				out.AddLine(append([]int(nil), run...)...)
			}
			run = run[:0]
		}
		for i := 0; i < len(line); i++ {
			id := line[i]
			if dist[id] >= 0 {
				if i > 0 && dist[line[i-1]] < 0 {
					run = append(run, global.cut(line[i-1], id))
				}
				run = append(run, global.keep(id))
			} else if i > 0 && dist[line[i-1]] >= 0 {
				run = append(run, global.cut(line[i-1], id))
				flush()
			}
		}
		flush()
	}
	// Vertices: keep those on the positive side.
	for _, v := range pd.Verts {
		if len(v) == 1 && dist[v[0]] >= 0 {
			out.AddVert(global.keep(v[0]))
		}
	}
	out.Pts = global.pts
	for _, f := range global.fields {
		out.Points.Add(f)
	}
	return out, nil
}

// ClipUnstructured clips a volumetric mesh with a plane, keeping the side
// the plane normal points to. All cells are decomposed into tetrahedra and
// each straddling tet is cut into sub-tetrahedra, as VTK's Clip does with
// its tetrahedral path. Point data is interpolated.
func ClipUnstructured(ug *data.UnstructuredGrid, plane vmath.Plane) (*data.UnstructuredGrid, error) {
	return ClipUnstructuredContext(context.Background(), ug, plane)
}

// ClipUnstructuredContext is ClipUnstructured with cancellation; the tet
// sweep runs in parallel chunks with a deterministic merge.
func ClipUnstructuredContext(ctx context.Context, ug *data.UnstructuredGrid, plane vmath.Plane) (*data.UnstructuredGrid, error) {
	tets := GridTets(ug)
	if len(tets) == 0 && len(ug.Cells) > 0 {
		return nil, fmt.Errorf("filters: clip: no volumetric cells to clip")
	}
	dist, err := planeDistances(ctx, ug.Pts, plane)
	if err != nil {
		return nil, err
	}
	type clipChunk struct {
		set   *clipPointSet
		cells [][4]int
	}
	chunks, err := par.MapChunks(ctx, len(tets), func(start, end int) clipChunk {
		set := newClipPointSet(ug.Pts, ug.Points, plane)
		var cells [][4]int
		addTet := func(a, b, c, d int) { cells = append(cells, [4]int{a, b, c, d}) }
		for _, t := range tets[start:end] {
			var in []int   // source ids on keep side
			var outv []int // source ids on discard side
			for _, id := range t {
				if dist[id] >= 0 {
					in = append(in, id)
				} else {
					outv = append(outv, id)
				}
			}
			switch len(in) {
			case 0:
				// fully discarded
			case 4:
				addTet(set.keep(t[0]), set.keep(t[1]), set.keep(t[2]), set.keep(t[3]))
			case 1:
				// Tip tet: kept vertex plus three cut points.
				a := set.keep(in[0])
				p0 := set.cut(in[0], outv[0])
				p1 := set.cut(in[0], outv[1])
				p2 := set.cut(in[0], outv[2])
				addTet(a, p0, p1, p2)
			case 3:
				// Frustum: prism with kept triangle (b0,b1,b2) and cut triangle
				// (c0,c1,c2); split into three tets.
				b0, b1, b2 := set.keep(in[0]), set.keep(in[1]), set.keep(in[2])
				c0 := set.cut(in[0], outv[0])
				c1 := set.cut(in[1], outv[0])
				c2 := set.cut(in[2], outv[0])
				addTet(b0, b1, b2, c0)
				addTet(b1, b2, c0, c1)
				addTet(b2, c0, c1, c2)
			case 2:
				// Wedge with two kept vertices and four cut points.
				a0, a1 := set.keep(in[0]), set.keep(in[1])
				c00 := set.cut(in[0], outv[0])
				c01 := set.cut(in[0], outv[1])
				c10 := set.cut(in[1], outv[0])
				c11 := set.cut(in[1], outv[1])
				addTet(a0, a1, c00, c01)
				addTet(a1, c00, c01, c11)
				addTet(a1, c00, c10, c11)
			}
		}
		return clipChunk{set: set, cells: cells}
	})
	if err != nil {
		return nil, err
	}

	global := newClipPointSet(ug.Pts, ug.Points, plane)
	out := data.NewUnstructuredGrid()
	for _, ch := range chunks {
		remap := global.absorb(ch.set)
		for _, c := range ch.cells {
			out.AddCell(data.CellTetra, remap[c[0]], remap[c[1]], remap[c[2]], remap[c[3]])
		}
	}
	out.Pts = global.pts
	for _, f := range global.fields {
		out.Points.Add(f)
	}
	return out, nil
}

// ExtractSurface returns the boundary surface of a volumetric mesh: the
// faces that belong to exactly one cell (after tetra decomposition), as a
// triangulated PolyData with the original point data carried over. Vertex
// cells in the input (point clouds) are preserved as vertices.
func ExtractSurface(ug *data.UnstructuredGrid) *data.PolyData {
	tets := GridTets(ug)
	type face struct{ a, b, c int }
	canon := func(a, b, c int) face {
		v := []int{a, b, c}
		sort.Ints(v)
		return face{v[0], v[1], v[2]}
	}
	count := make(map[face]int)
	order := make(map[face][3]int) // original winding of first occurrence
	for _, t := range tets {
		fs := [4][3]int{
			{t[0], t[1], t[2]},
			{t[0], t[1], t[3]},
			{t[0], t[2], t[3]},
			{t[1], t[2], t[3]},
		}
		for _, f := range fs {
			k := canon(f[0], f[1], f[2])
			if count[k] == 0 {
				order[k] = f
			}
			count[k]++
		}
	}
	out := data.NewPolyData()
	var srcFields, outFields []*data.Field
	for i := 0; i < ug.Points.Len(); i++ {
		f := ug.Points.At(i)
		nf := data.NewField(f.Name, f.NumComponents, 0)
		srcFields = append(srcFields, f)
		outFields = append(outFields, nf)
		out.Points.Add(nf)
	}
	remap := make(map[int]int)
	mapPoint := func(i int) int {
		if id, ok := remap[i]; ok {
			return id
		}
		id := out.AddPoint(ug.Pts[i])
		for fi, f := range srcFields {
			nf := outFields[fi]
			for c := 0; c < f.NumComponents; c++ {
				nf.Data = append(nf.Data, f.Value(i, c))
			}
		}
		remap[i] = id
		return id
	}
	// Deterministic iteration: collect and sort boundary faces.
	var boundary [][3]int
	for k, n := range count {
		if n == 1 {
			boundary = append(boundary, order[k])
		}
	}
	sort.Slice(boundary, func(i, j int) bool {
		a, b := boundary[i], boundary[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for _, f := range boundary {
		out.AddTriangle(mapPoint(f[0]), mapPoint(f[1]), mapPoint(f[2]))
	}
	for _, c := range ug.Cells {
		if c.Type == data.CellVertex && len(c.IDs) == 1 {
			out.AddVert(mapPoint(c.IDs[0]))
		}
	}
	return out
}

// ComputePointNormals adds (or replaces) a "Normals" point array on the
// surface: the area-weighted average of incident triangle normals,
// normalized. Rendering uses it for smooth shading.
func ComputePointNormals(pd *data.PolyData) {
	n := len(pd.Pts)
	acc := make([]vmath.Vec3, n)
	pd.EachTriangle(func(a, b, c int) {
		fn := pd.Pts[b].Sub(pd.Pts[a]).Cross(pd.Pts[c].Sub(pd.Pts[a]))
		acc[a] = acc[a].Add(fn)
		acc[b] = acc[b].Add(fn)
		acc[c] = acc[c].Add(fn)
	})
	f := data.NewField("Normals", 3, n)
	for i := range acc {
		f.SetVec3(i, acc[i].Norm())
	}
	pd.Points.Add(f)
}
