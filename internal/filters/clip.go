package filters

import (
	"fmt"
	"sort"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

// ClipPolyData clips a triangulated surface with a plane, keeping the side
// the normal points to (VTK keeps the positive side; pass InsideOut
// semantics by flipping the plane normal). Point data is interpolated on
// cut edges. Polylines and vertices are clipped as well.
func ClipPolyData(pd *data.PolyData, plane vmath.Plane) *data.PolyData {
	out := data.NewPolyData()
	var srcFields, outFields []*data.Field
	for i := 0; i < pd.Points.Len(); i++ {
		f := pd.Points.At(i)
		nf := data.NewField(f.Name, f.NumComponents, 0)
		srcFields = append(srcFields, f)
		outFields = append(outFields, nf)
		out.Points.Add(nf)
	}
	// Map from source point to output point for kept vertices.
	kept := make(map[int]int)
	keepPoint := func(i int) int {
		if id, ok := kept[i]; ok {
			return id
		}
		id := out.AddPoint(pd.Pts[i])
		for fi, f := range srcFields {
			nf := outFields[fi]
			for c := 0; c < f.NumComponents; c++ {
				nf.Data = append(nf.Data, f.Value(i, c))
			}
		}
		kept[i] = id
		return id
	}
	edgeVerts := make(map[[2]int]int)
	cutPoint := func(i, j int) int {
		key := [2]int{i, j}
		if j < i {
			key = [2]int{j, i}
		}
		if id, ok := edgeVerts[key]; ok {
			return id
		}
		di := plane.Eval(pd.Pts[key[0]])
		dj := plane.Eval(pd.Pts[key[1]])
		t := 0.5
		if di != dj {
			t = di / (di - dj)
		}
		id := out.AddPoint(pd.Pts[key[0]].Lerp(pd.Pts[key[1]], t))
		for fi, f := range srcFields {
			nf := outFields[fi]
			for c := 0; c < f.NumComponents; c++ {
				v0, v1 := f.Value(key[0], c), f.Value(key[1], c)
				nf.Data = append(nf.Data, v0+t*(v1-v0))
			}
		}
		edgeVerts[key] = id
		return id
	}
	dist := make([]float64, len(pd.Pts))
	for i, p := range pd.Pts {
		dist[i] = plane.Eval(p)
	}
	// Triangles: Sutherland–Hodgman against a single plane yields a
	// triangle or quad; emit a fan.
	pd.EachTriangle(func(a, b, c int) {
		ids := [3]int{a, b, c}
		var poly []int
		for e := 0; e < 3; e++ {
			i, j := ids[e], ids[(e+1)%3]
			if dist[i] >= 0 {
				poly = append(poly, keepPoint(i))
				if dist[j] < 0 {
					poly = append(poly, cutPoint(i, j))
				}
			} else if dist[j] >= 0 {
				poly = append(poly, cutPoint(i, j))
			}
		}
		if len(poly) >= 3 {
			out.AddPoly(poly...)
		}
	})
	// Polylines: break at crossings.
	for _, line := range pd.Lines {
		var run []int
		flush := func() {
			if len(run) >= 2 {
				out.AddLine(append([]int(nil), run...)...)
			}
			run = run[:0]
		}
		for i := 0; i < len(line); i++ {
			id := line[i]
			if dist[id] >= 0 {
				if i > 0 && dist[line[i-1]] < 0 {
					run = append(run, cutPoint(line[i-1], id))
				}
				run = append(run, keepPoint(id))
			} else if i > 0 && dist[line[i-1]] >= 0 {
				run = append(run, cutPoint(line[i-1], id))
				flush()
			}
		}
		flush()
	}
	// Vertices: keep those on the positive side.
	for _, v := range pd.Verts {
		if len(v) == 1 && dist[v[0]] >= 0 {
			out.AddVert(keepPoint(v[0]))
		}
	}
	return out
}

// ClipUnstructured clips a volumetric mesh with a plane, keeping the side
// the plane normal points to. All cells are decomposed into tetrahedra and
// each straddling tet is cut into sub-tetrahedra, as VTK's Clip does with
// its tetrahedral path. Point data is interpolated.
func ClipUnstructured(ug *data.UnstructuredGrid, plane vmath.Plane) (*data.UnstructuredGrid, error) {
	tets := GridTets(ug)
	if len(tets) == 0 && len(ug.Cells) > 0 {
		return nil, fmt.Errorf("filters: clip: no volumetric cells to clip")
	}
	out := data.NewUnstructuredGrid()
	var srcFields, outFields []*data.Field
	for i := 0; i < ug.Points.Len(); i++ {
		f := ug.Points.At(i)
		nf := data.NewField(f.Name, f.NumComponents, 0)
		srcFields = append(srcFields, f)
		outFields = append(outFields, nf)
		out.Points.Add(nf)
	}
	kept := make(map[int]int)
	keepPoint := func(i int) int {
		if id, ok := kept[i]; ok {
			return id
		}
		id := out.AddPoint(ug.Pts[i])
		for fi, f := range srcFields {
			nf := outFields[fi]
			for c := 0; c < f.NumComponents; c++ {
				nf.Data = append(nf.Data, f.Value(i, c))
			}
		}
		kept[i] = id
		return id
	}
	edgeVerts := make(map[[2]int]int)
	cutPoint := func(i, j int) int {
		key := [2]int{i, j}
		if j < i {
			key = [2]int{j, i}
		}
		if id, ok := edgeVerts[key]; ok {
			return id
		}
		di := plane.Eval(ug.Pts[key[0]])
		dj := plane.Eval(ug.Pts[key[1]])
		t := 0.5
		if di != dj {
			t = di / (di - dj)
		}
		id := out.AddPoint(ug.Pts[key[0]].Lerp(ug.Pts[key[1]], t))
		for fi, f := range srcFields {
			nf := outFields[fi]
			for c := 0; c < f.NumComponents; c++ {
				v0, v1 := f.Value(key[0], c), f.Value(key[1], c)
				nf.Data = append(nf.Data, v0+t*(v1-v0))
			}
		}
		edgeVerts[key] = id
		return id
	}
	addTet := func(a, b, c, d int) {
		out.AddCell(data.CellTetra, a, b, c, d)
	}
	for _, t := range tets {
		var in []int   // source ids on keep side
		var outv []int // source ids on discard side
		for _, id := range t {
			if plane.Eval(ug.Pts[id]) >= 0 {
				in = append(in, id)
			} else {
				outv = append(outv, id)
			}
		}
		switch len(in) {
		case 0:
			// fully discarded
		case 4:
			addTet(keepPoint(t[0]), keepPoint(t[1]), keepPoint(t[2]), keepPoint(t[3]))
		case 1:
			// Tip tet: kept vertex plus three cut points.
			a := keepPoint(in[0])
			p0 := cutPoint(in[0], outv[0])
			p1 := cutPoint(in[0], outv[1])
			p2 := cutPoint(in[0], outv[2])
			addTet(a, p0, p1, p2)
		case 3:
			// Frustum: prism with kept triangle (b0,b1,b2) and cut triangle
			// (c0,c1,c2); split into three tets.
			b0, b1, b2 := keepPoint(in[0]), keepPoint(in[1]), keepPoint(in[2])
			c0 := cutPoint(in[0], outv[0])
			c1 := cutPoint(in[1], outv[0])
			c2 := cutPoint(in[2], outv[0])
			addTet(b0, b1, b2, c0)
			addTet(b1, b2, c0, c1)
			addTet(b2, c0, c1, c2)
		case 2:
			// Wedge with two kept vertices and four cut points.
			a0, a1 := keepPoint(in[0]), keepPoint(in[1])
			c00 := cutPoint(in[0], outv[0])
			c01 := cutPoint(in[0], outv[1])
			c10 := cutPoint(in[1], outv[0])
			c11 := cutPoint(in[1], outv[1])
			addTet(a0, a1, c00, c01)
			addTet(a1, c00, c01, c11)
			addTet(a1, c00, c10, c11)
		}
	}
	return out, nil
}

// ExtractSurface returns the boundary surface of a volumetric mesh: the
// faces that belong to exactly one cell (after tetra decomposition), as a
// triangulated PolyData with the original point data carried over. Vertex
// cells in the input (point clouds) are preserved as vertices.
func ExtractSurface(ug *data.UnstructuredGrid) *data.PolyData {
	tets := GridTets(ug)
	type face struct{ a, b, c int }
	canon := func(a, b, c int) face {
		v := []int{a, b, c}
		sort.Ints(v)
		return face{v[0], v[1], v[2]}
	}
	count := make(map[face]int)
	order := make(map[face][3]int) // original winding of first occurrence
	for _, t := range tets {
		fs := [4][3]int{
			{t[0], t[1], t[2]},
			{t[0], t[1], t[3]},
			{t[0], t[2], t[3]},
			{t[1], t[2], t[3]},
		}
		for _, f := range fs {
			k := canon(f[0], f[1], f[2])
			if count[k] == 0 {
				order[k] = f
			}
			count[k]++
		}
	}
	out := data.NewPolyData()
	var srcFields, outFields []*data.Field
	for i := 0; i < ug.Points.Len(); i++ {
		f := ug.Points.At(i)
		nf := data.NewField(f.Name, f.NumComponents, 0)
		srcFields = append(srcFields, f)
		outFields = append(outFields, nf)
		out.Points.Add(nf)
	}
	remap := make(map[int]int)
	mapPoint := func(i int) int {
		if id, ok := remap[i]; ok {
			return id
		}
		id := out.AddPoint(ug.Pts[i])
		for fi, f := range srcFields {
			nf := outFields[fi]
			for c := 0; c < f.NumComponents; c++ {
				nf.Data = append(nf.Data, f.Value(i, c))
			}
		}
		remap[i] = id
		return id
	}
	// Deterministic iteration: collect and sort boundary faces.
	var boundary [][3]int
	for k, n := range count {
		if n == 1 {
			boundary = append(boundary, order[k])
		}
	}
	sort.Slice(boundary, func(i, j int) bool {
		a, b := boundary[i], boundary[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for _, f := range boundary {
		out.AddTriangle(mapPoint(f[0]), mapPoint(f[1]), mapPoint(f[2]))
	}
	for _, c := range ug.Cells {
		if c.Type == data.CellVertex && len(c.IDs) == 1 {
			out.AddVert(mapPoint(c.IDs[0]))
		}
	}
	return out
}

// ComputePointNormals adds (or replaces) a "Normals" point array on the
// surface: the area-weighted average of incident triangle normals,
// normalized. Rendering uses it for smooth shading.
func ComputePointNormals(pd *data.PolyData) {
	n := len(pd.Pts)
	acc := make([]vmath.Vec3, n)
	pd.EachTriangle(func(a, b, c int) {
		fn := pd.Pts[b].Sub(pd.Pts[a]).Cross(pd.Pts[c].Sub(pd.Pts[a]))
		acc[a] = acc[a].Add(fn)
		acc[b] = acc[b].Add(fn)
		acc[c] = acc[c].Add(fn)
	})
	f := data.NewField("Normals", 3, n)
	for i := range acc {
		f.SetVec3(i, acc[i].Norm())
	}
	pd.Points.Add(f)
}
