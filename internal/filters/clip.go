package filters

import (
	"context"
	"fmt"
	"sort"

	"chatvis/internal/data"
	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// clipSet accumulates clip output points identified by canonical packed
// keys: a kept source point i is PackPair(i,i); a cut edge (i,j) is
// PackPair(min,max). Values are always computed from the canonical edge
// orientation, so chunk-local sets merge into exactly the numbering a
// serial sweep produces.
//
// Everything is struct-of-arrays over flat slabs (points, packed keys,
// interleaved attribute data, int32 cell connectivity) and the whole set
// is arena-pooled: checked out per chunk (and once for the global merge
// set), recycled when the filter returns.
type clipSet struct {
	srcPts    []vmath.Vec3
	srcFields []*data.Field
	plane     vmath.Plane

	pts   []vmath.Vec3
	keys  []uint64
	fdata [][]float64 // interleaved output data, parallel to srcFields
	index *data.PairTable

	// Chunk cell output. conn/lens hold variable-length polygons
	// (PolyData path); cells holds tetrahedra, 4 ids per cell
	// (UnstructuredGrid path).
	conn  []int32
	lens  []int32
	cells []int32

	remapBuf []int32 // absorb scratch (used on the global set only)
}

// Reset implements par.Resetter: empty every slab, keep every capacity.
func (cp *clipSet) Reset() {
	cp.srcPts = nil
	cp.srcFields = cp.srcFields[:0]
	cp.pts = cp.pts[:0]
	cp.keys = cp.keys[:0]
	for i := range cp.fdata {
		cp.fdata[i] = cp.fdata[i][:0]
	}
	cp.fdata = cp.fdata[:0]
	cp.index.Reset()
	cp.conn = cp.conn[:0]
	cp.lens = cp.lens[:0]
	cp.cells = cp.cells[:0]
	cp.remapBuf = cp.remapBuf[:0]
}

func (cp *clipSet) bind(srcPts []vmath.Vec3, fs *data.FieldSet, plane vmath.Plane) {
	cp.srcPts = srcPts
	cp.plane = plane
	n := fs.Len()
	for i := 0; i < n; i++ {
		cp.srcFields = append(cp.srcFields, fs.At(i))
	}
	if cap(cp.fdata) < n {
		cp.fdata = append(cp.fdata[:cap(cp.fdata)], make([][]float64, n-cap(cp.fdata))...)
	}
	cp.fdata = cp.fdata[:n]
	for i := range cp.fdata {
		cp.fdata[i] = cp.fdata[i][:0]
	}
}

var clipArena = par.NewArena(func() *clipSet {
	return &clipSet{index: data.NewPairTable()}
})

// keep returns the output id of source point i, copying it on first use.
func (cp *clipSet) keep(i int) int32 {
	key := data.PackPair(i, i)
	id, added := cp.index.GetOrPut(key, int32(len(cp.pts)))
	if !added {
		return id
	}
	cp.pts = append(cp.pts, cp.srcPts[i])
	cp.keys = append(cp.keys, key)
	for fi, f := range cp.srcFields {
		d := cp.fdata[fi]
		for c := 0; c < f.NumComponents; c++ {
			d = append(d, f.Value(i, c))
		}
		cp.fdata[fi] = d
	}
	return id
}

// cut returns the output id of the plane crossing on edge (i,j),
// interpolating it on first use.
func (cp *clipSet) cut(i, j int) int32 {
	key := data.PackPair(i, j)
	id, added := cp.index.GetOrPut(key, int32(len(cp.pts)))
	if !added {
		return id
	}
	lo, hi := data.UnpackPair(key)
	di := cp.plane.Eval(cp.srcPts[lo])
	dj := cp.plane.Eval(cp.srcPts[hi])
	t := 0.5
	if di != dj {
		t = di / (di - dj)
	}
	cp.pts = append(cp.pts, cp.srcPts[lo].Lerp(cp.srcPts[hi], t))
	cp.keys = append(cp.keys, key)
	for fi, f := range cp.srcFields {
		d := cp.fdata[fi]
		for c := 0; c < f.NumComponents; c++ {
			v0, v1 := f.Value(lo, c), f.Value(hi, c)
			d = append(d, v0+t*(v1-v0))
		}
		cp.fdata[fi] = d
	}
	return id
}

// absorb merges a chunk-local point set into cp (in the chunk's creation
// order) and returns the local→global id remap, valid until the next
// absorb. First use wins, exactly as in a serial sweep.
func (cp *clipSet) absorb(ch *clipSet) []int32 {
	if cap(cp.remapBuf) < len(ch.pts) {
		cp.remapBuf = make([]int32, len(ch.pts))
	}
	remap := cp.remapBuf[:len(ch.pts)]
	for li, key := range ch.keys {
		gid, added := cp.index.GetOrPut(key, int32(len(cp.pts)))
		if added {
			cp.pts = append(cp.pts, ch.pts[li])
			cp.keys = append(cp.keys, key)
			for fi := range cp.fdata {
				nc := cp.srcFields[fi].NumComponents
				cp.fdata[fi] = append(cp.fdata[fi], ch.fdata[fi][li*nc:(li+1)*nc]...)
			}
		}
		remap[li] = gid
	}
	return remap
}

// copyOutPoints materializes the set's points and interpolated fields as
// exact-size arrays on a fresh output (never views of arena memory).
func (cp *clipSet) copyOutPoints(setPts *[]vmath.Vec3, fs *data.FieldSet) {
	*setPts = append(make([]vmath.Vec3, 0, len(cp.pts)), cp.pts...)
	for fi, f := range cp.srcFields {
		nf := data.NewField(f.Name, f.NumComponents, 0)
		nf.Data = append(make([]float64, 0, len(cp.fdata[fi])), cp.fdata[fi]...)
		fs.Add(nf)
	}
}

// planeDistances evaluates the plane at every point, in parallel.
func planeDistances(ctx context.Context, pts []vmath.Vec3, plane vmath.Plane) ([]float64, error) {
	dist := make([]float64, len(pts))
	err := par.For(ctx, len(pts), func(start, end int) {
		for i := start; i < end; i++ {
			dist[i] = plane.Eval(pts[i])
		}
	})
	if err != nil {
		return nil, err
	}
	return dist, nil
}

// ClipPolyData clips a triangulated surface with a plane, keeping the side
// the normal points to (VTK keeps the positive side; pass InsideOut
// semantics by flipping the plane normal). Point data is interpolated on
// cut edges. Polylines and vertices are clipped as well.
func ClipPolyData(pd *data.PolyData, plane vmath.Plane) *data.PolyData {
	out, _ := ClipPolyDataContext(context.Background(), pd, plane)
	return out
}

// ClipPolyDataContext is ClipPolyData with cancellation; the triangle
// sweep runs in parallel chunks with a deterministic merge.
func ClipPolyDataContext(ctx context.Context, pd *data.PolyData, plane vmath.Plane) (*data.PolyData, error) {
	dist, err := planeDistances(ctx, pd.Pts, plane)
	if err != nil {
		return nil, err
	}

	global := clipArena.Get()
	defer clipArena.Put(global)
	global.bind(pd.Pts, pd.Points, plane)

	// Triangles: Sutherland–Hodgman against a single plane yields a
	// triangle or quad. Chunks cover disjoint polygon ranges (fan
	// triangulated in place — the sweep order matches EachTriangle), each
	// clipping into an arena-pooled local point set; a pipelined ordered
	// merge absorbs completed chunks into the global set in sweep order
	// while later chunks still run. The cost hint must stay O(1) per
	// polygon — sweepRanges evaluates it twice, and walking every vertex
	// here would triple the classification work of discarded polygons —
	// so it samples one vertex: a polygon whose first vertex survives
	// almost certainly pays Sutherland–Hodgman + interpolation, a fully
	// discarded one costs a classification check. Approximate is fine
	// (hints shape chunks, never output); what matters is that a clip
	// discarding one whole region spreads the surviving region across
	// many small chunks instead of loading it onto one static chunk.
	cost := func(pi int) float64 {
		pg := pd.Polys[pi]
		c := float64(len(pg))
		if len(pg) > 0 && dist[pg[0]] >= 0 {
			c *= 5
		}
		return c
	}
	err = par.OrderedSweep(ctx, len(pd.Polys), clipArena, cost, func(set *clipSet, start, end int) {
		set.bind(pd.Pts, pd.Points, plane)
		var poly [4]int32 // one plane cuts a triangle into at most a quad
		for _, pg := range pd.Polys[start:end] {
			for ti := 2; ti < len(pg); ti++ {
				tri := [3]int{pg[0], pg[ti-1], pg[ti]}
				np := 0
				for e := 0; e < 3; e++ {
					i, j := tri[e], tri[(e+1)%3]
					if dist[i] >= 0 {
						poly[np] = set.keep(i)
						np++
						if dist[j] < 0 {
							poly[np] = set.cut(i, j)
							np++
						}
					} else if dist[j] >= 0 {
						poly[np] = set.cut(i, j)
						np++
					}
				}
				if np >= 3 {
					set.lens = append(set.lens, int32(np))
					set.conn = append(set.conn, poly[:np]...)
				}
			}
		}
	}, func(ch *clipSet) {
		remap := global.absorb(ch)
		for _, id := range ch.conn {
			global.conn = append(global.conn, remap[id])
		}
		global.lens = append(global.lens, ch.lens...)
	})
	if err != nil {
		return nil, err
	}

	out := data.NewPolyData()
	out.Polys = make([][]int, 0, len(global.lens))
	out.ReserveConn(len(global.conn))
	off := 0
	for _, n := range global.lens {
		ids := out.NewPoly(int(n))
		for k := range ids {
			ids[k] = int(global.conn[off+k])
		}
		off += int(n)
	}

	// Polylines: break at crossings (serial — line work is negligible and
	// shares the global point set with the triangle phase).
	var run []int
	for _, line := range pd.Lines {
		run = run[:0]
		flush := func() {
			if len(run) >= 2 {
				copy(out.NewLine(len(run)), run)
			}
			run = run[:0]
		}
		for i := 0; i < len(line); i++ {
			id := line[i]
			if dist[id] >= 0 {
				if i > 0 && dist[line[i-1]] < 0 {
					run = append(run, int(global.cut(line[i-1], id)))
				}
				run = append(run, int(global.keep(id)))
			} else if i > 0 && dist[line[i-1]] >= 0 {
				run = append(run, int(global.cut(line[i-1], id)))
				flush()
			}
		}
		flush()
	}
	// Vertices: keep those on the positive side.
	for _, v := range pd.Verts {
		if len(v) == 1 && dist[v[0]] >= 0 {
			out.AddVert(int(global.keep(v[0])))
		}
	}
	global.copyOutPoints(&out.Pts, out.Points)
	return out, nil
}

// ClipUnstructured clips a volumetric mesh with a plane, keeping the side
// the plane normal points to. All cells are decomposed into tetrahedra and
// each straddling tet is cut into sub-tetrahedra, as VTK's Clip does with
// its tetrahedral path. Point data is interpolated.
func ClipUnstructured(ug *data.UnstructuredGrid, plane vmath.Plane) (*data.UnstructuredGrid, error) {
	return ClipUnstructuredContext(context.Background(), ug, plane)
}

// ClipUnstructuredContext is ClipUnstructured with cancellation; the tet
// sweep runs in parallel chunks with a deterministic merge.
func ClipUnstructuredContext(ctx context.Context, ug *data.UnstructuredGrid, plane vmath.Plane) (*data.UnstructuredGrid, error) {
	tets := GridTets(ug)
	if len(tets) == 0 && len(ug.Cells) > 0 {
		return nil, fmt.Errorf("filters: clip: no volumetric cells to clip")
	}
	dist, err := planeDistances(ctx, ug.Pts, plane)
	if err != nil {
		return nil, err
	}
	global := clipArena.Get()
	defer clipArena.Put(global)
	global.bind(ug.Pts, ug.Points, plane)

	// Cost hint: a discarded tet is a classification check, a kept tet
	// copies four points, a straddling tet interpolates cut points and
	// emits up to three sub-tets — weight accordingly so a clip plane
	// that concentrates survivors in one region still balances.
	cost := func(ti int) float64 {
		nIn := 0
		for _, id := range tets[ti] {
			if dist[id] >= 0 {
				nIn++
			}
		}
		switch nIn {
		case 0:
			return 1
		case 4:
			return 5
		}
		return 8
	}
	err = par.OrderedSweep(ctx, len(tets), clipArena, cost, func(set *clipSet, start, end int) {
		set.bind(ug.Pts, ug.Points, plane)
		addTet := func(a, b, c, d int32) { set.cells = append(set.cells, a, b, c, d) }
		for _, t := range tets[start:end] {
			var in, outv [4]int // source ids on keep / discard side
			nIn, nOut := 0, 0
			for _, id := range t {
				if dist[id] >= 0 {
					in[nIn] = id
					nIn++
				} else {
					outv[nOut] = id
					nOut++
				}
			}
			switch nIn {
			case 0:
				// fully discarded
			case 4:
				addTet(set.keep(t[0]), set.keep(t[1]), set.keep(t[2]), set.keep(t[3]))
			case 1:
				// Tip tet: kept vertex plus three cut points.
				a := set.keep(in[0])
				p0 := set.cut(in[0], outv[0])
				p1 := set.cut(in[0], outv[1])
				p2 := set.cut(in[0], outv[2])
				addTet(a, p0, p1, p2)
			case 3:
				// Frustum: prism with kept triangle (b0,b1,b2) and cut triangle
				// (c0,c1,c2); split into three tets.
				b0, b1, b2 := set.keep(in[0]), set.keep(in[1]), set.keep(in[2])
				c0 := set.cut(in[0], outv[0])
				c1 := set.cut(in[1], outv[0])
				c2 := set.cut(in[2], outv[0])
				addTet(b0, b1, b2, c0)
				addTet(b1, b2, c0, c1)
				addTet(b2, c0, c1, c2)
			case 2:
				// Wedge with two kept vertices and four cut points.
				a0, a1 := set.keep(in[0]), set.keep(in[1])
				c00 := set.cut(in[0], outv[0])
				c01 := set.cut(in[0], outv[1])
				c10 := set.cut(in[1], outv[0])
				c11 := set.cut(in[1], outv[1])
				addTet(a0, a1, c00, c01)
				addTet(a1, c00, c01, c11)
				addTet(a1, c00, c10, c11)
			}
		}
	}, func(ch *clipSet) {
		remap := global.absorb(ch)
		for _, id := range ch.cells {
			global.cells = append(global.cells, remap[id])
		}
	})
	if err != nil {
		return nil, err
	}

	out := data.NewUnstructuredGrid()
	out.Cells = make([]data.Cell, 0, len(global.cells)/4)
	out.ReserveConn(len(global.cells))
	for c := 0; c+3 < len(global.cells); c += 4 {
		ids := out.NewCell(data.CellTetra, 4)
		ids[0] = int(global.cells[c])
		ids[1] = int(global.cells[c+1])
		ids[2] = int(global.cells[c+2])
		ids[3] = int(global.cells[c+3])
	}
	global.copyOutPoints(&out.Pts, out.Points)
	return out, nil
}

// ExtractSurface returns the boundary surface of a volumetric mesh: the
// faces that belong to exactly one cell (after tetra decomposition), as a
// triangulated PolyData with the original point data carried over. Vertex
// cells in the input (point clouds) are preserved as vertices.
func ExtractSurface(ug *data.UnstructuredGrid) *data.PolyData {
	tets := GridTets(ug)
	type face struct{ a, b, c int }
	canon := func(a, b, c int) face {
		v := []int{a, b, c}
		sort.Ints(v)
		return face{v[0], v[1], v[2]}
	}
	count := make(map[face]int)
	order := make(map[face][3]int) // original winding of first occurrence
	for _, t := range tets {
		fs := [4][3]int{
			{t[0], t[1], t[2]},
			{t[0], t[1], t[3]},
			{t[0], t[2], t[3]},
			{t[1], t[2], t[3]},
		}
		for _, f := range fs {
			k := canon(f[0], f[1], f[2])
			if count[k] == 0 {
				order[k] = f
			}
			count[k]++
		}
	}
	out := data.NewPolyData()
	var srcFields, outFields []*data.Field
	for i := 0; i < ug.Points.Len(); i++ {
		f := ug.Points.At(i)
		nf := data.NewField(f.Name, f.NumComponents, 0)
		srcFields = append(srcFields, f)
		outFields = append(outFields, nf)
		out.Points.Add(nf)
	}
	remap := make(map[int]int)
	mapPoint := func(i int) int {
		if id, ok := remap[i]; ok {
			return id
		}
		id := out.AddPoint(ug.Pts[i])
		for fi, f := range srcFields {
			nf := outFields[fi]
			for c := 0; c < f.NumComponents; c++ {
				nf.Data = append(nf.Data, f.Value(i, c))
			}
		}
		remap[i] = id
		return id
	}
	// Deterministic iteration: collect and sort boundary faces.
	var boundary [][3]int
	for k, n := range count {
		if n == 1 {
			boundary = append(boundary, order[k])
		}
	}
	sort.Slice(boundary, func(i, j int) bool {
		a, b := boundary[i], boundary[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for _, f := range boundary {
		out.AddTriangle(mapPoint(f[0]), mapPoint(f[1]), mapPoint(f[2]))
	}
	for _, c := range ug.Cells {
		if c.Type == data.CellVertex && len(c.IDs) == 1 {
			out.AddVert(mapPoint(c.IDs[0]))
		}
	}
	return out
}

// ComputePointNormals adds (or replaces) a "Normals" point array on the
// surface: the area-weighted average of incident triangle normals,
// normalized. Rendering uses it for smooth shading.
func ComputePointNormals(pd *data.PolyData) {
	n := len(pd.Pts)
	acc := make([]vmath.Vec3, n)
	pd.EachTriangle(func(a, b, c int) {
		fn := pd.Pts[b].Sub(pd.Pts[a]).Cross(pd.Pts[c].Sub(pd.Pts[a]))
		acc[a] = acc[a].Add(fn)
		acc[b] = acc[b].Add(fn)
		acc[c] = acc[c].Add(fn)
	})
	f := data.NewField("Normals", 3, n)
	for i := range acc {
		f.SetVec3(i, acc[i].Norm())
	}
	pd.Points.Add(f)
}
