package filters

import (
	"math"
	"testing"
	"testing/quick"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/vmath"
)

// sphereVolume builds an n^3 volume of the distance-from-origin field, so
// the isosurface at r is a sphere of radius r.
func sphereVolume(n int) *data.ImageData {
	spacing := 2.0 / float64(n-1)
	im := data.NewImageData(n, n, n, vmath.V(-1, -1, -1), vmath.V(spacing, spacing, spacing))
	f := data.NewField("dist", 1, im.NumPoints())
	for i := 0; i < im.NumPoints(); i++ {
		f.SetScalar(i, im.Point(i).Len())
	}
	im.Points.Add(f)
	return im
}

func TestContourSphere(t *testing.T) {
	im := sphereVolume(24)
	surf, err := Contour(im, "dist", 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if surf.NumTriangles() == 0 {
		t.Fatal("empty isosurface")
	}
	// Every output vertex lies (nearly) on the 0.6 sphere; linear
	// interpolation error on a 24^3 grid stays small.
	for _, p := range surf.Pts {
		r := p.Len()
		if math.Abs(r-0.6) > 0.02 {
			t.Fatalf("vertex at radius %v, want ~0.6", r)
		}
	}
	// Interpolated field value equals the isovalue exactly on crossing
	// edges (the invariant of marching interpolation).
	f := surf.Points.Get("dist")
	if f == nil {
		t.Fatal("dist not interpolated onto surface")
	}
	for i := 0; i < f.NumTuples(); i++ {
		if math.Abs(f.Scalar(i)-0.6) > 1e-9 {
			t.Fatalf("interpolated scalar %v != isovalue", f.Scalar(i))
		}
	}
}

func TestContourSurfaceAreaApproximatesSphere(t *testing.T) {
	im := sphereVolume(40)
	surf, err := Contour(im, "dist", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	area := 0.0
	surf.EachTriangle(func(a, b, c int) {
		area += surf.Pts[b].Sub(surf.Pts[a]).Cross(surf.Pts[c].Sub(surf.Pts[a])).Len() / 2
	})
	want := 4 * math.Pi * 0.25
	if math.Abs(area-want)/want > 0.05 {
		t.Errorf("area = %v, want ~%v", area, want)
	}
}

func TestContourWatertight(t *testing.T) {
	// A closed isosurface has every edge shared by exactly two triangles.
	im := sphereVolume(16)
	surf, err := Contour(im, "dist", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	edges := make(map[[2]int]int)
	surf.EachTriangle(func(a, b, c int) {
		for _, e := range [][2]int{{a, b}, {b, c}, {c, a}} {
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			edges[e]++
		}
	})
	for e, n := range edges {
		if n != 2 {
			t.Fatalf("edge %v used %d times; surface not watertight", e, n)
		}
	}
}

func TestContourOrientationConsistent(t *testing.T) {
	// Normals of a closed isosurface of a radial field should point
	// outward (toward increasing field = away from origin) or at least be
	// consistent; check the average dot with the radial direction.
	im := sphereVolume(20)
	surf, err := Contour(im, "dist", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := 0, 0
	surf.EachTriangle(func(a, b, c int) {
		n := surf.Pts[b].Sub(surf.Pts[a]).Cross(surf.Pts[c].Sub(surf.Pts[a]))
		centroid := surf.Pts[a].Add(surf.Pts[b]).Add(surf.Pts[c]).Mul(1.0 / 3)
		if n.Dot(centroid) > 0 {
			pos++
		} else {
			neg++
		}
	})
	if pos != 0 && neg != 0 {
		t.Errorf("mixed orientation: %d outward, %d inward", pos, neg)
	}
}

func TestContourErrors(t *testing.T) {
	im := sphereVolume(4)
	if _, err := Contour(im, "nope", 0.5); err == nil {
		t.Error("missing array should error")
	}
	vec := data.NewField("v", 3, im.NumPoints())
	im.Points.Add(vec)
	if _, err := Contour(im, "v", 0.5); err == nil {
		t.Error("vector array should error")
	}
	pd := data.NewPolyData()
	sf := data.NewField("s", 1, 0)
	pd.Points.Add(sf)
	if _, err := Contour(pd, "s", 0.5); err == nil {
		t.Error("polydata input should error")
	}
}

func TestContourEmptyWhenOutOfRange(t *testing.T) {
	im := sphereVolume(8)
	surf, err := Contour(im, "dist", 99)
	if err != nil {
		t.Fatal(err)
	}
	if surf.NumTriangles() != 0 {
		t.Error("isovalue outside range should give empty surface")
	}
}

func TestContourMarschnerLobb(t *testing.T) {
	im := datagen.MarschnerLobb(32)
	surf, err := Contour(im, "var0", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if surf.NumTriangles() < 1000 {
		t.Errorf("ML isosurface suspiciously small: %d triangles", surf.NumTriangles())
	}
	b := surf.Bounds()
	if b.Min.X < -1.001 || b.Max.X > 1.001 {
		t.Errorf("surface escapes the domain: %v..%v", b.Min, b.Max)
	}
}

func TestContourUnstructuredGrid(t *testing.T) {
	ug := datagen.DiskFlow(6, 24, 6)
	surf, err := Contour(ug, "Temp", 500)
	if err != nil {
		t.Fatal(err)
	}
	if surf.NumTriangles() == 0 {
		t.Fatal("empty Temp isosurface on disk")
	}
	f := surf.Points.Get("Temp")
	for i := 0; i < f.NumTuples(); i++ {
		if math.Abs(f.Scalar(i)-500) > 1e-6 {
			t.Fatalf("interpolated Temp = %v", f.Scalar(i))
		}
	}
	// Other fields must be carried along.
	if surf.Points.Get("V") == nil || surf.Points.Get("Pres") == nil {
		t.Error("point data arrays not propagated")
	}
}

func TestSlicePlane(t *testing.T) {
	im := sphereVolume(20)
	plane := vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(1, 0, 0))
	cut, err := Slice(im, plane)
	if err != nil {
		t.Fatal(err)
	}
	if cut.NumTriangles() == 0 {
		t.Fatal("empty slice")
	}
	for _, p := range cut.Pts {
		if math.Abs(p.X) > 1e-9 {
			t.Fatalf("slice point off plane: %v", p)
		}
	}
	// The scalar field travels with the slice and is correct there.
	f := cut.Points.Get("dist")
	if f == nil {
		t.Fatal("dist missing on slice")
	}
	for i, p := range cut.Pts {
		want := p.Len()
		if want < 0.3 {
			// |p| is non-smooth at the origin; linear interpolation error
			// is legitimately large there.
			continue
		}
		if math.Abs(f.Scalar(i)-want) > 0.02 {
			t.Fatalf("slice scalar %v at %v, want %v", f.Scalar(i), p, want)
		}
	}
	// Slice area should be close to the full y-z cross-section (2x2 square).
	area := 0.0
	cut.EachTriangle(func(a, b, c int) {
		area += cut.Pts[b].Sub(cut.Pts[a]).Cross(cut.Pts[c].Sub(cut.Pts[a])).Len() / 2
	})
	if math.Abs(area-4) > 0.05 {
		t.Errorf("slice area = %v, want ~4", area)
	}
}

func TestSliceOffsetPlaneProperty(t *testing.T) {
	im := sphereVolume(12)
	f := func(raw float64) bool {
		off := math.Mod(math.Abs(raw), 0.9)
		plane := vmath.NewPlane(vmath.V(off, 0, 0), vmath.V(1, 0, 0))
		cut, err := Slice(im, plane)
		if err != nil {
			return false
		}
		for _, p := range cut.Pts {
			if math.Abs(p.X-off) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSliceUnstructured(t *testing.T) {
	ug := datagen.DiskFlow(5, 16, 5)
	plane := vmath.NewPlane(vmath.V(0, 0, 1), vmath.V(0, 0, 1))
	cut, err := Slice(ug, plane)
	if err != nil {
		t.Fatal(err)
	}
	if cut.NumTriangles() == 0 {
		t.Fatal("empty slice of disk")
	}
	for _, p := range cut.Pts {
		if math.Abs(p.Z-1) > 1e-9 {
			t.Fatalf("slice point off plane: %v", p)
		}
	}
}

func TestContourLines(t *testing.T) {
	// Slice the sphere volume, then contour the slice at dist=0.5: the
	// result should be a circle of radius 0.5 in the y-z plane.
	im := sphereVolume(24)
	plane := vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(1, 0, 0))
	cut, err := Slice(im, plane)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := ContourLines(cut, "dist", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines.Lines) == 0 {
		t.Fatal("no contour lines")
	}
	for _, p := range lines.Pts {
		r := math.Hypot(p.Y, p.Z)
		if math.Abs(r-0.5) > 0.02 {
			t.Fatalf("contour point radius %v, want ~0.5", r)
		}
		if math.Abs(p.X) > 1e-9 {
			t.Fatalf("contour point off slice plane: %v", p)
		}
	}
	if _, err := ContourLines(cut, "missing", 0.5); err == nil {
		t.Error("missing array should error")
	}
}

func TestCellTetsDecomposition(t *testing.T) {
	// Hexahedron decomposes into 6 tets that exactly fill the cube volume.
	ug := data.NewUnstructuredGrid()
	for i := 0; i < 8; i++ {
		// VTK hex ordering.
		corners := [][3]float64{
			{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
			{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
		}
		ug.AddPoint(vmath.V(corners[i][0], corners[i][1], corners[i][2]))
	}
	ug.AddCell(data.CellHexahedron, 0, 1, 2, 3, 4, 5, 6, 7)
	tets := GridTets(ug)
	if len(tets) != 6 {
		t.Fatalf("hex -> %d tets, want 6", len(tets))
	}
	vol := 0.0
	for _, tt := range tets {
		vol += math.Abs(TetVolume(ug.Pts[tt[0]], ug.Pts[tt[1]], ug.Pts[tt[2]], ug.Pts[tt[3]]))
	}
	if math.Abs(vol-1) > 1e-12 {
		t.Errorf("tet volumes sum to %v, want 1", vol)
	}
}

func TestCellTetsWedgePyramid(t *testing.T) {
	ug := data.NewUnstructuredGrid()
	// Wedge: unit right triangular prism, volume 0.5.
	for _, c := range [][3]float64{
		{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {0, 1, 1},
	} {
		ug.AddPoint(vmath.V(c[0], c[1], c[2]))
	}
	ug.AddCell(data.CellWedge, 0, 1, 2, 3, 4, 5)
	tets := GridTets(ug)
	if len(tets) != 3 {
		t.Fatalf("wedge -> %d tets", len(tets))
	}
	vol := 0.0
	for _, tt := range tets {
		vol += math.Abs(TetVolume(ug.Pts[tt[0]], ug.Pts[tt[1]], ug.Pts[tt[2]], ug.Pts[tt[3]]))
	}
	if math.Abs(vol-0.5) > 1e-12 {
		t.Errorf("wedge volume = %v, want 0.5", vol)
	}
	// Pyramid over unit square, apex height 1, volume 1/3.
	ug2 := data.NewUnstructuredGrid()
	for _, c := range [][3]float64{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}, {0.5, 0.5, 1},
	} {
		ug2.AddPoint(vmath.V(c[0], c[1], c[2]))
	}
	ug2.AddCell(data.CellPyramid, 0, 1, 2, 3, 4)
	tets = GridTets(ug2)
	if len(tets) != 2 {
		t.Fatalf("pyramid -> %d tets", len(tets))
	}
	vol = 0
	for _, tt := range tets {
		vol += math.Abs(TetVolume(ug2.Pts[tt[0]], ug2.Pts[tt[1]], ug2.Pts[tt[2]], ug2.Pts[tt[3]]))
	}
	if math.Abs(vol-1.0/3) > 1e-12 {
		t.Errorf("pyramid volume = %v, want 1/3", vol)
	}
}

func TestBarycentric(t *testing.T) {
	a, b, c, d := vmath.V(0, 0, 0), vmath.V(1, 0, 0), vmath.V(0, 1, 0), vmath.V(0, 0, 1)
	l, ok := Barycentric(vmath.V(0.25, 0.25, 0.25), a, b, c, d)
	if !ok {
		t.Fatal("degenerate?")
	}
	for _, li := range l {
		if math.Abs(li-0.25) > 1e-12 {
			t.Fatalf("barycentric = %v", l)
		}
	}
	if !InsideTet(l, 0) {
		t.Error("centroid should be inside")
	}
	l, _ = Barycentric(vmath.V(2, 2, 2), a, b, c, d)
	if InsideTet(l, 1e-9) {
		t.Error("far point should be outside")
	}
	if _, ok := Barycentric(vmath.V(0, 0, 0), a, b, c, a); ok {
		t.Error("degenerate tet should fail")
	}
}
