package filters

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// withWorkers pins the par worker count for one test and restores the
// default afterwards.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	par.SetWorkers(n)
	t.Cleanup(func() { par.SetWorkers(0) })
}

// withSchedulingMatrix raises GOMAXPROCS (so multi-worker runs truly
// interleave even on a one-core runner) and restores the worker count,
// schedule and GOMAXPROCS when the test ends.
func withSchedulingMatrix(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(8)
	t.Cleanup(func() {
		runtime.GOMAXPROCS(prev)
		par.SetWorkers(0)
		par.SetSchedule(par.SchedAdaptive)
	})
}

// equivalentWorkerCounts runs build under the full scheduling matrix —
// workers {1, 4, 8} × {adaptive, static} chunking — and asserts every
// output is byte-identical to the single-worker adaptive run: the
// determinism contract of the index-ordered merge, now extended over
// the pipelined OrderedSweep consumers.
func equivalentWorkerCounts(t *testing.T, name string, build func() *data.PolyData) {
	t.Helper()
	withSchedulingMatrix(t)
	par.SetWorkers(1)
	par.SetSchedule(par.SchedAdaptive)
	ref := build()
	for _, sched := range []par.Sched{par.SchedAdaptive, par.SchedStatic} {
		for _, w := range []int{1, 4, 8} {
			if sched == par.SchedAdaptive && w == 1 {
				continue // the reference run
			}
			par.SetSchedule(sched)
			par.SetWorkers(w)
			got := build()
			comparePolyData(t, fmt.Sprintf("%s/%s", name, sched), w, ref, got)
		}
	}
}

func comparePolyData(t *testing.T, name string, workers int, ref, got *data.PolyData) {
	t.Helper()
	if !reflect.DeepEqual(ref.Pts, got.Pts) {
		t.Fatalf("%s workers=%d: points differ (%d vs %d)", name, workers, len(ref.Pts), len(got.Pts))
	}
	if !reflect.DeepEqual(ref.Polys, got.Polys) {
		t.Fatalf("%s workers=%d: polygons differ (%d vs %d)", name, workers, len(ref.Polys), len(got.Polys))
	}
	if !reflect.DeepEqual(ref.Lines, got.Lines) {
		t.Fatalf("%s workers=%d: lines differ (%d vs %d)", name, workers, len(ref.Lines), len(got.Lines))
	}
	if !reflect.DeepEqual(ref.Verts, got.Verts) {
		t.Fatalf("%s workers=%d: vertices differ", name, workers)
	}
	if rn, gn := ref.Points.Names(), got.Points.Names(); !reflect.DeepEqual(rn, gn) {
		t.Fatalf("%s workers=%d: field names differ: %v vs %v", name, workers, rn, gn)
	}
	for i := 0; i < ref.Points.Len(); i++ {
		rf, gf := ref.Points.At(i), got.Points.At(i)
		if !reflect.DeepEqual(rf.Data, gf.Data) {
			t.Fatalf("%s workers=%d: field %q data differs", name, workers, rf.Name)
		}
	}
}

func TestContourParallelEquivalence(t *testing.T) {
	vol := datagen.MarschnerLobb(24)
	equivalentWorkerCounts(t, "contour-image", func() *data.PolyData {
		out, err := Contour(vol, "var0", 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
	disk := datagen.DiskFlow(5, 16, 5)
	equivalentWorkerCounts(t, "contour-grid", func() *data.PolyData {
		out, err := Contour(disk, "Temp", 600)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
	// The sparse corner blob concentrates every crossing in the sweep
	// tail — the shape the guided schedule rebalances — and must still
	// merge identically.
	sparse := datagen.SparseBlob(24)
	equivalentWorkerCounts(t, "contour-sparse", func() *data.PolyData {
		out, err := Contour(sparse, "var0", 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
}

func TestSliceParallelEquivalence(t *testing.T) {
	vol := datagen.MarschnerLobb(24)
	plane := vmath.NewPlane(vmath.V(0.1, 0, 0), vmath.V(1, 0.2, 0))
	equivalentWorkerCounts(t, "slice", func() *data.PolyData {
		out, err := Slice(vol, plane)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
}

func TestClipPolyDataParallelEquivalence(t *testing.T) {
	vol := datagen.MarschnerLobb(24)
	surf, err := Contour(vol, "var0", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plane := vmath.NewPlane(vmath.V(0.05, 0, 0), vmath.V(-1, 0, 0.3))
	equivalentWorkerCounts(t, "clip-poly", func() *data.PolyData {
		return ClipPolyData(surf, plane)
	})
	// Skewed clip: survivors cluster at the tail of the polygon sweep,
	// so the cost-hinted chunking actually fires — output must not care.
	skew := vmath.NewPlane(vmath.V(0, 0, 0.6), vmath.V(0, 0, 1))
	equivalentWorkerCounts(t, "clip-skewed", func() *data.PolyData {
		return ClipPolyData(surf, skew)
	})
}

func TestClipUnstructuredParallelEquivalence(t *testing.T) {
	disk := datagen.DiskFlow(5, 16, 5)
	plane := vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(1, 0, 0))
	withSchedulingMatrix(t)
	par.SetWorkers(1)
	par.SetSchedule(par.SchedAdaptive)
	ref, err := ClipUnstructured(disk, plane)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []par.Sched{par.SchedAdaptive, par.SchedStatic} {
		for _, w := range []int{1, 4, 8} {
			if sched == par.SchedAdaptive && w == 1 {
				continue
			}
			par.SetSchedule(sched)
			par.SetWorkers(w)
			got, err := ClipUnstructured(disk, plane)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.Pts, got.Pts) {
				t.Fatalf("sched=%s workers=%d: points differ", sched, w)
			}
			if !reflect.DeepEqual(ref.Cells, got.Cells) {
				t.Fatalf("sched=%s workers=%d: cells differ", sched, w)
			}
			for i := 0; i < ref.Points.Len(); i++ {
				if !reflect.DeepEqual(ref.Points.At(i).Data, got.Points.At(i).Data) {
					t.Fatalf("sched=%s workers=%d: field %q differs", sched, w, ref.Points.At(i).Name)
				}
			}
		}
	}
}

func TestGlyphParallelEquivalence(t *testing.T) {
	disk := datagen.DiskFlow(5, 16, 5)
	pts := ExtractSurface(disk)
	equivalentWorkerCounts(t, "glyph", func() *data.PolyData {
		return Glyph(pts, GlyphOptions{Type: GlyphCone, OrientationArray: "V"})
	})
}

func TestStreamTracerParallelEquivalence(t *testing.T) {
	disk := datagen.DiskFlow(5, 16, 5)
	sampler, err := NewGridSampler(disk, "V")
	if err != nil {
		t.Fatal(err)
	}
	seeds := DefaultPointCloudSeeds(disk.Bounds(), 40)
	equivalentWorkerCounts(t, "stream", func() *data.PolyData {
		return StreamTracer(sampler, seeds, StreamTracerOptions{})
	})
}

// TestArenaReuseEquivalence pins the arena hygiene contract: the
// pooled builders a sweep checks out are recycled into the next sweep,
// so a second consecutive run of the same filter — which by
// construction reuses the scratch the first run dirtied — must be
// byte-identical to the first. Any missed Reset field, stale PairTable
// generation or output aliasing arena memory shows up as a diff here
// (and as a race under -race, since sweeps overlap chunk goroutines).
func TestArenaReuseEquivalence(t *testing.T) {
	withWorkers(t, 4)
	vol := datagen.MarschnerLobb(24)
	surf, err := Contour(vol, "var0", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plane := vmath.NewPlane(vmath.V(0.05, 0, 0), vmath.V(-1, 0, 0.3))
	disk := datagen.DiskFlow(5, 16, 5)
	sampler, err := NewGridSampler(disk, "V")
	if err != nil {
		t.Fatal(err)
	}
	seeds := DefaultPointCloudSeeds(disk.Bounds(), 40)

	builds := map[string]func() *data.PolyData{
		"contour": func() *data.PolyData {
			out, err := Contour(vol, "var0", 0.5)
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
		"clip": func() *data.PolyData {
			return ClipPolyData(surf, plane)
		},
		"stream": func() *data.PolyData {
			return StreamTracer(sampler, seeds, StreamTracerOptions{})
		},
	}
	for name, build := range builds {
		first := build()
		// Snapshot before the second sweep: output aliasing arena
		// scratch would be rewritten with identical bytes by an
		// identical second run, so equality of first vs second alone
		// cannot catch it — divergence from the snapshot can.
		snapPts := append([]vmath.Vec3(nil), first.Pts...)
		var snapConn []int
		for _, poly := range first.Polys {
			snapConn = append(snapConn, poly...)
		}
		second := build()
		comparePolyData(t, name+"-arena-reuse", 4, first, second)
		if !reflect.DeepEqual(first.Pts, snapPts) {
			t.Fatalf("%s: second sweep mutated the first sweep's points — output aliases arena scratch", name)
		}
		var gotConn []int
		for _, poly := range first.Polys {
			gotConn = append(gotConn, poly...)
		}
		if !reflect.DeepEqual(gotConn, snapConn) {
			t.Fatalf("%s: second sweep mutated the first sweep's connectivity — output aliases arena scratch", name)
		}
	}
}

// TestContourCancellation pins the context contract: a canceled sweep
// returns an error instead of partial geometry.
func TestContourCancellation(t *testing.T) {
	withWorkers(t, 4)
	vol := datagen.MarschnerLobb(16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ContourContext(ctx, vol, "var0", 0.5); err == nil {
		t.Fatal("canceled contour should error")
	}
	if _, err := StreamTracerContext(ctx, mustSampler(t, vol), []vmath.Vec3{{}}, StreamTracerOptions{}); err == nil {
		t.Fatal("canceled stream trace should error")
	}
}

func mustSampler(t *testing.T, vol *data.ImageData) VectorSampler {
	t.Helper()
	n := vol.NumPoints()
	v := data.NewField("vel", 3, n)
	for i := 0; i < n; i++ {
		v.SetVec3(i, vmath.V(1, 0, 0))
	}
	vol.Points.Add(v)
	s, err := NewImageSampler(vol, "vel")
	if err != nil {
		t.Fatal(err)
	}
	return s
}
