package filters

import (
	"math"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/vmath"
)

func TestThresholdKeepsBand(t *testing.T) {
	disk := datagen.DiskFlow(6, 24, 6)
	out, err := Threshold(disk, "Temp", 500, 900, ThresholdAllPoints)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCells() == 0 || out.NumCells() >= disk.NumCells() {
		t.Fatalf("threshold kept %d of %d cells", out.NumCells(), disk.NumCells())
	}
	f := out.Points.Get("Temp")
	for i := 0; i < f.NumTuples(); i++ {
		v := f.Scalar(i)
		if v < 500-1e-9 || v > 900+1e-9 {
			t.Fatalf("point with Temp=%v survived an AllPoints threshold", v)
		}
	}
	// Other fields carried over, with matching tuple counts.
	for _, name := range []string{"V", "Pres"} {
		g := out.Points.Get(name)
		if g == nil || g.NumTuples() != out.NumPoints() {
			t.Fatalf("field %s lost or mis-sized", name)
		}
	}
}

func TestThresholdAnyVsAll(t *testing.T) {
	disk := datagen.DiskFlow(5, 16, 5)
	all, err := Threshold(disk, "Temp", 500, 900, ThresholdAllPoints)
	if err != nil {
		t.Fatal(err)
	}
	anyM, err := Threshold(disk, "Temp", 500, 900, ThresholdAnyPoint)
	if err != nil {
		t.Fatal(err)
	}
	if anyM.NumCells() < all.NumCells() {
		t.Errorf("AnyPoint (%d cells) must keep at least as many as AllPoints (%d)",
			anyM.NumCells(), all.NumCells())
	}
}

func TestThresholdImageData(t *testing.T) {
	im := sphereVolume(10)
	out, err := Threshold(im, "dist", 0, 0.5, ThresholdAllPoints)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCells() == 0 {
		t.Fatal("no voxels inside the sphere band")
	}
	for _, c := range out.Cells {
		if c.Type != data.CellVoxel {
			t.Fatal("image threshold should produce voxels")
		}
	}
	// Every surviving point is inside radius 0.5.
	for _, p := range out.Pts {
		if p.Len() > 0.5+1e-9 {
			t.Fatalf("point at radius %v survived", p.Len())
		}
	}
}

func TestThresholdErrors(t *testing.T) {
	disk := datagen.DiskFlow(3, 8, 3)
	if _, err := Threshold(disk, "nope", 0, 1, ThresholdAllPoints); err == nil {
		t.Error("missing array should error")
	}
	if _, err := Threshold(disk, "V", 0, 1, ThresholdAllPoints); err == nil {
		t.Error("vector array should error")
	}
	pd := data.NewPolyData()
	f := data.NewField("s", 1, 0)
	pd.Points.Add(f)
	if _, err := Threshold(pd, "s", 0, 1, ThresholdAllPoints); err == nil {
		t.Error("polydata should error")
	}
}

func TestTransformPolyData(t *testing.T) {
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(1, 0, 0))
	pd.AddPoint(vmath.V(0, 1, 0))
	pd.AddPoint(vmath.V(0, 0, 1))
	pd.AddTriangle(0, 1, 2)
	f := data.NewField("s", 1, 3)
	f.Data = []float64{1, 2, 3}
	pd.Points.Add(f)

	m := TransformFromTRS(vmath.V(10, 0, 0), vmath.V(0, 0, 90), vmath.V(2, 2, 2))
	out := TransformPolyData(pd, m)
	// Point (1,0,0): scale -> (2,0,0); rotate z 90 -> (0,2,0); translate -> (10,2,0).
	if !out.Pts[0].NearEq(vmath.V(10, 2, 0), 1e-9) {
		t.Errorf("transformed point = %v", out.Pts[0])
	}
	// Original untouched; data copied.
	if !pd.Pts[0].NearEq(vmath.V(1, 0, 0), 0) {
		t.Error("input mutated")
	}
	if out.Points.Get("s").Scalar(2) != 3 {
		t.Error("point data lost")
	}
	if out.NumTriangles() != 1 {
		t.Error("connectivity lost")
	}
}

func TestTransformGridPreservesVolumeUnderRotation(t *testing.T) {
	ug := data.NewUnstructuredGrid()
	corners := [][3]float64{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	for _, c := range corners {
		ug.AddPoint(vmath.V(c[0], c[1], c[2]))
	}
	ug.AddCell(data.CellHexahedron, 0, 1, 2, 3, 4, 5, 6, 7)
	m := TransformFromTRS(vmath.V(5, -3, 2), vmath.V(30, 45, 60), vmath.V(1, 1, 1))
	out := TransformGrid(ug, m)
	vol := 0.0
	for _, tt := range GridTets(out) {
		vol += math.Abs(TetVolume(out.Pts[tt[0]], out.Pts[tt[1]], out.Pts[tt[2]], out.Pts[tt[3]]))
	}
	if math.Abs(vol-1) > 1e-9 {
		t.Errorf("rigid transform changed volume: %v", vol)
	}
}

func TestTransformFromTRSDefaults(t *testing.T) {
	m := TransformFromTRS(vmath.Vec3{}, vmath.Vec3{}, vmath.Vec3{})
	p := vmath.V(3, 4, 5)
	if !m.MulPoint(p).NearEq(p, 1e-12) {
		t.Error("zero TRS should be identity (scale defaults to 1)")
	}
}
