package filters

import (
	"fmt"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

// ThresholdMethod selects which cells survive thresholding.
type ThresholdMethod int

// Threshold methods, mirroring VTK's vtkThreshold options.
const (
	// ThresholdAllPoints keeps a cell only if every point passes.
	ThresholdAllPoints ThresholdMethod = iota
	// ThresholdAnyPoint keeps a cell if at least one point passes.
	ThresholdAnyPoint
)

// Threshold keeps the cells whose point scalars fall inside [lo, hi],
// like ParaView's Threshold filter. The output is an unstructured grid
// with compacted points and all point data carried over. ImageData input
// is converted to voxel cells first.
func Threshold(ds data.Dataset, array string, lo, hi float64, method ThresholdMethod) (*data.UnstructuredGrid, error) {
	f := ds.PointData().Get(array)
	if f == nil {
		return nil, fmt.Errorf("filters: threshold: no point array named %q", array)
	}
	if f.NumComponents != 1 {
		return nil, fmt.Errorf("filters: threshold: array %q is not a scalar", array)
	}
	var cells []data.Cell
	var points func(i int) vmath.Vec3
	switch t := ds.(type) {
	case *data.UnstructuredGrid:
		cells = t.Cells
		points = t.Point
	case *data.ImageData:
		nx, ny, nz := t.Dims[0], t.Dims[1], t.Dims[2]
		for k := 0; k < nz-1; k++ {
			for j := 0; j < ny-1; j++ {
				for i := 0; i < nx-1; i++ {
					cells = append(cells, data.Cell{Type: data.CellVoxel, IDs: []int{
						t.Index(i, j, k), t.Index(i+1, j, k),
						t.Index(i, j+1, k), t.Index(i+1, j+1, k),
						t.Index(i, j, k+1), t.Index(i+1, j, k+1),
						t.Index(i, j+1, k+1), t.Index(i+1, j+1, k+1),
					}})
				}
			}
		}
		points = t.Point
	default:
		return nil, fmt.Errorf("filters: threshold: unsupported dataset type %s", ds.TypeName())
	}

	pass := func(id int) bool {
		v := f.Scalar(id)
		return v >= lo && v <= hi
	}
	out := data.NewUnstructuredGrid()
	var srcFields, outFields []*data.Field
	pd := ds.PointData()
	for i := 0; i < pd.Len(); i++ {
		sf := pd.At(i)
		nf := data.NewField(sf.Name, sf.NumComponents, 0)
		srcFields = append(srcFields, sf)
		outFields = append(outFields, nf)
		out.Points.Add(nf)
	}
	remap := map[int]int{}
	mapPoint := func(id int) int {
		if nid, ok := remap[id]; ok {
			return nid
		}
		nid := out.AddPoint(points(id))
		for fi, sf := range srcFields {
			nf := outFields[fi]
			for c := 0; c < sf.NumComponents; c++ {
				nf.Data = append(nf.Data, sf.Value(id, c))
			}
		}
		remap[id] = nid
		return nid
	}
	for _, c := range cells {
		keep := method == ThresholdAllPoints
		for _, id := range c.IDs {
			p := pass(id)
			if method == ThresholdAllPoints && !p {
				keep = false
				break
			}
			if method == ThresholdAnyPoint && p {
				keep = true
				break
			}
			if method == ThresholdAllPoints {
				keep = true
			}
		}
		if !keep {
			continue
		}
		ids := make([]int, len(c.IDs))
		for i, id := range c.IDs {
			ids[i] = mapPoint(id)
		}
		out.AddCell(c.Type, ids...)
	}
	return out, nil
}

// TransformPolyData applies an affine transform to a polygonal dataset,
// returning a new dataset (point data is shared structure-wise via deep
// copy; normals are re-derived by callers if needed).
func TransformPolyData(pd *data.PolyData, m vmath.Mat4) *data.PolyData {
	out := pd.Clone()
	for i, p := range out.Pts {
		out.Pts[i] = m.MulPoint(p)
	}
	return out
}

// TransformGrid applies an affine transform to an unstructured grid.
func TransformGrid(ug *data.UnstructuredGrid, m vmath.Mat4) *data.UnstructuredGrid {
	out := data.NewUnstructuredGrid()
	out.Pts = make([]vmath.Vec3, len(ug.Pts))
	for i, p := range ug.Pts {
		out.Pts[i] = m.MulPoint(p)
	}
	out.Cells = make([]data.Cell, len(ug.Cells))
	for i, c := range ug.Cells {
		out.Cells[i] = data.Cell{Type: c.Type, IDs: append([]int(nil), c.IDs...)}
	}
	out.Points = ug.Points.Clone()
	out.CellD = ug.CellD.Clone()
	return out
}

// TransformFromTRS builds the VTK-style transform: scale, then rotate
// (Z, then X, then Y, in degrees), then translate.
func TransformFromTRS(translate, rotateDeg, scale vmath.Vec3) vmath.Mat4 {
	if scale == (vmath.Vec3{}) {
		scale = vmath.V(1, 1, 1)
	}
	m := vmath.Scale(scale)
	m = vmath.RotateAxis(vmath.V(0, 0, 1), vmath.Radians(rotateDeg.Z)).MulM(m)
	m = vmath.RotateAxis(vmath.V(1, 0, 0), vmath.Radians(rotateDeg.X)).MulM(m)
	m = vmath.RotateAxis(vmath.V(0, 1, 0), vmath.Radians(rotateDeg.Y)).MulM(m)
	return vmath.Translate(translate).MulM(m)
}
