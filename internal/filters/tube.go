package filters

import (
	"math"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

// TubeOptions configures the tube filter.
type TubeOptions struct {
	// Radius of the tube (default: 1% of the input diagonal).
	Radius float64
	// NumSides of the tube cross-section polygon (default 8, >= 3).
	NumSides int
	// Capped closes the tube ends with polygons.
	Capped bool
}

func (o TubeOptions) withDefaults(pd *data.PolyData) TubeOptions {
	if o.Radius <= 0 {
		o.Radius = pd.Bounds().Diagonal() * 0.01
		if o.Radius == 0 {
			o.Radius = 0.01
		}
	}
	if o.NumSides < 3 {
		o.NumSides = 8
	}
	return o
}

// Tube sweeps a circular cross-section along every polyline of the input,
// producing a surface like VTK's Tube filter. Point data is copied from
// the generating line point to the ring it produces, so color mapping along
// the line is preserved.
func Tube(pd *data.PolyData, opt TubeOptions) *data.PolyData {
	opt = opt.withDefaults(pd)
	out := data.NewPolyData()
	var srcFields, outFields []*data.Field
	for i := 0; i < pd.Points.Len(); i++ {
		f := pd.Points.At(i)
		nf := data.NewField(f.Name, f.NumComponents, 0)
		srcFields = append(srcFields, f)
		outFields = append(outFields, nf)
		out.Points.Add(nf)
	}
	copyData := func(src int) {
		for fi, f := range srcFields {
			nf := outFields[fi]
			for c := 0; c < f.NumComponents; c++ {
				nf.Data = append(nf.Data, f.Value(src, c))
			}
		}
	}
	ns := opt.NumSides
	for _, line := range pd.Lines {
		if len(line) < 2 {
			continue
		}
		// Tangents per line point.
		tangents := make([]vmath.Vec3, len(line))
		for i := range line {
			var t vmath.Vec3
			if i == 0 {
				t = pd.Pts[line[1]].Sub(pd.Pts[line[0]])
			} else if i == len(line)-1 {
				t = pd.Pts[line[i]].Sub(pd.Pts[line[i-1]])
			} else {
				t = pd.Pts[line[i+1]].Sub(pd.Pts[line[i-1]])
			}
			tangents[i] = t.Norm()
		}
		// Parallel-transport frames: start with any normal orthogonal to
		// the first tangent, then rotate minimally between segments.
		normal := arbitraryNormal(tangents[0])
		ringStart := make([]int, len(line))
		for i, srcID := range line {
			t := tangents[i]
			if i > 0 {
				normal = transportNormal(normal, tangents[i-1], t)
			}
			binormal := t.Cross(normal).Norm()
			ringStart[i] = len(out.Pts)
			center := pd.Pts[srcID]
			for s := 0; s < ns; s++ {
				ang := 2 * math.Pi * float64(s) / float64(ns)
				offset := normal.Mul(math.Cos(ang)).Add(binormal.Mul(math.Sin(ang)))
				out.AddPoint(center.Add(offset.Mul(opt.Radius)))
				copyData(srcID)
			}
		}
		// Stitch consecutive rings with quads.
		for i := 0; i+1 < len(line); i++ {
			r0, r1 := ringStart[i], ringStart[i+1]
			for s := 0; s < ns; s++ {
				sn := (s + 1) % ns
				out.AddPoly(r0+s, r0+sn, r1+sn, r1+s)
			}
		}
		if opt.Capped {
			first := make([]int, ns)
			last := make([]int, ns)
			for s := 0; s < ns; s++ {
				first[s] = ringStart[0] + ns - 1 - s // reversed for outward normal
				last[s] = ringStart[len(line)-1] + s
			}
			out.AddPoly(first...)
			out.AddPoly(last...)
		}
	}
	return out
}

// arbitraryNormal returns a unit vector orthogonal to t.
func arbitraryNormal(t vmath.Vec3) vmath.Vec3 {
	ref := vmath.V(0, 0, 1)
	if math.Abs(t.Z) > 0.9 {
		ref = vmath.V(1, 0, 0)
	}
	return t.Cross(ref).Norm()
}

// transportNormal rotates the frame normal by the rotation carrying the
// previous tangent onto the current one (parallel transport), keeping the
// tube free of torsion artifacts.
func transportNormal(normal, prevT, curT vmath.Vec3) vmath.Vec3 {
	axis := prevT.Cross(curT)
	s := axis.Len()
	if s < 1e-12 {
		return normal
	}
	c := vmath.Clamp(prevT.Dot(curT), -1, 1)
	rot := vmath.RotateAxis(axis.Mul(1/s), math.Atan2(s, c))
	n := rot.MulDir(normal)
	// Re-orthogonalize against accumulated drift.
	n = n.Sub(curT.Mul(n.Dot(curT)))
	return n.Norm()
}
