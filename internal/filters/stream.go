package filters

import (
	"context"
	"fmt"
	"math"

	"chatvis/internal/data"
	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// VectorSampler evaluates a vector field (and optionally all other point
// fields) at arbitrary world positions. Implementations exist for image
// data (trilinear) and unstructured grids (tet-barycentric with a uniform
// cell locator).
type VectorSampler interface {
	// Velocity samples the integration vector field at p.
	Velocity(p vmath.Vec3) (vmath.Vec3, bool)
	// Fields interpolates every point field at p into dst, keyed by field
	// name; returns false if p is outside the dataset.
	Fields(p vmath.Vec3, dst map[string][]float64) bool
	// Bounds returns the dataset bounds, used for step-size heuristics.
	Bounds() vmath.AABB
	// FieldInfo lists (name, components) pairs of the sampled fields.
	FieldInfo() []FieldInfo
}

// FieldInfo describes one interpolatable field.
type FieldInfo struct {
	Name       string
	Components int
}

// ImageSampler samples fields on an ImageData by trilinear interpolation.
type ImageSampler struct {
	Image  *data.ImageData
	Vector *data.Field
}

// NewImageSampler builds a sampler integrating the named vector field.
func NewImageSampler(im *data.ImageData, vectorName string) (*ImageSampler, error) {
	f := im.Points.Get(vectorName)
	if f == nil {
		return nil, fmt.Errorf("filters: no point array named %q", vectorName)
	}
	if f.NumComponents != 3 {
		return nil, fmt.Errorf("filters: array %q is not a vector", vectorName)
	}
	return &ImageSampler{Image: im, Vector: f}, nil
}

// Velocity implements VectorSampler.
func (s *ImageSampler) Velocity(p vmath.Vec3) (vmath.Vec3, bool) {
	return s.Image.SampleVector(s.Vector, p)
}

// Fields implements VectorSampler.
func (s *ImageSampler) Fields(p vmath.Vec3, dst map[string][]float64) bool {
	pd := s.Image.Points
	for i := 0; i < pd.Len(); i++ {
		f := pd.At(i)
		switch f.NumComponents {
		case 1:
			v, ok := s.Image.SampleScalar(f, p)
			if !ok {
				return false
			}
			dst[f.Name] = append(dst[f.Name][:0], v)
		case 3:
			v, ok := s.Image.SampleVector(f, p)
			if !ok {
				return false
			}
			dst[f.Name] = append(dst[f.Name][:0], v.X, v.Y, v.Z)
		}
	}
	return true
}

// Bounds implements VectorSampler.
func (s *ImageSampler) Bounds() vmath.AABB { return s.Image.Bounds() }

// FieldInfo implements VectorSampler.
func (s *ImageSampler) FieldInfo() []FieldInfo { return fieldInfo(s.Image.Points) }

func fieldInfo(fs *data.FieldSet) []FieldInfo {
	var out []FieldInfo
	for i := 0; i < fs.Len(); i++ {
		f := fs.At(i)
		if f.NumComponents == 1 || f.NumComponents == 3 {
			out = append(out, FieldInfo{Name: f.Name, Components: f.NumComponents})
		}
	}
	return out
}

// GridSampler samples fields on an unstructured grid. Cells are
// decomposed into tetrahedra, binned into a uniform spatial grid, and
// interpolation uses barycentric coordinates.
type GridSampler struct {
	grid   *data.UnstructuredGrid
	vector *data.Field
	tets   [][4]int
	bounds vmath.AABB
	// uniform locator
	div  [3]int
	cell vmath.Vec3
	bins [][]int32
	inv  vmath.Vec3
	eps  float64
}

// NewGridSampler builds a sampler over ug integrating the named vector
// field.
func NewGridSampler(ug *data.UnstructuredGrid, vectorName string) (*GridSampler, error) {
	f := ug.Points.Get(vectorName)
	if f == nil {
		return nil, fmt.Errorf("filters: no point array named %q", vectorName)
	}
	if f.NumComponents != 3 {
		return nil, fmt.Errorf("filters: array %q is not a vector", vectorName)
	}
	tets := GridTets(ug)
	if len(tets) == 0 {
		return nil, fmt.Errorf("filters: dataset has no volumetric cells to trace through")
	}
	s := &GridSampler{grid: ug, vector: f, tets: tets, bounds: ug.Bounds()}
	// Locator resolution: roughly cube-root of tet count per axis.
	res := int(math.Cbrt(float64(len(tets)))) + 1
	if res < 2 {
		res = 2
	}
	if res > 64 {
		res = 64
	}
	s.div = [3]int{res, res, res}
	size := s.bounds.Size()
	s.cell = vmath.V(
		nonzeroDiv(size.X, float64(res)),
		nonzeroDiv(size.Y, float64(res)),
		nonzeroDiv(size.Z, float64(res)))
	s.inv = vmath.V(1/s.cell.X, 1/s.cell.Y, 1/s.cell.Z)
	s.eps = s.bounds.Diagonal() * 1e-9
	s.bins = make([][]int32, res*res*res)
	for ti, t := range s.tets {
		bb := vmath.EmptyAABB()
		for _, id := range t {
			bb.Extend(ug.Pts[id])
		}
		i0, j0, k0 := s.binIJK(bb.Min)
		i1, j1, k1 := s.binIJK(bb.Max)
		for k := k0; k <= k1; k++ {
			for j := j0; j <= j1; j++ {
				for i := i0; i <= i1; i++ {
					b := i + res*(j+res*k)
					s.bins[b] = append(s.bins[b], int32(ti))
				}
			}
		}
	}
	return s, nil
}

func nonzeroDiv(v, d float64) float64 {
	c := v / d
	if c <= 0 {
		return 1
	}
	return c
}

func (s *GridSampler) binIJK(p vmath.Vec3) (i, j, k int) {
	clampi := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	i = clampi(int((p.X-s.bounds.Min.X)*s.inv.X), s.div[0]-1)
	j = clampi(int((p.Y-s.bounds.Min.Y)*s.inv.Y), s.div[1]-1)
	k = clampi(int((p.Z-s.bounds.Min.Z)*s.inv.Z), s.div[2]-1)
	return
}

// locate finds a tet containing p and its barycentric coordinates.
func (s *GridSampler) locate(p vmath.Vec3) (t [4]int, l [4]float64, ok bool) {
	if !s.bounds.Expanded(s.eps).Contains(p) {
		return t, l, false
	}
	i, j, k := s.binIJK(p)
	bin := s.bins[i+s.div[0]*(j+s.div[1]*k)]
	for _, ti := range bin {
		tt := s.tets[ti]
		bl, good := Barycentric(p, s.grid.Pts[tt[0]], s.grid.Pts[tt[1]], s.grid.Pts[tt[2]], s.grid.Pts[tt[3]])
		if good && InsideTet(bl, 1e-9) {
			return tt, bl, true
		}
	}
	return t, l, false
}

// Velocity implements VectorSampler.
func (s *GridSampler) Velocity(p vmath.Vec3) (vmath.Vec3, bool) {
	t, l, ok := s.locate(p)
	if !ok {
		return vmath.Vec3{}, false
	}
	var v vmath.Vec3
	for i := 0; i < 4; i++ {
		v = v.Add(s.vector.Vec3(t[i]).Mul(l[i]))
	}
	return v, true
}

// Fields implements VectorSampler.
func (s *GridSampler) Fields(p vmath.Vec3, dst map[string][]float64) bool {
	t, l, ok := s.locate(p)
	if !ok {
		return false
	}
	pd := s.grid.Points
	for i := 0; i < pd.Len(); i++ {
		f := pd.At(i)
		if f.NumComponents != 1 && f.NumComponents != 3 {
			continue
		}
		vals := dst[f.Name][:0]
		for c := 0; c < f.NumComponents; c++ {
			v := 0.0
			for vi := 0; vi < 4; vi++ {
				v += f.Value(t[vi], c) * l[vi]
			}
			vals = append(vals, v)
		}
		dst[f.Name] = vals
	}
	return true
}

// Bounds implements VectorSampler.
func (s *GridSampler) Bounds() vmath.AABB { return s.bounds }

// FieldInfo implements VectorSampler.
func (s *GridSampler) FieldInfo() []FieldInfo { return fieldInfo(s.grid.Points) }

// StreamTracerOptions configures streamline integration, mirroring the
// knobs of ParaView's StreamTracer proxy that the experiments use.
type StreamTracerOptions struct {
	// MaxSteps bounds the number of RK4 steps per direction (default 1000).
	MaxSteps int
	// StepFraction is the integration step as a fraction of the dataset
	// diagonal (default 1/500).
	StepFraction float64
	// MaxLength bounds total streamline arc length as a multiple of the
	// dataset diagonal (default 2).
	MaxLength float64
	// TerminalSpeed stops integration in near-stagnant flow (default 1e-9).
	TerminalSpeed float64
	// Both integrates backward as well as forward (default true, matching
	// ParaView's BOTH direction default).
	Both bool
}

func (o StreamTracerOptions) withDefaults() StreamTracerOptions {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 1000
	}
	if o.StepFraction <= 0 {
		o.StepFraction = 1.0 / 500
	}
	if o.MaxLength <= 0 {
		o.MaxLength = 2
	}
	if o.TerminalSpeed <= 0 {
		o.TerminalSpeed = 1e-9
	}
	return o
}

// streamChunk accumulates the output of a contiguous run of seeds in
// struct-of-arrays form: flat point/attribute/time slabs plus polyline
// connectivity (conn/lens) in chunk-local ids. Chunks concatenate in
// chunk order — and seeds trace in order within a chunk — reproducing
// the serial output exactly. Chunks are arena-pooled, so the per-seed
// scratch (RK4 id buffers, the sampler field map) is reused across
// seeds and across sweeps.
type streamChunk struct {
	pts    []vmath.Vec3
	fields [][]float64 // indexed like FieldInfo
	times  []float64
	conn   []int32 // polyline connectivity, chunk-local ids
	lens   []int32 // points per polyline

	fwd, bwd []int32 // per-seed direction scratch
	scratch  map[string][]float64
}

// Reset implements par.Resetter.
func (c *streamChunk) Reset() {
	c.pts = c.pts[:0]
	for i := range c.fields {
		c.fields[i] = c.fields[i][:0]
	}
	c.fields = c.fields[:0]
	c.times = c.times[:0]
	c.conn = c.conn[:0]
	c.lens = c.lens[:0]
	c.fwd = c.fwd[:0]
	c.bwd = c.bwd[:0]
}

func (c *streamChunk) bind(nFields int) {
	if cap(c.fields) < nFields {
		c.fields = append(c.fields[:cap(c.fields)], make([][]float64, nFields-cap(c.fields))...)
	}
	c.fields = c.fields[:nFields]
	for i := range c.fields {
		c.fields[i] = c.fields[i][:0]
	}
	if c.scratch == nil {
		c.scratch = make(map[string][]float64, nFields)
	}
}

var streamArena = par.NewArena(func() *streamChunk { return &streamChunk{} })

// traceSeed integrates one seed in both (or one) direction(s) with the
// same stepping logic as the serial tracer, appending into the chunk's
// slabs. The sampler is read-only, so chunks integrate concurrently.
func (c *streamChunk) traceSeed(s VectorSampler, seed vmath.Vec3, opt StreamTracerOptions, infos []FieldInfo, h, maxLen float64) {
	appendPoint := func(p vmath.Vec3, tm float64) (int32, bool) {
		if !s.Fields(p, c.scratch) {
			return 0, false
		}
		id := int32(len(c.pts))
		c.pts = append(c.pts, p)
		for i, info := range infos {
			c.fields[i] = append(c.fields[i], c.scratch[info.Name]...)
		}
		c.times = append(c.times, tm)
		return id, true
	}

	rk4 := func(p vmath.Vec3, dir float64) (vmath.Vec3, bool) {
		k1, ok := s.Velocity(p)
		if !ok {
			return p, false
		}
		k2, ok := s.Velocity(p.Add(k1.Norm().Mul(dir * h / 2)))
		if !ok {
			return p, false
		}
		k3, ok := s.Velocity(p.Add(k2.Norm().Mul(dir * h / 2)))
		if !ok {
			return p, false
		}
		k4, ok := s.Velocity(p.Add(k3.Norm().Mul(dir * h)))
		if !ok {
			return p, false
		}
		// Normalized-velocity RK4: fixed spatial step along the blended
		// direction (VTK integrates in cell-length units similarly).
		d := k1.Norm().Add(k2.Norm().Mul(2)).Add(k3.Norm().Mul(2)).Add(k4.Norm()).Mul(1.0 / 6)
		if d.Len() < 1e-12 {
			return p, false
		}
		return p.Add(d.Norm().Mul(dir * h)), true
	}

	trace := func(dir float64, ids []int32) []int32 {
		ids = ids[:0]
		p := seed
		tm := 0.0
		length := 0.0
		id, ok := appendPoint(p, 0)
		if !ok {
			return ids
		}
		ids = append(ids, id)
		for step := 0; step < opt.MaxSteps; step++ {
			v, ok := s.Velocity(p)
			if !ok || v.Len() < opt.TerminalSpeed {
				break
			}
			np, ok := rk4(p, dir)
			if !ok {
				break
			}
			moved := np.Sub(p).Len()
			if moved < 1e-14 {
				break
			}
			length += moved
			tm += dir * moved / math.Max(v.Len(), opt.TerminalSpeed)
			p = np
			nid, ok := appendPoint(p, tm)
			if !ok {
				break
			}
			ids = append(ids, nid)
			if length >= maxLen {
				break
			}
		}
		return ids
	}

	c.fwd = trace(+1, c.fwd)
	if opt.Both {
		c.bwd = trace(-1, c.bwd)
		// Join: reverse(backward) + forward (dropping duplicate seed).
		if len(c.bwd) > 1 {
			if n := len(c.bwd) - 1 + len(c.fwd); n >= 2 {
				c.lens = append(c.lens, int32(n))
				for i := len(c.bwd) - 1; i >= 1; i-- {
					c.conn = append(c.conn, c.bwd[i])
				}
				c.conn = append(c.conn, c.fwd...)
			}
			return
		}
	}
	if len(c.fwd) >= 2 {
		c.lens = append(c.lens, int32(len(c.fwd)))
		c.conn = append(c.conn, c.fwd...)
	}
}

// StreamTracer integrates streamlines from the given seed points through
// the sampled vector field using fourth-order Runge–Kutta, producing a
// PolyData of polylines with every point field interpolated along the
// lines plus an "IntegrationTime" array, like VTK's stream tracer.
func StreamTracer(s VectorSampler, seeds []vmath.Vec3, opt StreamTracerOptions) *data.PolyData {
	out, _ := StreamTracerContext(context.Background(), s, seeds, opt)
	return out
}

// StreamTracerContext is StreamTracer with cancellation. Seeds integrate
// independently on the par worker pool (samplers are read-only after
// construction); segments concatenate in seed order, so the output is
// byte-identical to a serial trace for any worker count.
func StreamTracerContext(ctx context.Context, s VectorSampler, seeds []vmath.Vec3, opt StreamTracerOptions) (*data.PolyData, error) {
	opt = opt.withDefaults()
	out := data.NewPolyData()
	infos := s.FieldInfo()
	outFields := make([]*data.Field, len(infos))
	for i, info := range infos {
		outFields[i] = data.NewField(info.Name, info.Components, 0)
		out.Points.Add(outFields[i])
	}
	timeField := data.NewField("IntegrationTime", 1, 0)
	out.Points.Add(timeField)

	h := s.Bounds().Diagonal() * opt.StepFraction
	maxLen := s.Bounds().Diagonal() * opt.MaxLength

	// Pipelined ordered merge: seeds integrate in chunks while the
	// conveyor concatenates completed chunks into an arena-pooled
	// accumulator in seed order — points are offset by the accumulator's
	// running base as each chunk lands, exactly as the old barrier merge
	// did in chunk order.
	gs := streamArena.Get()
	defer streamArena.Put(gs)
	gs.bind(len(infos))
	err := par.OrderedSweep(ctx, len(seeds), streamArena, nil, func(c *streamChunk, start, end int) {
		c.bind(len(infos))
		for i := start; i < end; i++ {
			c.traceSeed(s, seeds[i], opt, infos, h, maxLen)
		}
	}, func(ch *streamChunk) {
		base := int32(len(gs.pts))
		gs.pts = append(gs.pts, ch.pts...)
		for i := range infos {
			gs.fields[i] = append(gs.fields[i], ch.fields[i]...)
		}
		gs.times = append(gs.times, ch.times...)
		for _, id := range ch.conn {
			gs.conn = append(gs.conn, base+id)
		}
		gs.lens = append(gs.lens, ch.lens...)
	})
	if err != nil {
		return nil, err
	}
	out.Pts = append(make([]vmath.Vec3, 0, len(gs.pts)), gs.pts...)
	for i := range infos {
		outFields[i].Data = append(make([]float64, 0, len(gs.fields[i])), gs.fields[i]...)
	}
	timeField.Data = append(make([]float64, 0, len(gs.times)), gs.times...)
	out.Lines = make([][]int, 0, len(gs.lens))
	out.ReserveConn(len(gs.conn))
	off := 0
	for _, n := range gs.lens {
		ids := out.NewLine(int(n))
		for k := range ids {
			ids[k] = int(gs.conn[off+k])
		}
		off += int(n)
	}
	return out, nil
}

// DefaultPointCloudSeeds reproduces ParaView's "Point Cloud" seed type:
// n points uniformly distributed in a sphere centred at the dataset centre
// with radius a tenth of the diagonal (ParaView's default). Deterministic:
// a low-discrepancy spiral plus radial stratification.
func DefaultPointCloudSeeds(bounds vmath.AABB, n int) []vmath.Vec3 {
	if n <= 0 {
		n = 100
	}
	c := bounds.Center()
	radius := bounds.Diagonal() * 0.1
	seeds := make([]vmath.Vec3, n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		// Fibonacci sphere direction.
		y := 1 - 2*(float64(i)+0.5)/float64(n)
		r := math.Sqrt(1 - y*y)
		th := golden * float64(i)
		dir := vmath.V(r*math.Cos(th), y, r*math.Sin(th))
		// Stratified radius for uniform density in the ball.
		rad := radius * math.Cbrt((float64(i)+0.5)/float64(n))
		seeds[i] = c.Add(dir.Mul(rad))
	}
	return seeds
}
