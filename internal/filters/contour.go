package filters

import (
	"context"
	"fmt"

	"chatvis/internal/data"
	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// surfaceBuilder accumulates an interpolated triangle mesh during marching
// tetrahedra, in struct-of-arrays form: flat vertex/key/attribute/triangle
// slabs instead of a PolyData with one allocation per cell. Vertices
// created on the same source edge are shared (open-addressing PairTable
// keyed by the canonical edge), so the output is watertight and point data
// interpolates once per edge. Each vertex remembers its canonical edge key
// so chunk-local builders can be merged into the exact point numbering a
// serial sweep would produce.
//
// Builders are arena-pooled: one is checked out per chunk of a sweep and
// recycled after the merge, so steady-state sweeps allocate only the final
// exact-size output.
type surfaceBuilder struct {
	src       data.Dataset
	srcFields []*data.Field

	pts   []vmath.Vec3 // interpolated vertices, creation order
	keys  []uint64     // canonical edge key of each vertex (PackPair)
	fdata [][]float64  // interpolated attributes, parallel to srcFields
	tris  []int32      // triangle connectivity, 3 builder-local ids per tri
	edges *data.PairTable
	remap []int32 // absorb scratch: chunk-local id -> accumulator id
}

// Reset implements par.Resetter: empty every slab, keep every capacity.
func (b *surfaceBuilder) Reset() {
	b.src = nil
	b.srcFields = b.srcFields[:0]
	b.pts = b.pts[:0]
	b.keys = b.keys[:0]
	b.tris = b.tris[:0]
	for i := range b.fdata {
		b.fdata[i] = b.fdata[i][:0]
	}
	b.fdata = b.fdata[:0]
	b.edges.Reset()
	b.remap = b.remap[:0]
}

// bind points a clean builder at a source dataset, recycling the
// per-field attribute slabs from previous sweeps.
func (b *surfaceBuilder) bind(src data.Dataset) {
	b.src = src
	pd := src.PointData()
	n := pd.Len()
	for i := 0; i < n; i++ {
		b.srcFields = append(b.srcFields, pd.At(i))
	}
	if cap(b.fdata) < n {
		b.fdata = append(b.fdata[:cap(b.fdata)], make([][]float64, n-cap(b.fdata))...)
	}
	b.fdata = b.fdata[:n]
	for i := range b.fdata {
		b.fdata[i] = b.fdata[i][:0]
	}
}

var surfaceArena = par.NewArena(func() *surfaceBuilder {
	return &surfaceBuilder{edges: data.NewPairTable()}
})

// edgeVertex returns the builder-local vertex on edge (i,j), creating and
// interpolating it on first use. The crossing parameter is computed from
// the canonical (low-id first) edge orientation, so the stored position
// and attributes are bit-identical no matter which tetrahedron — or which
// parallel chunk — touches the edge first.
func (b *surfaceBuilder) edgeVertex(i, j int, level func(int) float64, iso float64) int32 {
	key := data.PackPair(i, j)
	id, added := b.edges.GetOrPut(key, int32(len(b.pts)))
	if !added {
		return id
	}
	lo, hi := data.UnpackPair(key)
	v0, v1 := level(lo), level(hi)
	t := 0.5
	if v0 != v1 {
		t = (iso - v0) / (v1 - v0)
	}
	b.pts = append(b.pts, b.src.Point(lo).Lerp(b.src.Point(hi), t))
	b.keys = append(b.keys, key)
	for fi, f := range b.srcFields {
		d := b.fdata[fi]
		for c := 0; c < f.NumComponents; c++ {
			f0 := f.Value(lo, c)
			f1 := f.Value(hi, c)
			d = append(d, f0+t*(f1-f0))
		}
		b.fdata[fi] = d
	}
	return id
}

// marchTet emits the isosurface triangles of one tetrahedron. level holds
// the per-point contouring scalar (field value for isosurfaces, signed
// plane distance for slices); iso is the threshold. All scratch lives in
// fixed-size locals — the per-tet path allocates nothing.
func (b *surfaceBuilder) marchTet(t [4]int, level func(int) float64, iso float64) {
	var inside [4]bool
	var nIn int
	var v [4]float64
	for i, id := range t {
		v[i] = level(id)
		if v[i] >= iso {
			inside[i] = true
			nIn++
		}
	}
	if nIn == 0 || nIn == 4 {
		return
	}
	ev := func(i, j int) int32 {
		return b.edgeVertex(t[i], t[j], level, iso)
	}
	// Orient triangles so the normal points from the >=iso side toward the
	// <iso side (outward from the enclosed high-value region).
	addTri := func(a, bb, c int32, refInside int) {
		pa, pb, pc := b.pts[a], b.pts[bb], b.pts[c]
		n := pb.Sub(pa).Cross(pc.Sub(pa))
		toInside := b.src.Point(t[refInside]).Sub(pa)
		if n.Dot(toInside) > 0 {
			b.tris = append(b.tris, a, c, bb)
		} else {
			b.tris = append(b.tris, a, bb, c)
		}
	}
	switch nIn {
	case 1, 3:
		// One vertex isolated on one side: single triangle.
		iso1 := -1
		want := nIn == 1 // isolated vertex is inside when nIn==1
		for i := 0; i < 4; i++ {
			if inside[i] == want {
				iso1 = i
				break
			}
		}
		var others [3]int
		no := 0
		for i := 0; i < 4; i++ {
			if i != iso1 {
				others[no] = i
				no++
			}
		}
		a := ev(iso1, others[0])
		bb := ev(iso1, others[1])
		c := ev(iso1, others[2])
		ref := iso1
		if !inside[iso1] {
			ref = others[0]
		}
		addTri(a, bb, c, ref)
	case 2:
		// Two in, two out: quad split into two triangles.
		var in2, out2 [2]int
		ni, no := 0, 0
		for i := 0; i < 4; i++ {
			if inside[i] {
				in2[ni] = i
				ni++
			} else {
				out2[no] = i
				no++
			}
		}
		q0 := ev(in2[0], out2[0])
		q1 := ev(in2[0], out2[1])
		q2 := ev(in2[1], out2[1])
		q3 := ev(in2[1], out2[0])
		addTri(q0, q1, q2, in2[0])
		addTri(q0, q2, q3, in2[0])
	}
}

// emptySurface returns an empty PolyData carrying the source's point-data
// field headers — the shape every marching sweep output shares.
func emptySurface(src data.Dataset) (*data.PolyData, []*data.Field) {
	out := data.NewPolyData()
	pd := src.PointData()
	fields := make([]*data.Field, pd.Len())
	for i := range fields {
		f := pd.At(i)
		nf := data.NewField(f.Name, f.NumComponents, 0)
		fields[i] = nf
		out.Points.Add(nf)
	}
	return out, fields
}

// absorb merges one chunk builder into the accumulator g, deduplicating
// edge vertices across chunk boundaries by their canonical keys. Chunk
// builders must be absorbed in chunk index order; because chunks cover
// the tetrahedron sweep in order and each vertex keeps the value
// computed from its canonical edge orientation, the accumulated point
// numbering, positions, attributes and triangle list are byte-identical
// to a serial sweep — for ANY chunking.
func (g *surfaceBuilder) absorb(b *surfaceBuilder) {
	if cap(g.remap) < len(b.pts) {
		g.remap = make([]int32, len(b.pts))
	}
	remap := g.remap[:len(b.pts)]
	for li, key := range b.keys {
		gid, added := g.edges.GetOrPut(key, int32(len(g.pts)))
		if added {
			g.pts = append(g.pts, b.pts[li])
			for fi, f := range g.srcFields {
				nc := f.NumComponents
				g.fdata[fi] = append(g.fdata[fi], b.fdata[fi][li*nc:(li+1)*nc]...)
			}
		}
		remap[li] = gid
	}
	for t := 0; t+2 < len(b.tris); t += 3 {
		g.tris = append(g.tris, remap[b.tris[t]], remap[b.tris[t+1]], remap[b.tris[t+2]])
	}
}

// materialize copies the accumulated mesh into a fresh exact-capacity
// PolyData (never a view of arena memory), so the accumulator can be
// recycled as soon as it returns.
func (g *surfaceBuilder) materialize(src data.Dataset) *data.PolyData {
	out, outFields := emptySurface(src)
	out.Pts = append(make([]vmath.Vec3, 0, len(g.pts)), g.pts...)
	for fi, nf := range outFields {
		nf.Data = append(make([]float64, 0, len(g.fdata[fi])), g.fdata[fi]...)
	}
	out.Polys = make([][]int, 0, len(g.tris)/3)
	out.ReserveConn(len(g.tris))
	for t := 0; t+2 < len(g.tris); t += 3 {
		out.AddTriangle(int(g.tris[t]), int(g.tris[t+1]), int(g.tris[t+2]))
	}
	return out
}

// marchSurface runs the marching-tetrahedra sweep over the dataset as a
// pipelined ordered sweep: chunks fill arena-pooled builders in
// parallel while a single consumer absorbs them into an accumulator in
// chunk index order as they complete — the merge overlaps the sweep
// instead of waiting for a barrier, with identical output.
func marchSurface(ctx context.Context, ds data.Dataset, level func(int) float64, iso float64) (*data.PolyData, error) {
	gb := surfaceArena.Get()
	defer surfaceArena.Put(gb)
	gb.bind(ds)
	consume := func(b *surfaceBuilder) { gb.absorb(b) }
	var err error
	switch d := ds.(type) {
	case *data.ImageData:
		nCubes := imageCubeCount(d)
		err = par.OrderedSweep(ctx, nCubes, surfaceArena, nil, func(b *surfaceBuilder, start, end int) {
			b.bind(ds)
			imageTetsRange(d, start, end, func(t [4]int) { b.marchTet(t, level, iso) })
		}, consume)
	case *data.UnstructuredGrid:
		tets := GridTets(d)
		err = par.OrderedSweep(ctx, len(tets), surfaceArena, nil, func(b *surfaceBuilder, start, end int) {
			b.bind(ds)
			for _, t := range tets[start:end] {
				b.marchTet(t, level, iso)
			}
		}, consume)
	default:
		return nil, fmt.Errorf("filters: marching tetrahedra: unsupported dataset type %s", ds.TypeName())
	}
	if err != nil {
		return nil, err
	}
	return gb.materialize(ds), nil
}

// Contour extracts the isosurface of the named scalar field at the given
// value. Supported inputs: *data.ImageData and *data.UnstructuredGrid.
// Matches VTK's Contour filter output: a PolyData with all point-data
// arrays interpolated onto the surface.
func Contour(ds data.Dataset, fieldName string, value float64) (*data.PolyData, error) {
	return ContourContext(context.Background(), ds, fieldName, value)
}

// ContourContext is Contour with cancellation: the marching sweep runs in
// parallel chunks on the par worker pool and aborts early when ctx is
// canceled.
func ContourContext(ctx context.Context, ds data.Dataset, fieldName string, value float64) (*data.PolyData, error) {
	f := ds.PointData().Get(fieldName)
	if f == nil {
		return nil, fmt.Errorf("filters: contour: no point array named %q", fieldName)
	}
	if f.NumComponents != 1 {
		return nil, fmt.Errorf("filters: contour: array %q is not a scalar", fieldName)
	}
	if !marchable(ds) {
		return nil, fmt.Errorf("filters: contour: unsupported dataset type %s", ds.TypeName())
	}
	return marchSurface(ctx, ds, func(i int) float64 { return f.Scalar(i) }, value)
}

// marchable reports whether the dataset type has a tetrahedral sweep.
func marchable(ds data.Dataset) bool {
	switch ds.(type) {
	case *data.ImageData, *data.UnstructuredGrid:
		return true
	}
	return false
}

// ContourLines extracts iso-lines of a scalar field on a triangulated
// surface (marching triangles). It is the second stage of the paper's
// slice-then-contour pipeline.
func ContourLines(pd *data.PolyData, fieldName string, value float64) (*data.PolyData, error) {
	f := pd.Points.Get(fieldName)
	if f == nil {
		return nil, fmt.Errorf("filters: contour lines: no point array named %q", fieldName)
	}
	if f.NumComponents != 1 {
		return nil, fmt.Errorf("filters: contour lines: array %q is not a scalar", fieldName)
	}
	out := data.NewPolyData()
	var outFields []*data.Field
	var srcFields []*data.Field
	for i := 0; i < pd.Points.Len(); i++ {
		sf := pd.Points.At(i)
		nf := data.NewField(sf.Name, sf.NumComponents, 0)
		srcFields = append(srcFields, sf)
		outFields = append(outFields, nf)
		out.Points.Add(nf)
	}
	edgeVerts := data.NewPairTable()
	edgeVertex := func(i, j int, t float64) int {
		key := data.PackPair(i, j)
		if j < i {
			t = 1 - t // parameter follows the canonical orientation
		}
		id, added := edgeVerts.GetOrPut(key, int32(len(out.Pts)))
		if !added {
			return int(id)
		}
		lo, hi := data.UnpackPair(key)
		out.AddPoint(pd.Pts[lo].Lerp(pd.Pts[hi], t))
		for fi, sf := range srcFields {
			nf := outFields[fi]
			for c := 0; c < sf.NumComponents; c++ {
				v0, v1 := sf.Value(lo, c), sf.Value(hi, c)
				nf.Data = append(nf.Data, v0+t*(v1-v0))
			}
		}
		return int(id)
	}
	pd.EachTriangle(func(a, b, c int) {
		ids := [3]int{a, b, c}
		var vals [3]float64
		var in [3]bool
		nIn := 0
		for i, id := range ids {
			vals[i] = f.Scalar(id)
			if vals[i] >= value {
				in[i] = true
				nIn++
			}
		}
		if nIn == 0 || nIn == 3 {
			return
		}
		cross := func(vA, vB float64) float64 {
			d := vB - vA
			if d == 0 {
				return 0.5
			}
			return (value - vA) / d
		}
		// Find the isolated vertex and connect crossings on its two edges.
		isolated := -1
		want := nIn == 1
		for i := 0; i < 3; i++ {
			if in[i] == want {
				isolated = i
				break
			}
		}
		o1, o2 := (isolated+1)%3, (isolated+2)%3
		p1 := edgeVertex(ids[isolated], ids[o1], cross(vals[isolated], vals[o1]))
		p2 := edgeVertex(ids[isolated], ids[o2], cross(vals[isolated], vals[o2]))
		if p1 != p2 {
			out.AddLine(p1, p2)
		}
	})
	return out, nil
}

// Slice cuts the dataset with a plane and returns the triangulated cross
// section with all point data interpolated, like VTK's Slice filter with a
// plane cut function.
func Slice(ds data.Dataset, plane vmath.Plane) (*data.PolyData, error) {
	return SliceContext(context.Background(), ds, plane)
}

// SliceContext is Slice with cancellation; the marching sweep runs in
// parallel chunks on the par worker pool.
func SliceContext(ctx context.Context, ds data.Dataset, plane vmath.Plane) (*data.PolyData, error) {
	if !marchable(ds) {
		return nil, fmt.Errorf("filters: slice: unsupported dataset type %s", ds.TypeName())
	}
	return marchSurface(ctx, ds, func(i int) float64 { return plane.Eval(ds.Point(i)) }, 0)
}
