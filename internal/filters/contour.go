package filters

import (
	"context"
	"fmt"

	"chatvis/internal/data"
	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// surfaceBuilder accumulates an interpolated triangle mesh during marching
// tetrahedra. Vertices created on the same source edge are shared, so the
// output is watertight and point data interpolates once per edge. Each
// vertex remembers its canonical edge key so chunk-local builders can be
// merged into the exact point numbering a serial sweep would produce.
type surfaceBuilder struct {
	src       data.Dataset
	srcFields []*data.Field
	out       *data.PolyData
	outFields []*data.Field
	edgeVerts map[[2]int]int
	keys      [][2]int // canonical edge key of each output vertex, in creation order
}

func newSurfaceBuilder(src data.Dataset) *surfaceBuilder {
	b := &surfaceBuilder{
		src:       src,
		out:       data.NewPolyData(),
		edgeVerts: make(map[[2]int]int),
	}
	pd := src.PointData()
	for i := 0; i < pd.Len(); i++ {
		f := pd.At(i)
		nf := data.NewField(f.Name, f.NumComponents, 0)
		b.srcFields = append(b.srcFields, f)
		b.outFields = append(b.outFields, nf)
		b.out.Points.Add(nf)
	}
	return b
}

// edgeVertex returns the output vertex on edge (i,j), creating and
// interpolating it on first use. The crossing parameter is computed from
// the canonical (low-id first) edge orientation, so the stored position
// and attributes are bit-identical no matter which tetrahedron — or which
// parallel chunk — touches the edge first.
func (b *surfaceBuilder) edgeVertex(i, j int, level func(int) float64, iso float64) int {
	key := [2]int{i, j}
	if j < i {
		key = [2]int{j, i}
	}
	if id, ok := b.edgeVerts[key]; ok {
		return id
	}
	v0, v1 := level(key[0]), level(key[1])
	t := 0.5
	if v0 != v1 {
		t = (iso - v0) / (v1 - v0)
	}
	p := b.src.Point(key[0]).Lerp(b.src.Point(key[1]), t)
	id := b.out.AddPoint(p)
	for fi, f := range b.srcFields {
		nf := b.outFields[fi]
		for c := 0; c < f.NumComponents; c++ {
			f0 := f.Value(key[0], c)
			f1 := f.Value(key[1], c)
			nf.Data = append(nf.Data, f0+t*(f1-f0))
		}
	}
	b.edgeVerts[key] = id
	b.keys = append(b.keys, key)
	return id
}

// marchTet emits the isosurface triangles of one tetrahedron. level holds
// the per-point contouring scalar (field value for isosurfaces, signed
// plane distance for slices); iso is the threshold.
func (b *surfaceBuilder) marchTet(t [4]int, level func(int) float64, iso float64) {
	var inside [4]bool
	var nIn int
	var v [4]float64
	for i, id := range t {
		v[i] = level(id)
		if v[i] >= iso {
			inside[i] = true
			nIn++
		}
	}
	if nIn == 0 || nIn == 4 {
		return
	}
	ev := func(i, j int) int {
		return b.edgeVertex(t[i], t[j], level, iso)
	}
	// Orient triangles so the normal points from the >=iso side toward the
	// <iso side (outward from the enclosed high-value region).
	addTri := func(a, bb, c int, refInside int) {
		pa, pb, pc := b.out.Pts[a], b.out.Pts[bb], b.out.Pts[c]
		n := pb.Sub(pa).Cross(pc.Sub(pa))
		toInside := b.src.Point(t[refInside]).Sub(pa)
		if n.Dot(toInside) > 0 {
			b.out.AddTriangle(a, c, bb)
		} else {
			b.out.AddTriangle(a, bb, c)
		}
	}
	switch nIn {
	case 1, 3:
		// One vertex isolated on one side: single triangle.
		iso1 := -1
		want := nIn == 1 // isolated vertex is inside when nIn==1
		for i := 0; i < 4; i++ {
			if inside[i] == want {
				iso1 = i
				break
			}
		}
		others := make([]int, 0, 3)
		for i := 0; i < 4; i++ {
			if i != iso1 {
				others = append(others, i)
			}
		}
		a := ev(iso1, others[0])
		bb := ev(iso1, others[1])
		c := ev(iso1, others[2])
		ref := iso1
		if !inside[iso1] {
			ref = others[0]
		}
		addTri(a, bb, c, ref)
	case 2:
		// Two in, two out: quad split into two triangles.
		var in2, out2 []int
		for i := 0; i < 4; i++ {
			if inside[i] {
				in2 = append(in2, i)
			} else {
				out2 = append(out2, i)
			}
		}
		q0 := ev(in2[0], out2[0])
		q1 := ev(in2[0], out2[1])
		q2 := ev(in2[1], out2[1])
		q3 := ev(in2[1], out2[0])
		addTri(q0, q1, q2, in2[0])
		addTri(q0, q2, q3, in2[0])
	}
}

// mergeSurfaceChunks concatenates chunk-local marching results in chunk
// order, deduplicating edge vertices across chunk boundaries by their
// canonical keys. Because chunks cover the tetrahedron sweep in order and
// each vertex keeps the value computed from its canonical edge
// orientation, the merged point numbering, positions, attributes and
// triangle list are byte-identical to a serial sweep — for ANY chunking.
func mergeSurfaceChunks(src data.Dataset, chunks []*surfaceBuilder) *data.PolyData {
	if len(chunks) == 1 {
		return chunks[0].out
	}
	global := newSurfaceBuilder(src)
	out := global.out
	nTris := 0
	for _, b := range chunks {
		nTris += len(b.out.Polys)
	}
	out.Polys = make([][]int, 0, nTris)
	for _, b := range chunks {
		remap := make([]int, len(b.out.Pts))
		for li, key := range b.keys {
			if gid, ok := global.edgeVerts[key]; ok {
				remap[li] = gid
				continue
			}
			gid := out.AddPoint(b.out.Pts[li])
			for fi, nf := range global.outFields {
				bf := b.outFields[fi]
				nc := bf.NumComponents
				nf.Data = append(nf.Data, bf.Data[li*nc:(li+1)*nc]...)
			}
			global.edgeVerts[key] = gid
			remap[li] = gid
		}
		for _, tri := range b.out.Polys {
			out.AddTriangle(remap[tri[0]], remap[tri[1]], remap[tri[2]])
		}
	}
	return out
}

// marchSurface runs the marching-tetrahedra sweep over the dataset in
// parallel chunks and merges the results deterministically.
func marchSurface(ctx context.Context, ds data.Dataset, level func(int) float64, iso float64) (*data.PolyData, error) {
	var chunks []*surfaceBuilder
	var err error
	switch d := ds.(type) {
	case *data.ImageData:
		nCubes := imageCubeCount(d)
		chunks, err = par.MapChunks(ctx, nCubes, func(start, end int) *surfaceBuilder {
			b := newSurfaceBuilder(ds)
			imageTetsRange(d, start, end, func(t [4]int) { b.marchTet(t, level, iso) })
			return b
		})
	case *data.UnstructuredGrid:
		tets := GridTets(d)
		chunks, err = par.MapChunks(ctx, len(tets), func(start, end int) *surfaceBuilder {
			b := newSurfaceBuilder(ds)
			for _, t := range tets[start:end] {
				b.marchTet(t, level, iso)
			}
			return b
		})
	default:
		return nil, fmt.Errorf("filters: marching tetrahedra: unsupported dataset type %s", ds.TypeName())
	}
	if err != nil {
		return nil, err
	}
	if len(chunks) == 0 {
		return newSurfaceBuilder(ds).out, nil
	}
	return mergeSurfaceChunks(ds, chunks), nil
}

// Contour extracts the isosurface of the named scalar field at the given
// value. Supported inputs: *data.ImageData and *data.UnstructuredGrid.
// Matches VTK's Contour filter output: a PolyData with all point-data
// arrays interpolated onto the surface.
func Contour(ds data.Dataset, fieldName string, value float64) (*data.PolyData, error) {
	return ContourContext(context.Background(), ds, fieldName, value)
}

// ContourContext is Contour with cancellation: the marching sweep runs in
// parallel chunks on the par worker pool and aborts early when ctx is
// canceled.
func ContourContext(ctx context.Context, ds data.Dataset, fieldName string, value float64) (*data.PolyData, error) {
	f := ds.PointData().Get(fieldName)
	if f == nil {
		return nil, fmt.Errorf("filters: contour: no point array named %q", fieldName)
	}
	if f.NumComponents != 1 {
		return nil, fmt.Errorf("filters: contour: array %q is not a scalar", fieldName)
	}
	if !marchable(ds) {
		return nil, fmt.Errorf("filters: contour: unsupported dataset type %s", ds.TypeName())
	}
	return marchSurface(ctx, ds, func(i int) float64 { return f.Scalar(i) }, value)
}

// marchable reports whether the dataset type has a tetrahedral sweep.
func marchable(ds data.Dataset) bool {
	switch ds.(type) {
	case *data.ImageData, *data.UnstructuredGrid:
		return true
	}
	return false
}

// ContourLines extracts iso-lines of a scalar field on a triangulated
// surface (marching triangles). It is the second stage of the paper's
// slice-then-contour pipeline.
func ContourLines(pd *data.PolyData, fieldName string, value float64) (*data.PolyData, error) {
	f := pd.Points.Get(fieldName)
	if f == nil {
		return nil, fmt.Errorf("filters: contour lines: no point array named %q", fieldName)
	}
	if f.NumComponents != 1 {
		return nil, fmt.Errorf("filters: contour lines: array %q is not a scalar", fieldName)
	}
	out := data.NewPolyData()
	var outFields []*data.Field
	var srcFields []*data.Field
	for i := 0; i < pd.Points.Len(); i++ {
		sf := pd.Points.At(i)
		nf := data.NewField(sf.Name, sf.NumComponents, 0)
		srcFields = append(srcFields, sf)
		outFields = append(outFields, nf)
		out.Points.Add(nf)
	}
	edgeVerts := make(map[[2]int]int)
	edgeVertex := func(i, j int, t float64) int {
		key := [2]int{i, j}
		if j < i {
			key = [2]int{j, i}
			t = 1 - t
		}
		if id, ok := edgeVerts[key]; ok {
			return id
		}
		id := out.AddPoint(pd.Pts[key[0]].Lerp(pd.Pts[key[1]], t))
		for fi, sf := range srcFields {
			nf := outFields[fi]
			for c := 0; c < sf.NumComponents; c++ {
				v0, v1 := sf.Value(key[0], c), sf.Value(key[1], c)
				nf.Data = append(nf.Data, v0+t*(v1-v0))
			}
		}
		edgeVerts[key] = id
		return id
	}
	pd.EachTriangle(func(a, b, c int) {
		ids := [3]int{a, b, c}
		var vals [3]float64
		var in [3]bool
		nIn := 0
		for i, id := range ids {
			vals[i] = f.Scalar(id)
			if vals[i] >= value {
				in[i] = true
				nIn++
			}
		}
		if nIn == 0 || nIn == 3 {
			return
		}
		cross := func(vA, vB float64) float64 {
			d := vB - vA
			if d == 0 {
				return 0.5
			}
			return (value - vA) / d
		}
		// Find the isolated vertex and connect crossings on its two edges.
		isolated := -1
		want := nIn == 1
		for i := 0; i < 3; i++ {
			if in[i] == want {
				isolated = i
				break
			}
		}
		o1, o2 := (isolated+1)%3, (isolated+2)%3
		p1 := edgeVertex(ids[isolated], ids[o1], cross(vals[isolated], vals[o1]))
		p2 := edgeVertex(ids[isolated], ids[o2], cross(vals[isolated], vals[o2]))
		if p1 != p2 {
			out.AddLine(p1, p2)
		}
	})
	return out, nil
}

// Slice cuts the dataset with a plane and returns the triangulated cross
// section with all point data interpolated, like VTK's Slice filter with a
// plane cut function.
func Slice(ds data.Dataset, plane vmath.Plane) (*data.PolyData, error) {
	return SliceContext(context.Background(), ds, plane)
}

// SliceContext is Slice with cancellation; the marching sweep runs in
// parallel chunks on the par worker pool.
func SliceContext(ctx context.Context, ds data.Dataset, plane vmath.Plane) (*data.PolyData, error) {
	if !marchable(ds) {
		return nil, fmt.Errorf("filters: slice: unsupported dataset type %s", ds.TypeName())
	}
	return marchSurface(ctx, ds, func(i int) float64 { return plane.Eval(ds.Point(i)) }, 0)
}
