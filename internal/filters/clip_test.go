package filters

import (
	"math"
	"testing"
	"testing/quick"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/vmath"
)

func TestClipPolyDataHalfSphere(t *testing.T) {
	im := sphereVolume(20)
	surf, err := Contour(im, "dist", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Keep -x half: plane normal -x.
	plane := vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(-1, 0, 0))
	clipped := ClipPolyData(surf, plane)
	if clipped.NumTriangles() == 0 {
		t.Fatal("empty clip result")
	}
	for _, p := range clipped.Pts {
		if p.X > 1e-9 {
			t.Fatalf("point on removed side: %v", p)
		}
	}
	// Roughly half the area should remain.
	area := func(pd *data.PolyData) float64 {
		a := 0.0
		pd.EachTriangle(func(x, y, z int) {
			a += pd.Pts[y].Sub(pd.Pts[x]).Cross(pd.Pts[z].Sub(pd.Pts[x])).Len() / 2
		})
		return a
	}
	full, half := area(surf), area(clipped)
	if math.Abs(half-full/2)/full > 0.05 {
		t.Errorf("clipped area = %v of %v, want ~half", half, full)
	}
	// Point data interpolated on the cut.
	f := clipped.Points.Get("dist")
	if f == nil || f.NumTuples() != clipped.NumPoints() {
		t.Fatal("dist field missing/mismatched after clip")
	}
}

func TestClipPolyDataKeepsUntouchedTriangles(t *testing.T) {
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(1, 0, 0))
	pd.AddPoint(vmath.V(2, 0, 0))
	pd.AddPoint(vmath.V(1, 1, 0))
	pd.AddTriangle(0, 1, 2)
	plane := vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(1, 0, 0))
	out := ClipPolyData(pd, plane)
	if out.NumTriangles() != 1 || out.NumPoints() != 3 {
		t.Errorf("fully-inside triangle should be kept intact: %d tris %d pts",
			out.NumTriangles(), out.NumPoints())
	}
	// And fully outside vanishes.
	plane2 := vmath.NewPlane(vmath.V(5, 0, 0), vmath.V(1, 0, 0))
	out2 := ClipPolyData(pd, plane2)
	if out2.NumTriangles() != 0 || out2.NumPoints() != 0 {
		t.Error("fully-outside triangle should vanish")
	}
}

func TestClipPolyDataLinesAndVerts(t *testing.T) {
	pd := data.NewPolyData()
	a := pd.AddPoint(vmath.V(-1, 0, 0))
	b := pd.AddPoint(vmath.V(1, 0, 0))
	c := pd.AddPoint(vmath.V(3, 0, 0))
	pd.AddLine(a, b, c)
	pd.AddVert(a)
	pd.AddVert(b)
	f := data.NewField("s", 1, 3)
	f.Data = []float64{-1, 1, 3}
	pd.Points.Add(f)
	plane := vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(1, 0, 0)) // keep +x
	out := ClipPolyData(pd, plane)
	if len(out.Lines) != 1 {
		t.Fatalf("lines = %d", len(out.Lines))
	}
	line := out.Lines[0]
	if len(line) != 3 {
		t.Fatalf("clipped line has %d points", len(line))
	}
	if out.Pts[line[0]].X != 0 {
		t.Errorf("cut point at %v, want x=0", out.Pts[line[0]])
	}
	if got := out.Points.Get("s").Scalar(line[0]); math.Abs(got) > 1e-12 {
		t.Errorf("interpolated s at cut = %v, want 0", got)
	}
	if len(out.Verts) != 1 {
		t.Errorf("verts = %d, want 1 (only +x vertex kept)", len(out.Verts))
	}
}

func TestClipUnstructuredVolumeConservation(t *testing.T) {
	// Clip a cube mesh at x=0.5: kept tets should sum to half the volume.
	ug := data.NewUnstructuredGrid()
	for i := 0; i < 8; i++ {
		corners := [][3]float64{
			{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
			{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
		}
		ug.AddPoint(vmath.V(corners[i][0], corners[i][1], corners[i][2]))
	}
	ug.AddCell(data.CellHexahedron, 0, 1, 2, 3, 4, 5, 6, 7)
	f := data.NewField("s", 1, 8)
	for i := 0; i < 8; i++ {
		f.SetScalar(i, ug.Pts[i].X)
	}
	ug.Points.Add(f)

	totalVol := func(g *data.UnstructuredGrid) float64 {
		v := 0.0
		for _, tt := range GridTets(g) {
			v += math.Abs(TetVolume(g.Pts[tt[0]], g.Pts[tt[1]], g.Pts[tt[2]], g.Pts[tt[3]]))
		}
		return v
	}
	prop := func(raw float64) bool {
		cut := 0.1 + math.Mod(math.Abs(raw), 0.8)
		plane := vmath.NewPlane(vmath.V(cut, 0, 0), vmath.V(-1, 0, 0)) // keep x < cut
		clipped, err := ClipUnstructured(ug, plane)
		if err != nil {
			return false
		}
		for _, p := range clipped.Pts {
			if p.X > cut+1e-9 {
				return false
			}
		}
		return math.Abs(totalVol(clipped)-cut) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
	// Field interpolation on the cut plane: s == x everywhere, so cut
	// points must carry s == cut value.
	plane := vmath.NewPlane(vmath.V(0.5, 0, 0), vmath.V(-1, 0, 0))
	clipped, err := ClipUnstructured(ug, plane)
	if err != nil {
		t.Fatal(err)
	}
	sf := clipped.Points.Get("s")
	for i, p := range clipped.Pts {
		if math.Abs(sf.Scalar(i)-p.X) > 1e-9 {
			t.Fatalf("s=%v at x=%v", sf.Scalar(i), p.X)
		}
	}
}

func TestClipUnstructuredRejectsNonVolumetric(t *testing.T) {
	ug := data.NewUnstructuredGrid()
	ug.AddPoint(vmath.V(0, 0, 0))
	ug.AddCell(data.CellVertex, 0)
	if _, err := ClipUnstructured(ug, vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(1, 0, 0))); err == nil {
		t.Error("expected error for non-volumetric input")
	}
}

func TestExtractSurfaceCube(t *testing.T) {
	ug := data.NewUnstructuredGrid()
	corners := [][3]float64{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	for _, c := range corners {
		ug.AddPoint(vmath.V(c[0], c[1], c[2]))
	}
	ug.AddCell(data.CellHexahedron, 0, 1, 2, 3, 4, 5, 6, 7)
	f := data.NewField("s", 1, 8)
	ug.Points.Add(f)
	surf := ExtractSurface(ug)
	// 6 cube faces, each split into 2 triangles = 12 boundary triangles.
	if surf.NumTriangles() != 12 {
		t.Errorf("boundary triangles = %d, want 12", surf.NumTriangles())
	}
	if surf.NumPoints() != 8 {
		t.Errorf("surface points = %d, want 8", surf.NumPoints())
	}
	if surf.Points.Get("s") == nil {
		t.Error("point data not carried to surface")
	}
	// Surface area of unit cube = 6.
	area := 0.0
	surf.EachTriangle(func(a, b, c int) {
		area += surf.Pts[b].Sub(surf.Pts[a]).Cross(surf.Pts[c].Sub(surf.Pts[a])).Len() / 2
	})
	if math.Abs(area-6) > 1e-12 {
		t.Errorf("surface area = %v, want 6", area)
	}
}

func TestExtractSurfacePreservesVertices(t *testing.T) {
	ug := datagen.CanPoints(16, 8)
	surf := ExtractSurface(ug)
	if len(surf.Verts) != ug.NumPoints() {
		t.Errorf("verts = %d, want %d", len(surf.Verts), ug.NumPoints())
	}
}

func TestComputePointNormals(t *testing.T) {
	im := sphereVolume(16)
	surf, err := Contour(im, "dist", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ComputePointNormals(surf)
	nf := surf.Points.Get("Normals")
	if nf == nil || nf.NumComponents != 3 {
		t.Fatal("Normals missing")
	}
	// Sphere normals should be (anti)radial and unit length.
	aligned := 0
	for i, p := range surf.Pts {
		n := nf.Vec3(i)
		if math.Abs(n.Len()-1) > 1e-6 {
			t.Fatalf("normal %d not unit: %v", i, n.Len())
		}
		if math.Abs(math.Abs(n.Dot(p.Norm()))-1) < 0.1 {
			aligned++
		}
	}
	if float64(aligned)/float64(len(surf.Pts)) < 0.9 {
		t.Errorf("only %d/%d normals near-radial", aligned, len(surf.Pts))
	}
}
