package filters

import (
	"math"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

func straightLinePD(n int) *data.PolyData {
	pd := data.NewPolyData()
	ids := make([]int, n)
	f := data.NewField("Temp", 1, n)
	for i := 0; i < n; i++ {
		ids[i] = pd.AddPoint(vmath.V(float64(i), 0, 0))
		f.SetScalar(i, float64(i))
	}
	pd.Points.Add(f)
	pd.AddLine(ids...)
	return pd
}

func TestTubeStraightLine(t *testing.T) {
	pd := straightLinePD(5)
	tube := Tube(pd, TubeOptions{Radius: 0.25, NumSides: 8})
	if tube.NumPoints() != 5*8 {
		t.Fatalf("tube points = %d, want 40", tube.NumPoints())
	}
	if len(tube.Polys) != 4*8 {
		t.Fatalf("tube quads = %d, want 32", len(tube.Polys))
	}
	// Every tube point is at distance Radius from the axis (y-z distance).
	for _, p := range tube.Pts {
		r := math.Hypot(p.Y, p.Z)
		if math.Abs(r-0.25) > 1e-9 {
			t.Fatalf("tube radius %v at %v", r, p)
		}
	}
	// Point data copied onto rings: Temp equals ring index (the x value).
	f := tube.Points.Get("Temp")
	for i, p := range tube.Pts {
		if math.Abs(f.Scalar(i)-p.X) > 1e-9 {
			t.Fatalf("Temp %v at x=%v", f.Scalar(i), p.X)
		}
	}
}

func TestTubeCapped(t *testing.T) {
	pd := straightLinePD(3)
	tube := Tube(pd, TubeOptions{Radius: 0.1, NumSides: 6, Capped: true})
	// 2*6 side quads + 2 caps.
	if len(tube.Polys) != 12+2 {
		t.Errorf("polys = %d, want 14", len(tube.Polys))
	}
}

func TestTubeCurvedNoPinch(t *testing.T) {
	// Quarter circle: parallel-transport frames must not pinch the tube;
	// all ring radii stay constant around the local center.
	pd := data.NewPolyData()
	n := 30
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		a := math.Pi / 2 * float64(i) / float64(n-1)
		ids[i] = pd.AddPoint(vmath.V(math.Cos(a), math.Sin(a), 0))
	}
	pd.AddLine(ids...)
	tube := Tube(pd, TubeOptions{Radius: 0.05, NumSides: 10})
	for i := 0; i < n; i++ {
		center := pd.Pts[ids[i]]
		for s := 0; s < 10; s++ {
			p := tube.Pts[i*10+s]
			d := p.Sub(center).Len()
			if math.Abs(d-0.05) > 1e-9 {
				t.Fatalf("ring %d radius %v", i, d)
			}
		}
	}
}

func TestTubeSkipsDegenerateLines(t *testing.T) {
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(0, 0, 0))
	pd.AddLine(0) // single point line
	tube := Tube(pd, TubeOptions{Radius: 0.1})
	if tube.NumPoints() != 0 {
		t.Error("degenerate line should produce nothing")
	}
}

func TestTubeDefaults(t *testing.T) {
	pd := straightLinePD(3)
	tube := Tube(pd, TubeOptions{})
	if tube.NumPoints() == 0 {
		t.Fatal("defaults should produce a tube")
	}
}

func TestGlyphConeOrientation(t *testing.T) {
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(0, 0, 0))
	v := data.NewField("V", 3, 1)
	v.SetVec3(0, vmath.V(0, 0, 3)) // point up
	pd.Points.Add(v)
	out := Glyph(pd, GlyphOptions{
		Type: GlyphCone, OrientationArray: "V", ScaleFactor: 1, Stride: 1, Resolution: 8,
	})
	if out.NumPoints() == 0 {
		t.Fatal("no glyph produced")
	}
	// Cone prototype points along +X with tip at +0.5; oriented to +Z the
	// tip must be the point with max Z.
	maxZ := math.Inf(-1)
	for _, p := range out.Pts {
		maxZ = math.Max(maxZ, p.Z)
	}
	if math.Abs(maxZ-0.5) > 1e-9 {
		t.Errorf("cone tip z = %v, want 0.5", maxZ)
	}
}

func TestGlyphStrideAndData(t *testing.T) {
	pd := data.NewPolyData()
	temp := data.NewField("Temp", 1, 10)
	for i := 0; i < 10; i++ {
		pd.AddPoint(vmath.V(float64(i), 0, 0))
		temp.SetScalar(i, float64(i)*10)
	}
	pd.Points.Add(temp)
	out := Glyph(pd, GlyphOptions{Type: GlyphCone, ScaleFactor: 0.5, Stride: 2, Resolution: 6})
	// 5 glyphs, each 2+6=8 points.
	if out.NumPoints() != 5*8 {
		t.Fatalf("glyph points = %d", out.NumPoints())
	}
	f := out.Points.Get("Temp")
	// First glyph at source point 0 (Temp 0), second at point 2 (Temp 20).
	if f.Scalar(0) != 0 || f.Scalar(8) != 20 {
		t.Errorf("glyph Temp copy wrong: %v %v", f.Scalar(0), f.Scalar(8))
	}
}

func TestGlyphMaxGlyphsDefaultStride(t *testing.T) {
	pd := data.NewPolyData()
	for i := 0; i < 1000; i++ {
		pd.AddPoint(vmath.V(float64(i), 0, 0))
	}
	out := Glyph(pd, GlyphOptions{Type: GlyphSphere, MaxGlyphs: 10, Resolution: 6})
	// Stride should become 100 -> exactly 10 glyphs.
	sphere := glyphSource(GlyphSphere, 6)
	if out.NumPoints() != 10*sphere.NumPoints() {
		t.Errorf("points = %d, want %d", out.NumPoints(), 10*sphere.NumPoints())
	}
}

func TestGlyphZeroVectorFallsBack(t *testing.T) {
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(0, 0, 0))
	v := data.NewField("V", 3, 1) // zero vector
	pd.Points.Add(v)
	out := Glyph(pd, GlyphOptions{Type: GlyphCone, OrientationArray: "V", ScaleFactor: 1, Stride: 1})
	if out.NumPoints() == 0 {
		t.Fatal("zero vector should still emit an unoriented glyph")
	}
}

func TestGlyphAntiparallelOrientation(t *testing.T) {
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(0, 0, 0))
	v := data.NewField("V", 3, 1)
	v.SetVec3(0, vmath.V(-1, 0, 0)) // exactly -X: the rotation edge case
	pd.Points.Add(v)
	out := Glyph(pd, GlyphOptions{Type: GlyphCone, OrientationArray: "V", ScaleFactor: 1, Stride: 1})
	minX := math.Inf(1)
	for _, p := range out.Pts {
		minX = math.Min(minX, p.X)
	}
	if math.Abs(minX+0.5) > 1e-9 {
		t.Errorf("tip should point to -X: minX = %v", minX)
	}
}

func TestGlyphSourcesAreClosed(t *testing.T) {
	for _, gt := range []GlyphType{GlyphCone, GlyphArrow, GlyphSphere} {
		src := glyphSource(gt, 8)
		if src.NumTriangles() == 0 {
			t.Errorf("%v: empty source", gt)
		}
		// Closed surfaces: each edge shared by exactly 2 triangles (sphere
		// poles create degenerate quads, allow those to deviate) — check
		// cone and arrow strictly.
		if gt == GlyphSphere {
			continue
		}
		edges := map[[2]int]int{}
		src.EachTriangle(func(a, b, c int) {
			for _, e := range [][2]int{{a, b}, {b, c}, {c, a}} {
				if e[0] > e[1] {
					e[0], e[1] = e[1], e[0]
				}
				edges[e]++
			}
		})
		for e, n := range edges {
			if n != 2 {
				t.Errorf("%v: edge %v used %d times", gt, e, n)
			}
		}
	}
}

func TestGlyphTypeString(t *testing.T) {
	if GlyphCone.String() != "Cone" || GlyphArrow.String() != "Arrow" ||
		GlyphSphere.String() != "Sphere" || GlyphType(99).String() != "Unknown" {
		t.Error("GlyphType.String misbehaves")
	}
}
