package errext

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleTraceback = `some ParaView warning about OpenGL
Traceback (most recent call last):
  File "script.py", line 23, in <module>
    coneGlyph.Scalars = ['POINTS', 'Temp']
AttributeError: 'Glyph' object has no attribute 'Scalars'
`

func TestExtractSingleTraceback(t *testing.T) {
	reports := Extract(sampleTraceback)
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	r := reports[0]
	if r.Kind != "AttributeError" {
		t.Errorf("kind = %q", r.Kind)
	}
	if !strings.Contains(r.Message, "'Glyph' object has no attribute 'Scalars'") {
		t.Errorf("message = %q", r.Message)
	}
	if r.File != "script.py" || r.Line != 23 {
		t.Errorf("location = %s:%d", r.File, r.Line)
	}
	if !strings.Contains(r.Context, "coneGlyph.Scalars") {
		t.Errorf("context = %q", r.Context)
	}
}

func TestExtractIgnoresWarnings(t *testing.T) {
	out := `Warning: something benign
vtkOutputWindow: rendering fallback in use
all good here
`
	if reports := Extract(out); len(reports) != 0 {
		t.Errorf("false positives: %+v", reports)
	}
	if HasError(out) {
		t.Error("HasError should be false")
	}
}

func TestExtractSyntaxError(t *testing.T) {
	out := `  File "script.py", line 7
    x = (1 +
    ^
SyntaxError: '(' was never closed
`
	reports := Extract(out)
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Kind != "SyntaxError" || reports[0].Line != 7 {
		t.Errorf("report = %+v", reports[0])
	}
}

func TestExtractMultipleErrors(t *testing.T) {
	out := sampleTraceback + "\nmore output\n" + `Traceback (most recent call last):
  File "script.py", line 40, in <module>
    view.ViewUp = [0, 1, 0]
AttributeError: 'RenderView' object has no attribute 'ViewUp'
`
	reports := Extract(out)
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[1].Line != 40 {
		t.Errorf("second report = %+v", reports[1])
	}
}

func TestExtractBareExceptionLine(t *testing.T) {
	reports := Extract("NameError: name 'Tube' is not defined\n")
	if len(reports) != 1 || reports[0].Kind != "NameError" {
		t.Fatalf("reports = %+v", reports)
	}
}

func TestSummarize(t *testing.T) {
	reports := Extract(sampleTraceback)
	s := Summarize(reports)
	if !strings.Contains(s, "AttributeError") || !strings.Contains(s, "line 23") {
		t.Errorf("summary = %q", s)
	}
	if Summarize(nil) != "" {
		t.Error("empty summary expected")
	}
}

func TestExtractRealWorldNoise(t *testing.T) {
	// Output interleaved with print() lines and blank lines.
	out := `starting pipeline
reading file disk.ex2

Traceback (most recent call last):
  File "script.py", line 12, in <module>
    tube = Tube(Input=streamTracer)
RuntimeError: Tube: input must be polygonal data with lines
done
`
	reports := Extract(out)
	if len(reports) != 1 || reports[0].Kind != "RuntimeError" {
		t.Fatalf("reports = %+v", reports)
	}
}

func TestExtractNeverPanicsOnArbitraryText(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", s, r)
			}
		}()
		_ = Extract(s)
		_ = HasError(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExtractNoFalsePositiveOnPlainLogs(t *testing.T) {
	benign := []string{
		"reading file ml-100.vtk",
		"Rendering frame 3 of 10",
		"File saved to out/shot.png",
		"warning: using software rendering",
		"the word Error appears mid sentence without colon pattern-",
	}
	for _, line := range benign {
		if HasError(line + "\n") {
			t.Errorf("false positive on %q", line)
		}
	}
}
