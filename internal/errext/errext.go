// Package errext implements the paper's error detection and extraction
// tool (§III-C): it scans PvPython output for Python tracebacks and
// returns the error messages to feed back to the LLM.
//
// Following the paper's description, the extractor splits the output into
// lines, identifies tracebacks (lines starting with "File"), gathers
// subsequent lines until it reaches the error line (such as
// "AttributeError: ..."), and compiles the collected messages.
package errext

import (
	"regexp"
	"strings"
)

// ErrorReport is one extracted error: the exception line plus its
// traceback context.
type ErrorReport struct {
	// Kind is the exception class name, e.g. "AttributeError".
	Kind string
	// Message is the text after "Kind:".
	Message string
	// File and Line locate the failing statement when present.
	File string
	Line int
	// Context is the full extracted traceback text.
	Context string
}

// errLineRe matches Python exception lines: "SomeError: message".
var errLineRe = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*(?:Error|Exception|Warning|Interrupt|Exit)):\s?(.*)$`)

// fileLineRe matches traceback location lines.
var fileLineRe = regexp.MustCompile(`^\s*File "([^"]+)", line (\d+)`)

// Extract scans combined PvPython output and returns every error found.
// Warnings and other system messages are ignored; only genuine tracebacks
// and exception lines are reported.
func Extract(output string) []ErrorReport {
	lines := strings.Split(output, "\n")
	var reports []ErrorReport
	var collecting bool
	var context []string
	var file string
	var lineNo int

	flushOn := func(kind, msg string) {
		reports = append(reports, ErrorReport{
			Kind:    kind,
			Message: strings.TrimSpace(msg),
			File:    file,
			Line:    lineNo,
			Context: strings.TrimRight(strings.Join(context, "\n"), "\n"),
		})
		collecting = false
		context = nil
		file = ""
		lineNo = 0
	}

	for _, raw := range lines {
		line := strings.TrimRight(raw, "\r")
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "Traceback (most recent call last):") {
			collecting = true
			context = []string{line}
			continue
		}
		if m := fileLineRe.FindStringSubmatch(line); m != nil {
			// Tracebacks "typically start with File" (paper): begin or
			// continue collecting.
			if !collecting {
				collecting = true
				context = nil
			}
			context = append(context, line)
			file = m[1]
			lineNo = atoiSafe(m[2])
			continue
		}
		if collecting {
			context = append(context, line)
			if m := errLineRe.FindStringSubmatch(trimmed); m != nil {
				flushOn(m[1], m[2])
			}
			continue
		}
		// Bare exception line without a traceback (some failures print
		// only the final line).
		if m := errLineRe.FindStringSubmatch(trimmed); m != nil {
			context = []string{line}
			flushOn(m[1], m[2])
		}
	}
	return reports
}

// HasError reports whether the output contains any extractable error.
func HasError(output string) bool { return len(Extract(output)) > 0 }

// Summarize formats the extracted errors as the prompt block ChatVis
// sends back to the LLM for correction.
func Summarize(reports []ErrorReport) string {
	if len(reports) == 0 {
		return ""
	}
	var b strings.Builder
	for i, r := range reports {
		if i > 0 {
			b.WriteString("\n\n")
		}
		b.WriteString(r.Context)
	}
	return b.String()
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return n
		}
		n = n*10 + int(c-'0')
	}
	return n
}
