package vtkio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

// Simulated Exodus-II container.
//
// Real Exodus-II files are NetCDF; implementing NetCDF is out of scope and
// irrelevant to the agent loop, so we define a compact self-describing
// binary with the Exodus concepts the experiments need: a title, nodal
// coordinates, element blocks (cells), and named nodal variables. The
// reader proxy in the ParaView simulation (`ExodusIIReader`) consumes this
// format transparently.
//
// Layout (little endian):
//
//	magic   [4]byte "SEX2"
//	version uint32 (currently 1)
//	title   string (uint32 length + bytes)
//	nPts    uint32, then nPts * 3 float64 coordinates
//	nCells  uint32, then per cell: uint8 vtk cell type, uint8 nIds, ids uint32
//	nVars   uint32, then per var: name string, uint8 comps, comps*nPts float64

const (
	exodusMagic   = "SEX2"
	exodusVersion = 1
)

// WriteExodus writes an unstructured grid to w in the simulated Exodus-II
// format.
func WriteExodus(w io.Writer, ug *data.UnstructuredGrid, title string) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(exodusMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(v uint32) error { return binary.Write(bw, le, v) }
	writeStr := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeU32(exodusVersion); err != nil {
		return err
	}
	if err := writeStr(title); err != nil {
		return err
	}
	if err := writeU32(uint32(len(ug.Pts))); err != nil {
		return err
	}
	for _, p := range ug.Pts {
		for _, v := range []float64{p.X, p.Y, p.Z} {
			if err := binary.Write(bw, le, v); err != nil {
				return err
			}
		}
	}
	if err := writeU32(uint32(len(ug.Cells))); err != nil {
		return err
	}
	for _, c := range ug.Cells {
		if len(c.IDs) > 255 {
			return fmt.Errorf("vtkio: cell with %d points exceeds format limit", len(c.IDs))
		}
		if err := bw.WriteByte(byte(c.Type)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(len(c.IDs))); err != nil {
			return err
		}
		for _, id := range c.IDs {
			if err := writeU32(uint32(id)); err != nil {
				return err
			}
		}
	}
	pd := ug.Points
	if err := writeU32(uint32(pd.Len())); err != nil {
		return err
	}
	for i := 0; i < pd.Len(); i++ {
		f := pd.At(i)
		if err := writeStr(f.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(f.NumComponents)); err != nil {
			return err
		}
		for _, v := range f.Data {
			if err := binary.Write(bw, le, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveExodus writes ug to the named file.
func SaveExodus(path string, ug *data.UnstructuredGrid, title string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteExodus(f, ug, title); err != nil {
		return err
	}
	return f.Sync()
}

// ReadExodus parses a simulated Exodus-II stream.
func ReadExodus(r io.Reader) (*data.UnstructuredGrid, string, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, "", fmt.Errorf("vtkio: reading exodus magic: %w", err)
	}
	if string(magic) != exodusMagic {
		return nil, "", fmt.Errorf("vtkio: not a simulated Exodus-II file (magic %q)", magic)
	}
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		return v, err
	}
	readF64 := func() (float64, error) {
		var v float64
		err := binary.Read(br, le, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("vtkio: unreasonable string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	ver, err := readU32()
	if err != nil {
		return nil, "", err
	}
	if ver != exodusVersion {
		return nil, "", fmt.Errorf("vtkio: unsupported exodus version %d", ver)
	}
	title, err := readStr()
	if err != nil {
		return nil, "", err
	}
	nPts, err := readU32()
	if err != nil {
		return nil, "", err
	}
	ug := data.NewUnstructuredGrid()
	ug.Pts = make([]vmath.Vec3, nPts)
	for i := range ug.Pts {
		var p vmath.Vec3
		if p.X, err = readF64(); err != nil {
			return nil, "", err
		}
		if p.Y, err = readF64(); err != nil {
			return nil, "", err
		}
		if p.Z, err = readF64(); err != nil {
			return nil, "", err
		}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsNaN(p.Z) {
			return nil, "", fmt.Errorf("vtkio: NaN coordinate at point %d", i)
		}
		ug.Pts[i] = p
	}
	nCells, err := readU32()
	if err != nil {
		return nil, "", err
	}
	for i := uint32(0); i < nCells; i++ {
		ctype, err := br.ReadByte()
		if err != nil {
			return nil, "", err
		}
		nIds, err := br.ReadByte()
		if err != nil {
			return nil, "", err
		}
		ids := make([]int, nIds)
		for j := range ids {
			v, err := readU32()
			if err != nil {
				return nil, "", err
			}
			if v >= nPts {
				return nil, "", fmt.Errorf("vtkio: cell %d references point %d of %d", i, v, nPts)
			}
			ids[j] = int(v)
		}
		ug.Cells = append(ug.Cells, data.Cell{Type: data.CellType(ctype), IDs: ids})
	}
	nVars, err := readU32()
	if err != nil {
		return nil, "", err
	}
	for i := uint32(0); i < nVars; i++ {
		name, err := readStr()
		if err != nil {
			return nil, "", err
		}
		comps, err := br.ReadByte()
		if err != nil {
			return nil, "", err
		}
		f := data.NewField(name, int(comps), int(nPts))
		for j := range f.Data {
			if f.Data[j], err = readF64(); err != nil {
				return nil, "", err
			}
		}
		ug.Points.Add(f)
	}
	return ug, title, nil
}

// LoadExodus reads a simulated Exodus-II file from disk.
func LoadExodus(path string) (*data.UnstructuredGrid, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return ReadExodus(f)
}
