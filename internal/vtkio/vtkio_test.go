package vtkio

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

func TestLegacyStructuredPointsRoundTrip(t *testing.T) {
	im := data.NewImageData(3, 4, 2, vmath.V(-1, 0, 2), vmath.V(0.5, 1, 2))
	f := data.NewField("var0", 1, im.NumPoints())
	for i := range f.Data {
		f.Data[i] = float64(i) * 0.25
	}
	im.Points.Add(f)

	var buf bytes.Buffer
	if err := WriteLegacyVTK(&buf, im, "test volume"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLegacyVTK(&buf)
	if err != nil {
		t.Fatal(err)
	}
	im2, ok := got.(*data.ImageData)
	if !ok {
		t.Fatalf("round trip type = %T", got)
	}
	if im2.Dims != im.Dims || im2.Origin != im.Origin || im2.Spacing != im.Spacing {
		t.Errorf("geometry mismatch: %+v", im2)
	}
	f2 := im2.Points.Get("var0")
	if f2 == nil {
		t.Fatal("var0 missing after round trip")
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-f2.Data[i]) > 1e-12 {
			t.Fatalf("data[%d] = %v, want %v", i, f2.Data[i], f.Data[i])
		}
	}
}

func TestLegacyPolyDataRoundTrip(t *testing.T) {
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(0, 0, 0))
	pd.AddPoint(vmath.V(1, 0, 0))
	pd.AddPoint(vmath.V(0, 1, 0))
	pd.AddPoint(vmath.V(0, 0, 1))
	pd.AddTriangle(0, 1, 2)
	pd.AddPoly(0, 1, 2, 3)
	pd.AddLine(0, 3)
	pd.AddVert(2)
	sc := data.NewField("Temp", 1, 4)
	sc.Data = []float64{1, 2, 3, 4}
	pd.Points.Add(sc)
	vec := data.NewField("V", 3, 4)
	for i := 0; i < 4; i++ {
		vec.SetVec3(i, vmath.V(float64(i), 0, -1))
	}
	pd.Points.Add(vec)

	var buf bytes.Buffer
	if err := WriteLegacyVTK(&buf, pd, ""); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLegacyVTK(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pd2, ok := got.(*data.PolyData)
	if !ok {
		t.Fatalf("round trip type = %T", got)
	}
	if len(pd2.Pts) != 4 || len(pd2.Polys) != 2 || len(pd2.Lines) != 1 || len(pd2.Verts) != 1 {
		t.Fatalf("counts: %d pts %d polys %d lines %d verts",
			len(pd2.Pts), len(pd2.Polys), len(pd2.Lines), len(pd2.Verts))
	}
	if pd2.Polys[1][3] != 3 {
		t.Errorf("poly connectivity = %v", pd2.Polys[1])
	}
	if pd2.Points.Get("Temp") == nil || pd2.Points.Get("V") == nil {
		t.Fatal("point data missing")
	}
	if got := pd2.Points.Get("V").Vec3(2); !got.NearEq(vmath.V(2, 0, -1), 1e-12) {
		t.Errorf("V[2] = %v", got)
	}
}

func TestLegacyUnstructuredRoundTrip(t *testing.T) {
	ug := data.NewUnstructuredGrid()
	for i := 0; i < 8; i++ {
		ug.AddPoint(vmath.V(float64(i&1), float64(i>>1&1), float64(i>>2&1)))
	}
	ug.AddCell(data.CellHexahedron, 0, 1, 3, 2, 4, 5, 7, 6)
	ug.AddCell(data.CellTetra, 0, 1, 2, 4)
	f := data.NewField("Temp", 1, 8)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	ug.Points.Add(f)

	var buf bytes.Buffer
	if err := WriteLegacyVTK(&buf, ug, "grid"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLegacyVTK(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ug2, ok := got.(*data.UnstructuredGrid)
	if !ok {
		t.Fatalf("round trip type = %T", got)
	}
	if ug2.NumCells() != 2 || ug2.Cells[0].Type != data.CellHexahedron || ug2.Cells[1].Type != data.CellTetra {
		t.Fatalf("cells = %+v", ug2.Cells)
	}
	if len(ug2.Cells[0].IDs) != 8 || ug2.Cells[0].IDs[7] != 6 {
		t.Errorf("hex ids = %v", ug2.Cells[0].IDs)
	}
	if ug2.Points.Get("Temp").Scalar(7) != 7 {
		t.Error("Temp mismatch")
	}
}

func TestReadLegacyRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a vtk file\n",
		"# vtk DataFile Version 3.0\ntitle\nBINARY\nDATASET POLYDATA\n",
		"# vtk DataFile Version 3.0\ntitle\nASCII\nDATASET TETRIS\n",
		"# vtk DataFile Version 3.0\ntitle\nASCII\nNOTADATASET POLYDATA\n",
	}
	for _, c := range cases {
		if _, err := ReadLegacyVTK(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestReadLegacyPointDataCountMismatch(t *testing.T) {
	src := `# vtk DataFile Version 3.0
t
ASCII
DATASET STRUCTURED_POINTS
DIMENSIONS 2 2 2
ORIGIN 0 0 0
SPACING 1 1 1
POINT_DATA 7
`
	if _, err := ReadLegacyVTK(strings.NewReader(src)); err == nil {
		t.Error("expected count mismatch error")
	}
}

func TestReadLegacyScalarsWithoutComponentCount(t *testing.T) {
	src := `# vtk DataFile Version 3.0
t
ASCII
DATASET STRUCTURED_POINTS
DIMENSIONS 2 1 1
ORIGIN 0 0 0
SPACING 1 1 1
POINT_DATA 2
SCALARS var0 float
LOOKUP_TABLE default
0.5 1.5
`
	ds, err := ReadLegacyVTK(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	f := ds.PointData().Get("var0")
	if f == nil || f.Scalar(1) != 1.5 {
		t.Fatalf("var0 = %+v", f)
	}
}

func TestExodusRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ug := data.NewUnstructuredGrid()
	for i := 0; i < 50; i++ {
		ug.AddPoint(vmath.V(rng.Float64(), rng.Float64(), rng.Float64()))
	}
	for i := 0; i+7 < 50; i += 8 {
		ug.AddCell(data.CellHexahedron, i, i+1, i+2, i+3, i+4, i+5, i+6, i+7)
	}
	temp := data.NewField("Temp", 1, 50)
	vel := data.NewField("V", 3, 50)
	for i := 0; i < 50; i++ {
		temp.SetScalar(i, rng.Float64()*100)
		vel.SetVec3(i, vmath.V(rng.Float64(), rng.Float64(), rng.Float64()))
	}
	ug.Points.Add(temp)
	ug.Points.Add(vel)

	var buf bytes.Buffer
	if err := WriteExodus(&buf, ug, "disk sample"); err != nil {
		t.Fatal(err)
	}
	got, title, err := ReadExodus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if title != "disk sample" {
		t.Errorf("title = %q", title)
	}
	if got.NumPoints() != 50 || got.NumCells() != ug.NumCells() {
		t.Fatalf("counts: %d pts %d cells", got.NumPoints(), got.NumCells())
	}
	for i := 0; i < 50; i++ {
		if !got.Pts[i].NearEq(ug.Pts[i], 0) {
			t.Fatalf("point %d mismatch", i)
		}
		if got.Points.Get("Temp").Scalar(i) != temp.Scalar(i) {
			t.Fatalf("Temp %d mismatch", i)
		}
		if got.Points.Get("V").Vec3(i) != vel.Vec3(i) {
			t.Fatalf("V %d mismatch", i)
		}
	}
	if got.Cells[0].Type != data.CellHexahedron {
		t.Error("cell type mismatch")
	}
}

func TestExodusRejectsBadMagic(t *testing.T) {
	if _, _, err := ReadExodus(bytes.NewReader([]byte("NOPE0123456789"))); err == nil {
		t.Error("expected magic error")
	}
}

func TestExodusRejectsOutOfRangeCellRef(t *testing.T) {
	ug := data.NewUnstructuredGrid()
	ug.AddPoint(vmath.V(0, 0, 0))
	ug.AddCell(data.CellLine, 0, 5) // invalid reference
	var buf bytes.Buffer
	if err := WriteExodus(&buf, ug, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadExodus(&buf); err == nil {
		t.Error("expected out-of-range cell reference error")
	}
}

func TestSaveLoadFiles(t *testing.T) {
	dir := t.TempDir()
	im := data.NewImageData(2, 2, 2, vmath.V(0, 0, 0), vmath.V(1, 1, 1))
	f := data.NewField("var0", 1, 8)
	im.Points.Add(f)
	vtkPath := dir + "/a.vtk"
	if err := SaveLegacyVTK(vtkPath, im, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLegacyVTK(vtkPath); err != nil {
		t.Fatal(err)
	}
	ug := data.NewUnstructuredGrid()
	ug.AddPoint(vmath.V(1, 2, 3))
	exPath := dir + "/b.ex2"
	if err := SaveExodus(exPath, ug, "t"); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadExodus(exPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPoints() != 1 {
		t.Error("load mismatch")
	}
	if _, err := LoadLegacyVTK(dir + "/missing.vtk"); err == nil {
		t.Error("expected missing file error")
	}
	if _, _, err := LoadExodus(dir + "/missing.ex2"); err == nil {
		t.Error("expected missing file error")
	}
}
