// Package vtkio reads and writes the dataset model.
//
// Two formats are supported:
//
//   - Legacy VTK ASCII files (*.vtk) for STRUCTURED_POINTS, POLYDATA and
//     UNSTRUCTURED_GRID datasets — the format used by the paper's
//     ml-100.vtk input.
//   - A simulated Exodus-II container (*.ex2). Real Exodus-II is a NetCDF
//     schema; here we implement a small self-describing binary with the
//     Exodus concepts the experiments touch (coordinates, element blocks,
//     nodal variables). The substitution is documented in DESIGN.md.
package vtkio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

// WriteLegacyVTK writes ds to w in legacy VTK ASCII format. Supported
// dataset types: *data.ImageData, *data.PolyData, *data.UnstructuredGrid.
func WriteLegacyVTK(w io.Writer, ds data.Dataset, title string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	if title == "" {
		title = "chatvis dataset"
	}
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	switch d := ds.(type) {
	case *data.ImageData:
		writeStructuredPoints(bw, d)
	case *data.PolyData:
		writePolyData(bw, d)
	case *data.UnstructuredGrid:
		writeUnstructuredGrid(bw, d)
	default:
		return fmt.Errorf("vtkio: unsupported dataset type %T", ds)
	}
	writePointData(bw, ds)
	return bw.Flush()
}

// SaveLegacyVTK writes ds to the named file.
func SaveLegacyVTK(path string, ds data.Dataset, title string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteLegacyVTK(f, ds, title); err != nil {
		return err
	}
	return f.Sync()
}

func writeStructuredPoints(w *bufio.Writer, d *data.ImageData) {
	fmt.Fprintln(w, "DATASET STRUCTURED_POINTS")
	fmt.Fprintf(w, "DIMENSIONS %d %d %d\n", d.Dims[0], d.Dims[1], d.Dims[2])
	fmt.Fprintf(w, "ORIGIN %g %g %g\n", d.Origin.X, d.Origin.Y, d.Origin.Z)
	fmt.Fprintf(w, "SPACING %g %g %g\n", d.Spacing.X, d.Spacing.Y, d.Spacing.Z)
}

func writePolyData(w *bufio.Writer, d *data.PolyData) {
	fmt.Fprintln(w, "DATASET POLYDATA")
	fmt.Fprintf(w, "POINTS %d float\n", len(d.Pts))
	for _, p := range d.Pts {
		fmt.Fprintf(w, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	writeConn := func(keyword string, conn [][]int) {
		if len(conn) == 0 {
			return
		}
		size := 0
		for _, c := range conn {
			size += 1 + len(c)
		}
		fmt.Fprintf(w, "%s %d %d\n", keyword, len(conn), size)
		for _, c := range conn {
			fmt.Fprintf(w, "%d", len(c))
			for _, id := range c {
				fmt.Fprintf(w, " %d", id)
			}
			fmt.Fprintln(w)
		}
	}
	writeConn("VERTICES", d.Verts)
	writeConn("LINES", d.Lines)
	writeConn("POLYGONS", d.Polys)
}

func writeUnstructuredGrid(w *bufio.Writer, d *data.UnstructuredGrid) {
	fmt.Fprintln(w, "DATASET UNSTRUCTURED_GRID")
	fmt.Fprintf(w, "POINTS %d float\n", len(d.Pts))
	for _, p := range d.Pts {
		fmt.Fprintf(w, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	size := 0
	for _, c := range d.Cells {
		size += 1 + len(c.IDs)
	}
	fmt.Fprintf(w, "CELLS %d %d\n", len(d.Cells), size)
	for _, c := range d.Cells {
		fmt.Fprintf(w, "%d", len(c.IDs))
		for _, id := range c.IDs {
			fmt.Fprintf(w, " %d", id)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "CELL_TYPES %d\n", len(d.Cells))
	for _, c := range d.Cells {
		fmt.Fprintf(w, "%d\n", int(c.Type))
	}
}

func writePointData(w *bufio.Writer, ds data.Dataset) {
	pd := ds.PointData()
	if pd == nil || pd.Len() == 0 {
		return
	}
	fmt.Fprintf(w, "POINT_DATA %d\n", ds.NumPoints())
	for i := 0; i < pd.Len(); i++ {
		f := pd.At(i)
		switch f.NumComponents {
		case 1:
			fmt.Fprintf(w, "SCALARS %s float 1\n", f.Name)
			fmt.Fprintln(w, "LOOKUP_TABLE default")
			for j := 0; j < f.NumTuples(); j++ {
				fmt.Fprintf(w, "%g\n", f.Scalar(j))
			}
		case 3:
			fmt.Fprintf(w, "VECTORS %s float\n", f.Name)
			for j := 0; j < f.NumTuples(); j++ {
				v := f.Vec3(j)
				fmt.Fprintf(w, "%g %g %g\n", v.X, v.Y, v.Z)
			}
		default:
			fmt.Fprintf(w, "FIELD FieldData 1\n%s %d %d float\n",
				f.Name, f.NumComponents, f.NumTuples())
			for j := range f.Data {
				fmt.Fprintf(w, "%g\n", f.Data[j])
			}
		}
	}
}

// tokenReader provides whitespace-separated token scanning with line
// tracking for error messages.
type tokenReader struct {
	sc   *bufio.Scanner
	toks []string
	pos  int
	line int
}

func newTokenReader(r io.Reader) *tokenReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	return &tokenReader{sc: sc}
}

func (t *tokenReader) next() (string, error) {
	for t.pos >= len(t.toks) {
		if !t.sc.Scan() {
			if err := t.sc.Err(); err != nil {
				return "", err
			}
			return "", io.EOF
		}
		t.line++
		t.toks = strings.Fields(t.sc.Text())
		t.pos = 0
	}
	tok := t.toks[t.pos]
	t.pos++
	return tok, nil
}

func (t *tokenReader) nextInt() (int, error) {
	tok, err := t.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("vtkio: line %d: expected integer, got %q", t.line, tok)
	}
	return v, nil
}

func (t *tokenReader) nextFloat() (float64, error) {
	tok, err := t.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("vtkio: line %d: expected number, got %q", t.line, tok)
	}
	return v, nil
}

// ReadLegacyVTK parses a legacy VTK ASCII stream.
func ReadLegacyVTK(r io.Reader) (data.Dataset, error) {
	br := bufio.NewReader(r)
	// Header: comment line, title line, format line.
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("vtkio: reading header: %w", err)
	}
	if !strings.HasPrefix(header, "# vtk DataFile") {
		return nil, fmt.Errorf("vtkio: not a legacy VTK file (header %q)", strings.TrimSpace(header))
	}
	if _, err := br.ReadString('\n'); err != nil { // title
		return nil, fmt.Errorf("vtkio: reading title: %w", err)
	}
	format, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("vtkio: reading format: %w", err)
	}
	if strings.TrimSpace(strings.ToUpper(format)) != "ASCII" {
		return nil, fmt.Errorf("vtkio: only ASCII files supported, got %q", strings.TrimSpace(format))
	}
	tr := newTokenReader(br)
	kw, err := tr.next()
	if err != nil {
		return nil, fmt.Errorf("vtkio: missing DATASET keyword: %w", err)
	}
	if strings.ToUpper(kw) != "DATASET" {
		return nil, fmt.Errorf("vtkio: expected DATASET, got %q", kw)
	}
	kind, err := tr.next()
	if err != nil {
		return nil, err
	}
	switch strings.ToUpper(kind) {
	case "STRUCTURED_POINTS":
		return readStructuredPoints(tr)
	case "POLYDATA":
		return readPolyData(tr)
	case "UNSTRUCTURED_GRID":
		return readUnstructuredGrid(tr)
	}
	return nil, fmt.Errorf("vtkio: unsupported dataset kind %q", kind)
}

// LoadLegacyVTK reads a legacy VTK file from disk.
func LoadLegacyVTK(path string) (data.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLegacyVTK(f)
}

func readStructuredPoints(tr *tokenReader) (data.Dataset, error) {
	var dims [3]int
	var origin, spacing vmath.Vec3
	origin = vmath.V(0, 0, 0)
	spacing = vmath.V(1, 1, 1)
	dimsSeen := false
	for {
		kw, err := tr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch strings.ToUpper(kw) {
		case "DIMENSIONS":
			for i := 0; i < 3; i++ {
				if dims[i], err = tr.nextInt(); err != nil {
					return nil, err
				}
			}
			dimsSeen = true
		case "ORIGIN":
			if origin, err = readVec3(tr); err != nil {
				return nil, err
			}
		case "SPACING", "ASPECT_RATIO":
			if spacing, err = readVec3(tr); err != nil {
				return nil, err
			}
		case "POINT_DATA":
			if !dimsSeen {
				return nil, fmt.Errorf("vtkio: POINT_DATA before DIMENSIONS")
			}
			im := data.NewImageData(dims[0], dims[1], dims[2], origin, spacing)
			n, err := tr.nextInt()
			if err != nil {
				return nil, err
			}
			if n != im.NumPoints() {
				return nil, fmt.Errorf("vtkio: POINT_DATA count %d != %d points", n, im.NumPoints())
			}
			if err := readAttributes(tr, im.Points, n); err != nil {
				return nil, err
			}
			return im, nil
		default:
			return nil, fmt.Errorf("vtkio: unexpected keyword %q in structured points", kw)
		}
	}
	if !dimsSeen {
		return nil, fmt.Errorf("vtkio: structured points without DIMENSIONS")
	}
	return data.NewImageData(dims[0], dims[1], dims[2], origin, spacing), nil
}

func readVec3(tr *tokenReader) (vmath.Vec3, error) {
	var v vmath.Vec3
	var err error
	if v.X, err = tr.nextFloat(); err != nil {
		return v, err
	}
	if v.Y, err = tr.nextFloat(); err != nil {
		return v, err
	}
	v.Z, err = tr.nextFloat()
	return v, err
}

func readPoints(tr *tokenReader) ([]vmath.Vec3, error) {
	n, err := tr.nextInt()
	if err != nil {
		return nil, err
	}
	if _, err := tr.next(); err != nil { // data type (float/double), ignored
		return nil, err
	}
	pts := make([]vmath.Vec3, n)
	for i := range pts {
		if pts[i], err = readVec3(tr); err != nil {
			return nil, err
		}
	}
	return pts, nil
}

func readConn(tr *tokenReader) ([][]int, error) {
	n, err := tr.nextInt()
	if err != nil {
		return nil, err
	}
	if _, err := tr.nextInt(); err != nil { // total size, ignored
		return nil, err
	}
	conn := make([][]int, n)
	for i := range conn {
		m, err := tr.nextInt()
		if err != nil {
			return nil, err
		}
		ids := make([]int, m)
		for j := range ids {
			if ids[j], err = tr.nextInt(); err != nil {
				return nil, err
			}
		}
		conn[i] = ids
	}
	return conn, nil
}

func readPolyData(tr *tokenReader) (data.Dataset, error) {
	pd := data.NewPolyData()
	for {
		kw, err := tr.next()
		if err == io.EOF {
			return pd, nil
		}
		if err != nil {
			return nil, err
		}
		switch strings.ToUpper(kw) {
		case "POINTS":
			if pd.Pts, err = readPoints(tr); err != nil {
				return nil, err
			}
		case "VERTICES":
			if pd.Verts, err = readConn(tr); err != nil {
				return nil, err
			}
		case "LINES":
			if pd.Lines, err = readConn(tr); err != nil {
				return nil, err
			}
		case "POLYGONS", "TRIANGLE_STRIPS":
			if pd.Polys, err = readConn(tr); err != nil {
				return nil, err
			}
		case "POINT_DATA":
			n, err := tr.nextInt()
			if err != nil {
				return nil, err
			}
			if err := readAttributes(tr, pd.Points, n); err != nil {
				return nil, err
			}
			return pd, nil
		default:
			return nil, fmt.Errorf("vtkio: unexpected keyword %q in polydata", kw)
		}
	}
}

func readUnstructuredGrid(tr *tokenReader) (data.Dataset, error) {
	ug := data.NewUnstructuredGrid()
	var conn [][]int
	for {
		kw, err := tr.next()
		if err == io.EOF {
			return ug, nil
		}
		if err != nil {
			return nil, err
		}
		switch strings.ToUpper(kw) {
		case "POINTS":
			if ug.Pts, err = readPoints(tr); err != nil {
				return nil, err
			}
		case "CELLS":
			if conn, err = readConn(tr); err != nil {
				return nil, err
			}
		case "CELL_TYPES":
			n, err := tr.nextInt()
			if err != nil {
				return nil, err
			}
			if n != len(conn) {
				return nil, fmt.Errorf("vtkio: CELL_TYPES count %d != CELLS count %d", n, len(conn))
			}
			for i := 0; i < n; i++ {
				t, err := tr.nextInt()
				if err != nil {
					return nil, err
				}
				ug.Cells = append(ug.Cells, data.Cell{Type: data.CellType(t), IDs: conn[i]})
			}
		case "POINT_DATA":
			n, err := tr.nextInt()
			if err != nil {
				return nil, err
			}
			if err := readAttributes(tr, ug.Points, n); err != nil {
				return nil, err
			}
			return ug, nil
		default:
			return nil, fmt.Errorf("vtkio: unexpected keyword %q in unstructured grid", kw)
		}
	}
}

func readAttributes(tr *tokenReader, fs *data.FieldSet, n int) error {
	for {
		kw, err := tr.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch strings.ToUpper(kw) {
		case "SCALARS":
			name, err := tr.next()
			if err != nil {
				return err
			}
			if _, err := tr.next(); err != nil { // data type
				return err
			}
			// Optional numComp then LOOKUP_TABLE.
			tok, err := tr.next()
			if err != nil {
				return err
			}
			comps := 1
			if c, cerr := strconv.Atoi(tok); cerr == nil {
				comps = c
				tok, err = tr.next()
				if err != nil {
					return err
				}
			}
			if strings.ToUpper(tok) != "LOOKUP_TABLE" {
				return fmt.Errorf("vtkio: expected LOOKUP_TABLE after SCALARS %s, got %q", name, tok)
			}
			if _, err := tr.next(); err != nil { // table name
				return err
			}
			f := data.NewField(name, comps, n)
			for i := range f.Data {
				if f.Data[i], err = tr.nextFloat(); err != nil {
					return err
				}
			}
			fs.Add(f)
		case "VECTORS", "NORMALS":
			name, err := tr.next()
			if err != nil {
				return err
			}
			if _, err := tr.next(); err != nil { // data type
				return err
			}
			f := data.NewField(name, 3, n)
			for i := range f.Data {
				if f.Data[i], err = tr.nextFloat(); err != nil {
					return err
				}
			}
			fs.Add(f)
		default:
			return fmt.Errorf("vtkio: unsupported attribute keyword %q", kw)
		}
	}
}
