package render

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/filters"
	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// testScene builds a scene exercising every raster command kind: opaque
// and translucent surfaces, wireframe edges, polylines and points, plus
// a ray-cast volume.
func testScene(t *testing.T) *Renderer {
	t.Helper()
	vol := testVolume(20)
	surf, err := filters.Contour(vol, "scal", 0.45)
	if err != nil {
		t.Fatal(err)
	}
	filters.ComputePointNormals(surf)

	r := NewRenderer()
	a := NewActor(surf)
	a.ColorField = "scal"
	lo, hi := data.FieldRange(surf, "scal")
	a.LUT = NewCoolToWarm(lo, hi)
	r.AddActor(a)

	clip := filters.ClipPolyData(surf, vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(1, 0, 0)))
	translucent := NewActor(clip)
	translucent.Opacity = 0.5
	r.AddActor(translucent)

	wire := NewActor(surf)
	wire.Rep = RepWireframe
	wire.LineWidth = 2
	r.AddActor(wire)

	lines := data.NewPolyData()
	p0 := lines.AddPoint(vmath.V(-1, -1, -1))
	p1 := lines.AddPoint(vmath.V(1, 1, 1))
	p2 := lines.AddPoint(vmath.V(1, -1, 0))
	lines.AddLine(p0, p1, p2)
	lines.AddVert(p0)
	la := NewActor(lines)
	la.PointSize = 5
	r.AddActor(la)

	r.AddVolume(NewVolumeActor(vol, "scal"))
	r.ResetCamera()
	return r
}

func testVolume(n int) *data.ImageData {
	im := data.NewImageData(n, n, n, vmath.V(-1, -1, -1), vmath.V(2/float64(n-1), 2/float64(n-1), 2/float64(n-1)))
	f := data.NewField("scal", 1, im.NumPoints())
	for i := 0; i < im.NumPoints(); i++ {
		p := im.Point(i)
		f.SetScalar(i, math.Sin(3*p.X)*math.Cos(2*p.Y)+0.3*p.Z)
	}
	im.Points.Add(f)
	return im
}

// TestRenderFBParallelEquivalence pins the tile-parallel rasterizer's
// determinism contract: the framebuffer (color AND depth planes) is
// byte-identical across the full scheduling matrix — worker counts
// {1, 4, 8} under both the adaptive and the static chunking schedule.
// GOMAXPROCS is raised so multi-worker frames truly interleave even on
// a one-core runner.
func TestRenderFBParallelEquivalence(t *testing.T) {
	r := testScene(t)
	prev := runtime.GOMAXPROCS(8)
	defer func() {
		runtime.GOMAXPROCS(prev)
		par.SetWorkers(0)
		par.SetSchedule(par.SchedAdaptive)
	}()
	par.SetWorkers(1)
	par.SetSchedule(par.SchedAdaptive)
	ref := r.RenderFB(200, 130)
	for _, sched := range []par.Sched{par.SchedAdaptive, par.SchedStatic} {
		for _, w := range []int{1, 4, 8} {
			if sched == par.SchedAdaptive && w == 1 {
				continue // the reference frame
			}
			par.SetSchedule(sched)
			par.SetWorkers(w)
			got := r.RenderFB(200, 130)
			if !reflect.DeepEqual(ref.Color, got.Color) {
				diff := 0
				for i := range ref.Color {
					if ref.Color[i] != got.Color[i] {
						diff++
					}
				}
				t.Fatalf("sched=%s workers=%d: %d/%d pixels differ from serial render", sched, w, diff, len(ref.Color))
			}
			if !reflect.DeepEqual(ref.Depth, got.Depth) {
				t.Fatalf("sched=%s workers=%d: depth buffer differs from serial render", sched, w)
			}
		}
	}
}

// TestRenderFBArenaReuse pins the frame-scratch hygiene contract: the
// pooled frameScratch/cmdChunk builders the first frame dirtied are
// recycled into later frames, so re-rendering the identical scene must
// reproduce the framebuffer byte-for-byte — and the first frame's
// planes, snapshotted between renders, must never be touched by a
// later frame (the framebuffer may not alias pooled scratch). Run
// under -race this also sweeps the chunked geometry phase for data
// races on the reused builders.
func TestRenderFBArenaReuse(t *testing.T) {
	r := testScene(t)
	par.SetWorkers(4)
	defer par.SetWorkers(0)
	first := r.RenderFB(200, 130)
	snapColor := append([]Color(nil), first.Color...)
	snapDepth := append([]float64(nil), first.Depth...)
	second := r.RenderFB(200, 130)
	if !reflect.DeepEqual(first.Color, second.Color) || !reflect.DeepEqual(first.Depth, second.Depth) {
		t.Fatal("re-render with recycled frame scratch differs from the first frame")
	}
	third := r.RenderFB(200, 130)
	if !reflect.DeepEqual(second.Color, third.Color) || !reflect.DeepEqual(second.Depth, third.Depth) {
		t.Fatal("third render with recycled frame scratch differs")
	}
	if !reflect.DeepEqual(first.Color, snapColor) || !reflect.DeepEqual(first.Depth, snapDepth) {
		t.Fatal("later frames mutated the first framebuffer — output aliases pooled scratch")
	}
}

// TestEmptySceneCameraGuard is the regression test for the empty-scene
// NaN camera: resetting with no visible actors (none at all, an invisible
// one, or a visible actor holding an empty mesh) must leave the camera
// finite and render the plain background.
func TestEmptySceneCameraGuard(t *testing.T) {
	finite := func(v vmath.Vec3) bool {
		ok := func(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
		return ok(v.X) && ok(v.Y) && ok(v.Z)
	}
	cases := map[string]func(*Renderer){
		"no-actors": func(r *Renderer) {},
		"invisible-actor": func(r *Renderer) {
			a := NewActor(data.NewPolyData())
			a.Visible = false
			r.AddActor(a)
		},
		"visible-empty-mesh": func(r *Renderer) {
			r.AddActor(NewActor(data.NewPolyData()))
		},
		"nil-volume-image": func(r *Renderer) {
			r.AddVolume(&VolumeActor{Visible: true})
		},
	}
	for name, setup := range cases {
		t.Run(name, func(t *testing.T) {
			r := NewRenderer()
			setup(r)
			if b := r.VisibleBounds(); !b.IsEmpty() {
				t.Fatalf("VisibleBounds = %+v, want empty", b)
			}
			r.ResetCamera()
			if !finite(r.Camera.Position) || !finite(r.Camera.FocalPoint) || !finite(r.Camera.ViewUp) {
				t.Fatalf("camera not finite after empty ResetCamera: %+v", r.Camera)
			}
			fb := r.RenderFB(32, 32)
			for i, c := range fb.Color {
				if c != r.Background {
					t.Fatalf("pixel %d = %+v, want background", i, c)
				}
			}
		})
	}
}

// TestResetToBoundsRejectsNonFinite guards the camera against NaN/Inf
// bounds directly.
func TestResetToBoundsRejectsNonFinite(t *testing.T) {
	c := NewCamera()
	before := *c
	c.ResetToBounds(vmath.AABB{Min: vmath.V(math.NaN(), 0, 0), Max: vmath.V(1, 1, 1)})
	if *c != before {
		t.Error("NaN bounds should leave the camera untouched")
	}
	c.ResetToBounds(vmath.AABB{Min: vmath.V(0, 0, 0), Max: vmath.V(math.Inf(1), 1, 1)})
	if *c != before {
		t.Error("infinite bounds should leave the camera untouched")
	}
}

// TestLookFromEmptyBoundsStaysFinite pins the LookFrom fallback.
func TestLookFromEmptyBoundsStaysFinite(t *testing.T) {
	c := NewCamera()
	c.LookFrom(vmath.V(1, 1, 1), vmath.Vec3{}, vmath.EmptyAABB())
	for _, f := range []float64{c.Position.X, c.Position.Y, c.Position.Z} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("LookFrom with empty bounds produced %+v", c.Position)
		}
	}
}
