package render

import (
	"context"
	"math"

	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// castVolume ray-casts a volume actor into the framebuffer with
// front-to-back alpha compositing, depth-tested against already-rendered
// geometry. Row bands are processed in parallel on the par worker pool;
// each ray owns its pixel, so output is byte-identical for any worker
// count.
func (r *Renderer) castVolume(ctx context.Context, fb *Framebuffer, v *VolumeActor, view, proj vmath.Mat4, near, far float64) error {
	im := v.Image
	field := im.Points.Get(v.Field)
	if field == nil || field.NumComponents != 1 {
		return nil
	}
	bounds := im.Bounds()
	diag := bounds.Diagonal()
	if diag == 0 {
		return nil
	}
	sample := v.SampleDistance
	if sample <= 0 {
		sample = 1.0 / 300
	}
	step := diag * sample
	// Opacity correction reference: OTF is defined per unit step of the
	// same length, so no correction needed with a single step size.

	// Inverse view transform: camera rays to world space.
	camPos := r.Camera.Position
	// Build per-pixel ray directions from the NDC frustum.
	invAspect := float64(fb.W) / float64(fb.H)
	tanHalf := math.Tan(vmath.Radians(r.Camera.ViewAngle) / 2)
	viewDir := r.Camera.Direction()
	right := viewDir.Cross(r.Camera.ViewUp).Norm()
	up := right.Cross(viewDir).Norm()

	mvp := proj.MulM(view)

	parallel := r.Camera.ParallelProjection
	pscale := r.Camera.ParallelScale
	if pscale <= 0 {
		pscale = 1
	}

	return par.For(ctx, fb.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < fb.W; x++ {
				ndcX := (float64(x)+0.5)/float64(fb.W)*2 - 1
				ndcY := 1 - (float64(y)+0.5)/float64(fb.H)*2
				var origin, dir vmath.Vec3
				if parallel {
					origin = camPos.
						Add(right.Mul(ndcX * pscale * invAspect)).
						Add(up.Mul(ndcY * pscale))
					dir = viewDir
				} else {
					origin = camPos
					dir = viewDir.
						Add(right.Mul(ndcX * tanHalf * invAspect)).
						Add(up.Mul(ndcY * tanHalf)).Norm()
				}
				r.castRay(fb, v, field, origin, dir, bounds, step, mvp, x, y)
			}
		}
	})
}

// castRay composites one ray through the volume.
func (r *Renderer) castRay(fb *Framebuffer, v *VolumeActor, field interface {
	Scalar(int) float64
}, origin, dir vmath.Vec3, bounds vmath.AABB, step float64, mvp vmath.Mat4, x, y int) {
	t0, t1, hit := rayBox(origin, dir, bounds)
	if !hit {
		return
	}
	if t0 < 0 {
		t0 = 0
	}
	idx := y*fb.W + x
	zLimit := fb.Depth[idx]

	var accum Color
	alpha := 0.0
	im := v.Image
	sfield := im.Points.Get(v.Field)
	for t := t0; t <= t1; t += step {
		p := origin.Add(dir.Mul(t))
		// Depth test against rendered geometry.
		if !math.IsInf(zLimit, 1) {
			ndc, w := mvp.MulPointW(p)
			if w != 0 && ndc.Z/w > zLimit {
				break
			}
		}
		val, ok := im.SampleScalar(sfield, p)
		if !ok {
			continue
		}
		a := v.OTF.Map(val)
		if a <= 0 {
			continue
		}
		// Per-step opacity is treated as defined for this step length.
		c := v.CTF.Map(val)
		weight := (1 - alpha) * a
		accum.R += c.R * weight
		accum.G += c.G * weight
		accum.B += c.B * weight
		alpha += weight
		if alpha >= 0.98 {
			break
		}
	}
	if alpha <= 0 {
		return
	}
	bg := fb.Color[idx]
	fb.Color[idx] = Color{
		R: accum.R + bg.R*(1-alpha),
		G: accum.G + bg.G*(1-alpha),
		B: accum.B + bg.B*(1-alpha),
	}
}

// rayBox intersects a ray with an AABB, returning entry/exit parameters.
func rayBox(origin, dir vmath.Vec3, b vmath.AABB) (t0, t1 float64, hit bool) {
	t0, t1 = math.Inf(-1), math.Inf(1)
	for axis := 0; axis < 3; axis++ {
		o := origin.Comp(axis)
		d := dir.Comp(axis)
		lo := b.Min.Comp(axis)
		hi := b.Max.Comp(axis)
		if math.Abs(d) < 1e-15 {
			if o < lo || o > hi {
				return 0, 0, false
			}
			continue
		}
		ta := (lo - o) / d
		tb := (hi - o) / d
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > t0 {
			t0 = ta
		}
		if tb < t1 {
			t1 = tb
		}
		if t0 > t1 {
			return 0, 0, false
		}
	}
	return t0, t1, true
}
