package render

import (
	"fmt"
	"image"
	"image/png"
	"os"
	"path/filepath"
)

// SavePNG writes an image to the given path, creating parent directories
// as needed.
func SavePNG(path string, img image.Image) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("render: creating output directory: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return fmt.Errorf("render: encoding png: %w", err)
	}
	return f.Sync()
}

// LoadPNG reads a PNG image from disk.
func LoadPNG(path string) (image.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("render: decoding %s: %w", path, err)
	}
	return img, nil
}
