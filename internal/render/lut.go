package render

import (
	"math"
	"sort"
)

// Color is an RGB triple with components in [0,1].
type Color struct{ R, G, B float64 }

// Lerp blends two colors.
func (c Color) Lerp(o Color, t float64) Color {
	return Color{
		R: c.R + t*(o.R-c.R),
		G: c.G + t*(o.G-c.G),
		B: c.B + t*(o.B-c.B),
	}
}

// Scale multiplies all components by s, clamped to [0,1].
func (c Color) Scale(s float64) Color {
	cl := func(v float64) float64 { return math.Max(0, math.Min(1, v)) }
	return Color{cl(c.R * s), cl(c.G * s), cl(c.B * s)}
}

// Well-known colors used by the ParaView layer.
var (
	White = Color{1, 1, 1}
	Black = Color{0, 0, 0}
	Red   = Color{1, 0, 0}
	// DefaultSurface is ParaView's default solid color for geometry.
	DefaultSurface = Color{1, 1, 1}
	// DefaultBackground is ParaView's default gray-blue background.
	DefaultBackground = Color{0.32, 0.34, 0.43}
)

// ctfPoint is one control point of a transfer function.
type ctfPoint struct {
	x float64
	c Color
}

// LookupTable is a piecewise-linear color transfer function over a scalar
// range, like vtkColorTransferFunction.
type LookupTable struct {
	points []ctfPoint
	// NaNColor is returned for NaN input (ParaView default dull yellow).
	NaNColor Color
}

// NewCoolToWarm builds ParaView's default "Cool to Warm" diverging map
// over [lo, hi].
func NewCoolToWarm(lo, hi float64) *LookupTable {
	if hi <= lo {
		hi = lo + 1
	}
	mid := (lo + hi) / 2
	return &LookupTable{
		points: []ctfPoint{
			{lo, Color{0.231, 0.298, 0.753}},
			{mid, Color{0.865, 0.865, 0.865}},
			{hi, Color{0.706, 0.016, 0.150}},
		},
		NaNColor: Color{1, 1, 0},
	}
}

// NewGrayscale builds a black-to-white ramp over [lo, hi].
func NewGrayscale(lo, hi float64) *LookupTable {
	if hi <= lo {
		hi = lo + 1
	}
	return &LookupTable{
		points:   []ctfPoint{{lo, Black}, {hi, White}},
		NaNColor: Color{1, 1, 0},
	}
}

// AddPoint inserts a control point; points are kept sorted by x.
func (l *LookupTable) AddPoint(x float64, c Color) {
	l.points = append(l.points, ctfPoint{x, c})
	sort.Slice(l.points, func(i, j int) bool { return l.points[i].x < l.points[j].x })
}

// Range returns the x extent of the control points.
func (l *LookupTable) Range() (lo, hi float64) {
	if len(l.points) == 0 {
		return 0, 1
	}
	return l.points[0].x, l.points[len(l.points)-1].x
}

// RescaleTo linearly remaps all control points onto [lo, hi], like
// ParaView's RescaleTransferFunctionToDataRange.
func (l *LookupTable) RescaleTo(lo, hi float64) {
	if len(l.points) == 0 || hi <= lo {
		return
	}
	oldLo, oldHi := l.Range()
	span := oldHi - oldLo
	if span == 0 {
		span = 1
	}
	for i := range l.points {
		t := (l.points[i].x - oldLo) / span
		l.points[i].x = lo + t*(hi-lo)
	}
}

// Map returns the color for scalar value x (clamped to the range).
func (l *LookupTable) Map(x float64) Color {
	if math.IsNaN(x) {
		return l.NaNColor
	}
	n := len(l.points)
	if n == 0 {
		return White
	}
	if x <= l.points[0].x {
		return l.points[0].c
	}
	if x >= l.points[n-1].x {
		return l.points[n-1].c
	}
	i := sort.Search(n, func(i int) bool { return l.points[i].x >= x }) // first >= x
	p0, p1 := l.points[i-1], l.points[i]
	t := 0.0
	if p1.x > p0.x {
		t = (x - p0.x) / (p1.x - p0.x)
	}
	return p0.c.Lerp(p1.c, t)
}

// otfPoint is one control point of an opacity function.
type otfPoint struct {
	x float64
	a float64
}

// OpacityFunction is a piecewise-linear scalar-to-opacity map, like
// vtkPiecewiseFunction.
type OpacityFunction struct {
	points []otfPoint
}

// NewDefaultOpacity builds ParaView's default volume-rendering opacity
// ramp over [lo, hi]: transparent at the low end rising linearly to opaque.
func NewDefaultOpacity(lo, hi float64) *OpacityFunction {
	if hi <= lo {
		hi = lo + 1
	}
	return &OpacityFunction{points: []otfPoint{{lo, 0}, {hi, 1}}}
}

// AddPoint inserts a control point; points stay sorted by x.
func (o *OpacityFunction) AddPoint(x, a float64) {
	o.points = append(o.points, otfPoint{x, a})
	sort.Slice(o.points, func(i, j int) bool { return o.points[i].x < o.points[j].x })
}

// Range returns the x extent of the control points.
func (o *OpacityFunction) Range() (lo, hi float64) {
	if len(o.points) == 0 {
		return 0, 1
	}
	return o.points[0].x, o.points[len(o.points)-1].x
}

// RescaleTo linearly remaps all control points onto [lo, hi].
func (o *OpacityFunction) RescaleTo(lo, hi float64) {
	if len(o.points) == 0 || hi <= lo {
		return
	}
	oldLo, oldHi := o.Range()
	span := oldHi - oldLo
	if span == 0 {
		span = 1
	}
	for i := range o.points {
		t := (o.points[i].x - oldLo) / span
		o.points[i].x = lo + t*(hi-lo)
	}
}

// Map returns the opacity for scalar value x (clamped).
func (o *OpacityFunction) Map(x float64) float64 {
	n := len(o.points)
	if n == 0 || math.IsNaN(x) {
		return 0
	}
	if x <= o.points[0].x {
		return o.points[0].a
	}
	if x >= o.points[n-1].x {
		return o.points[n-1].a
	}
	i := sort.Search(n, func(i int) bool { return o.points[i].x >= x })
	p0, p1 := o.points[i-1], o.points[i]
	t := 0.0
	if p1.x > p0.x {
		t = (x - p0.x) / (p1.x - p0.x)
	}
	return p0.a + t*(p1.a-p0.a)
}
