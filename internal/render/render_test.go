package render

import (
	"math"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/filters"
	"chatvis/internal/vmath"
)

func TestCameraResetToBounds(t *testing.T) {
	c := NewCamera()
	b := vmath.AABB{Min: vmath.V(-1, -1, -1), Max: vmath.V(1, 1, 1)}
	c.ResetToBounds(b)
	if !c.FocalPoint.NearEq(vmath.V(0, 0, 0), 1e-12) {
		t.Errorf("focal = %v", c.FocalPoint)
	}
	// Bounding sphere radius sqrt(3); distance = r/sin(15 deg).
	want := math.Sqrt(3) / math.Sin(vmath.Radians(15))
	if math.Abs(c.Distance()-want) > 1e-9 {
		t.Errorf("distance = %v, want %v", c.Distance(), want)
	}
	// Default camera looks down -z, so it should sit at +z.
	if c.Position.Z <= 0 {
		t.Errorf("camera should stay on +z: %v", c.Position)
	}
}

func TestCameraLookFrom(t *testing.T) {
	c := NewCamera()
	b := vmath.AABB{Min: vmath.V(-1, -1, -1), Max: vmath.V(1, 1, 1)}
	c.LookFrom(vmath.V(1, 0, 0), vmath.Vec3{}, b) // look from +x
	if c.Position.X <= 1 {
		t.Errorf("camera should be at +x: %v", c.Position)
	}
	if math.Abs(c.Position.Y) > 1e-9 || math.Abs(c.Position.Z) > 1e-9 {
		t.Errorf("camera off axis: %v", c.Position)
	}
	dir := c.Direction()
	if !dir.NearEq(vmath.V(-1, 0, 0), 1e-9) {
		t.Errorf("direction = %v", dir)
	}
}

func TestCameraIsometric(t *testing.T) {
	c := NewCamera()
	b := vmath.AABB{Min: vmath.V(0, 0, 0), Max: vmath.V(2, 2, 2)}
	c.Isometric(b)
	d := c.Position.Sub(b.Center()).Norm()
	want := vmath.V(1, 1, 1).Norm()
	if !d.NearEq(want, 1e-9) {
		t.Errorf("isometric direction = %v", d)
	}
}

func TestCameraAzimuthElevationPreserveDistance(t *testing.T) {
	c := NewCamera()
	c.ResetToBounds(vmath.AABB{Min: vmath.V(-1, -1, -1), Max: vmath.V(1, 1, 1)})
	d0 := c.Distance()
	c.Azimuth(30)
	c.Elevation(-20)
	if math.Abs(c.Distance()-d0) > 1e-9 {
		t.Errorf("distance changed: %v -> %v", d0, c.Distance())
	}
}

func TestCameraZoom(t *testing.T) {
	c := NewCamera()
	d0 := c.Distance()
	c.Zoom(2)
	if math.Abs(c.Distance()-d0/2) > 1e-12 {
		t.Errorf("zoom distance = %v", c.Distance())
	}
	c.Zoom(0) // no-op
	if math.Abs(c.Distance()-d0/2) > 1e-12 {
		t.Error("zoom(0) should be ignored")
	}
}

func TestLookupTableCoolToWarm(t *testing.T) {
	l := NewCoolToWarm(0, 1)
	lo := l.Map(0)
	hi := l.Map(1)
	if lo.B < lo.R { // cool end is blue
		t.Errorf("low end not blue: %+v", lo)
	}
	if hi.R < hi.B { // warm end is red
		t.Errorf("high end not red: %+v", hi)
	}
	mid := l.Map(0.5)
	if math.Abs(mid.R-mid.G) > 1e-9 || math.Abs(mid.G-mid.B) > 1e-9 {
		t.Errorf("midpoint should be gray: %+v", mid)
	}
	// Clamping.
	if l.Map(-5) != lo || l.Map(99) != hi {
		t.Error("out-of-range values must clamp")
	}
	// NaN maps to NaN color.
	if l.Map(math.NaN()) != l.NaNColor {
		t.Error("NaN should map to NaNColor")
	}
}

func TestLookupTableRescale(t *testing.T) {
	l := NewCoolToWarm(0, 1)
	l.RescaleTo(100, 200)
	lo, hi := l.Range()
	if lo != 100 || hi != 200 {
		t.Errorf("range = %v..%v", lo, hi)
	}
	c150 := l.Map(150)
	if math.Abs(c150.R-c150.B) > 0.01 {
		t.Errorf("new midpoint not gray: %+v", c150)
	}
}

func TestOpacityFunction(t *testing.T) {
	o := NewDefaultOpacity(0, 10)
	if o.Map(0) != 0 || o.Map(10) != 1 {
		t.Error("endpoints wrong")
	}
	if math.Abs(o.Map(5)-0.5) > 1e-12 {
		t.Errorf("midpoint = %v", o.Map(5))
	}
	o.AddPoint(5, 0) // dip
	if o.Map(5) != 0 {
		t.Error("AddPoint should override interpolation at that x")
	}
	o.RescaleTo(0, 1)
	if lo, hi := o.Range(); lo != 0 || hi != 1 {
		t.Errorf("rescaled range = %v..%v", lo, hi)
	}
}

// triangleScene builds a renderer with a single red triangle facing the
// default camera.
func triangleScene() *Renderer {
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(-0.5, -0.5, 0))
	pd.AddPoint(vmath.V(0.5, -0.5, 0))
	pd.AddPoint(vmath.V(0, 0.5, 0))
	pd.AddTriangle(0, 1, 2)
	r := NewRenderer()
	a := NewActor(pd)
	a.SolidColor = Red
	r.AddActor(a)
	r.Background = White
	r.ResetCamera()
	return r
}

func countColored(fb *Framebuffer, bg Color) int {
	n := 0
	for _, c := range fb.Color {
		if c != bg {
			n++
		}
	}
	return n
}

func TestRenderTriangle(t *testing.T) {
	r := triangleScene()
	fb := r.RenderFB(100, 100)
	n := countColored(fb, White)
	if n < 100 {
		t.Fatalf("triangle rendered only %d pixels", n)
	}
	// Center pixel should be reddish (shaded red).
	c := fb.At(50, 55)
	if c.R < 0.5 || c.G > 0.3 || c.B > 0.3 {
		t.Errorf("center color = %+v, want red", c)
	}
	// Corner pixel stays background.
	if fb.At(1, 1) != White {
		t.Error("corner should be background")
	}
}

func TestRenderEmptySceneIsBackground(t *testing.T) {
	r := NewRenderer()
	r.Background = Color{0.1, 0.2, 0.3}
	fb := r.RenderFB(10, 10)
	for _, c := range fb.Color {
		if c != r.Background {
			t.Fatal("empty scene must be pure background")
		}
	}
}

func TestRenderDepthOrder(t *testing.T) {
	// Two overlapping triangles; the nearer (green) must win.
	pd1 := data.NewPolyData()
	pd1.AddPoint(vmath.V(-1, -1, 0))
	pd1.AddPoint(vmath.V(1, -1, 0))
	pd1.AddPoint(vmath.V(0, 1, 0))
	pd1.AddTriangle(0, 1, 2)
	pd2 := data.NewPolyData()
	pd2.AddPoint(vmath.V(-1, -1, 1)) // closer to default camera at +z
	pd2.AddPoint(vmath.V(1, -1, 1))
	pd2.AddPoint(vmath.V(0, 1, 1))
	pd2.AddTriangle(0, 1, 2)

	r := NewRenderer()
	r.Background = White
	red := NewActor(pd1)
	red.SolidColor = Red
	green := NewActor(pd2)
	green.SolidColor = Color{0, 1, 0}
	r.AddActor(red)
	r.AddActor(green)
	r.Camera.LookFrom(vmath.V(0, 0, 1), vmath.V(0, 1, 0), r.VisibleBounds())
	fb := r.RenderFB(80, 80)
	c := fb.At(40, 44)
	if c.G < 0.5 || c.R > 0.3 {
		t.Errorf("front triangle should win: %+v", c)
	}
}

func TestRenderScalarColoring(t *testing.T) {
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(-1, 0, 0))
	pd.AddPoint(vmath.V(1, 0, 0))
	pd.AddPoint(vmath.V(0, 1.5, 0))
	pd.AddTriangle(0, 1, 2)
	f := data.NewField("s", 1, 3)
	f.Data = []float64{0, 1, 0.5}
	pd.Points.Add(f)
	r := NewRenderer()
	r.Background = White
	a := NewActor(pd)
	a.ColorField = "s"
	a.LUT = NewCoolToWarm(0, 1)
	r.AddActor(a)
	r.ResetCamera()
	fb := r.RenderFB(120, 120)
	// Left side should be blue-ish, right side red-ish.
	var left, right Color
	found := 0
	for x := 0; x < 120; x++ {
		c := fb.At(x, 80)
		if c != White {
			if found == 0 {
				left = c
			}
			right = c
			found++
		}
	}
	if found < 20 {
		t.Fatalf("too few colored pixels: %d", found)
	}
	if left.B <= left.R {
		t.Errorf("left edge not blue: %+v", left)
	}
	if right.R <= right.B {
		t.Errorf("right edge not red: %+v", right)
	}
}

func TestRenderWireframeSparser(t *testing.T) {
	im := dataSphere(14)
	surf, err := filters.Contour(im, "dist", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mkR := func(rep Representation) int {
		r := NewRenderer()
		r.Background = White
		a := NewActor(surf)
		a.SolidColor = Red // distinguishable from the white background
		a.Rep = rep
		r.AddActor(a)
		r.ResetCamera()
		return countColored(r.RenderFB(150, 150), White)
	}
	solid := mkR(RepSurface)
	wire := mkR(RepWireframe)
	pts := mkR(RepPoints)
	if wire >= solid {
		t.Errorf("wireframe (%d px) should cover less than surface (%d px)", wire, solid)
	}
	if wire == 0 || pts == 0 {
		t.Error("wireframe/points rendered nothing")
	}
}

func dataSphere(n int) *data.ImageData {
	spacing := 2.0 / float64(n-1)
	im := data.NewImageData(n, n, n, vmath.V(-1, -1, -1), vmath.V(spacing, spacing, spacing))
	f := data.NewField("dist", 1, im.NumPoints())
	for i := 0; i < im.NumPoints(); i++ {
		f.SetScalar(i, im.Point(i).Len())
	}
	im.Points.Add(f)
	return im
}

func TestRenderVolume(t *testing.T) {
	im := datagen.MarschnerLobb(24)
	r := NewRenderer()
	r.Background = White
	r.AddVolume(NewVolumeActor(im, "var0"))
	r.ResetCamera()
	fb := r.RenderFB(80, 80)
	n := countColored(fb, White)
	if n < 400 {
		t.Fatalf("volume rendering touched only %d pixels", n)
	}
	// Center of image should have accumulated some color.
	c := fb.At(40, 40)
	if c == White {
		t.Error("volume invisible at image center")
	}
}

func TestRenderVolumeMissingFieldIsNoop(t *testing.T) {
	im := datagen.MarschnerLobb(8)
	r := NewRenderer()
	r.Background = White
	v := NewVolumeActor(im, "var0")
	v.Field = "missing"
	r.AddVolume(v)
	r.ResetCamera()
	fb := r.RenderFB(20, 20)
	if countColored(fb, White) != 0 {
		t.Error("missing field should render nothing")
	}
}

func TestRenderInvisibleActorSkipped(t *testing.T) {
	r := triangleScene()
	r.Actors[0].Visible = false
	fb := r.RenderFB(50, 50)
	if countColored(fb, White) != 0 {
		t.Error("invisible actor rendered")
	}
}

func TestVisibleBoundsUnion(t *testing.T) {
	r := NewRenderer()
	pd := data.NewPolyData()
	pd.AddPoint(vmath.V(5, 5, 5))
	pd.AddVert(0)
	r.AddActor(NewActor(pd))
	im := datagen.MarschnerLobb(4)
	r.AddVolume(NewVolumeActor(im, "var0"))
	b := r.VisibleBounds()
	if !b.Contains(vmath.V(5, 5, 5)) || !b.Contains(vmath.V(-1, -1, -1)) {
		t.Errorf("bounds = %v..%v", b.Min, b.Max)
	}
}

func TestRayBox(t *testing.T) {
	b := vmath.AABB{Min: vmath.V(0, 0, 0), Max: vmath.V(1, 1, 1)}
	t0, t1, hit := rayBox(vmath.V(-1, 0.5, 0.5), vmath.V(1, 0, 0), b)
	if !hit || math.Abs(t0-1) > 1e-12 || math.Abs(t1-2) > 1e-12 {
		t.Errorf("rayBox = %v %v %v", t0, t1, hit)
	}
	if _, _, hit := rayBox(vmath.V(-1, 5, 0.5), vmath.V(1, 0, 0), b); hit {
		t.Error("miss reported as hit")
	}
	// Parallel ray inside the slab.
	_, _, hit = rayBox(vmath.V(0.5, 0.5, -3), vmath.V(0, 0, 1), b)
	if !hit {
		t.Error("axis-parallel ray should hit")
	}
}

func TestRepresentationNames(t *testing.T) {
	if RepSurface.String() != "Surface" || RepWireframe.String() != "Wireframe" ||
		RepPoints.String() != "Points" || RepSurfaceWithEdges.String() != "Surface With Edges" {
		t.Error("representation names wrong")
	}
	if ParseRepresentation("Wireframe") != RepWireframe ||
		ParseRepresentation("bogus") != RepSurface ||
		ParseRepresentation("Points") != RepPoints {
		t.Error("ParseRepresentation wrong")
	}
}

func TestSaveLoadPNG(t *testing.T) {
	r := triangleScene()
	img := r.Render(40, 30)
	dir := t.TempDir()
	path := dir + "/sub/shot.png"
	if err := SavePNG(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPNG(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bounds().Dx() != 40 || got.Bounds().Dy() != 30 {
		t.Errorf("size = %v", got.Bounds())
	}
	if _, err := LoadPNG(dir + "/missing.png"); err == nil {
		t.Error("missing file should error")
	}
}

func TestFramebufferPrimitives(t *testing.T) {
	fb := NewFramebuffer(20, 20, Black)
	fb.Line(vert{x: 0, y: 10, z: 0, c: White}, vert{x: 19, y: 10, z: 0, c: White}, 1)
	n := 0
	for x := 0; x < 20; x++ {
		if fb.At(x, 10) == White {
			n++
		}
	}
	if n < 19 {
		t.Errorf("line drew %d pixels", n)
	}
	fb.Point(vert{x: 5, y: 5, z: 0, c: Red}, 3)
	if fb.At(5, 5) != Red || fb.At(6, 6) != Red {
		t.Error("point not drawn")
	}
	// Out-of-bounds writes must not panic.
	fb.set(-1, -1, 0, White)
	fb.set(100, 100, 0, White)
	fb.blend(-5, 2, 0, White, 0.5)
}
