package render

import (
	"context"
	"image"
	"math"

	"chatvis/internal/data"
	"chatvis/internal/par"
	"chatvis/internal/vmath"
)

// Representation selects how geometry is drawn, mirroring ParaView's
// representation property.
type Representation int

// Geometry representations.
const (
	RepSurface Representation = iota
	RepWireframe
	RepPoints
	RepSurfaceWithEdges
)

// String returns the ParaView name of the representation.
func (r Representation) String() string {
	switch r {
	case RepSurface:
		return "Surface"
	case RepWireframe:
		return "Wireframe"
	case RepPoints:
		return "Points"
	case RepSurfaceWithEdges:
		return "Surface With Edges"
	}
	return "Unknown"
}

// ParseRepresentation maps a ParaView representation name to the enum; it
// falls back to Surface for unknown names (as the GUI does).
func ParseRepresentation(s string) Representation {
	switch s {
	case "Wireframe":
		return RepWireframe
	case "Points":
		return RepPoints
	case "Surface With Edges":
		return RepSurfaceWithEdges
	default:
		return RepSurface
	}
}

// Actor is one piece of renderable geometry with its display properties.
type Actor struct {
	Mesh    *data.PolyData
	Rep     Representation
	Visible bool
	// SolidColor is used when ColorField is empty.
	SolidColor Color
	// ColorField selects a point array for scalar coloring through LUT.
	ColorField string
	LUT        *LookupTable
	Opacity    float64
	LineWidth  float64
	PointSize  float64
	// EdgeColor is used by SurfaceWithEdges.
	EdgeColor Color
}

// NewActor returns an actor with ParaView-like display defaults.
func NewActor(mesh *data.PolyData) *Actor {
	return &Actor{
		Mesh:       mesh,
		Rep:        RepSurface,
		Visible:    true,
		SolidColor: DefaultSurface,
		Opacity:    1,
		LineWidth:  1,
		PointSize:  2,
		EdgeColor:  Black,
	}
}

// VolumeActor renders an ImageData scalar field by ray casting.
type VolumeActor struct {
	Image   *data.ImageData
	Field   string
	CTF     *LookupTable
	OTF     *OpacityFunction
	Visible bool
	// SampleDistance is the ray-march step as a fraction of the volume
	// diagonal (default 1/300).
	SampleDistance float64
}

// NewVolumeActor builds a volume actor with default transfer functions
// spanning the field's data range (what ParaView does when a volume
// representation is first shown).
func NewVolumeActor(im *data.ImageData, field string) *VolumeActor {
	lo, hi := data.FieldRange(im, field)
	return &VolumeActor{
		Image:   im,
		Field:   field,
		CTF:     NewCoolToWarm(lo, hi),
		OTF:     NewDefaultOpacity(lo, hi),
		Visible: true,
	}
}

// Renderer is a scene: actors, volumes, a camera and a background.
//
// RenderFB executes in two phases: a geometry phase that transforms,
// shades and clips every visible actor into an ordered list of raster
// commands (parallel over vertices and triangles, deterministic command
// order), and a rasterization phase that replays the command list over
// disjoint framebuffer row bands in parallel. Each pixel is owned by
// exactly one band and commands replay in emission order, so the frame
// is byte-identical for any worker count.
type Renderer struct {
	Camera     *Camera
	Background Color
	Actors     []*Actor
	Volumes    []*VolumeActor
}

// NewRenderer returns a renderer with the default camera and ParaView's
// default background.
func NewRenderer() *Renderer {
	return &Renderer{Camera: NewCamera(), Background: DefaultBackground}
}

// AddActor appends geometry to the scene and returns its actor.
func (r *Renderer) AddActor(a *Actor) *Actor {
	r.Actors = append(r.Actors, a)
	return a
}

// AddVolume appends a volume to the scene.
func (r *Renderer) AddVolume(v *VolumeActor) *VolumeActor {
	r.Volumes = append(r.Volumes, v)
	return v
}

// VisibleBounds returns the union of the bounds of all visible props.
// Degenerate (empty or non-finite) prop bounds are skipped so an actor
// holding no geometry can never poison the camera with NaNs.
func (r *Renderer) VisibleBounds() vmath.AABB {
	b := vmath.EmptyAABB()
	for _, a := range r.Actors {
		if a.Visible && a.Mesh != nil && a.Mesh.NumPoints() > 0 {
			if mb := a.Mesh.Bounds(); finiteAABB(mb) {
				b.Union(mb)
			}
		}
	}
	for _, v := range r.Volumes {
		if v.Visible && v.Image != nil && v.Image.NumPoints() > 0 {
			if vb := v.Image.Bounds(); finiteAABB(vb) {
				b.Union(vb)
			}
		}
	}
	return b
}

// finiteAABB reports whether every bound component is a finite number.
func finiteAABB(b vmath.AABB) bool {
	finite := func(v vmath.Vec3) bool {
		return !math.IsInf(v.X, 0) && !math.IsNaN(v.X) &&
			!math.IsInf(v.Y, 0) && !math.IsNaN(v.Y) &&
			!math.IsInf(v.Z, 0) && !math.IsNaN(v.Z)
	}
	return finite(b.Min) && finite(b.Max)
}

// ResetCamera fits the camera to the visible bounds, as ParaView's
// ResetCamera does. With no visible geometry (an empty scene) the camera
// is left untouched — it can never become NaN.
func (r *Renderer) ResetCamera() {
	b := r.VisibleBounds()
	if !b.IsEmpty() && finiteAABB(b) {
		r.Camera.ResetToBounds(b)
	}
}

// Render draws the scene into a w x h image.
func (r *Renderer) Render(w, h int) *image.RGBA {
	fb := r.RenderFB(w, h)
	return fb.Image()
}

// RenderFB draws the scene and returns the raw framebuffer (tests inspect
// depth and float colors through it).
func (r *Renderer) RenderFB(w, h int) *Framebuffer {
	fb, _ := r.RenderFBContext(context.Background(), w, h)
	return fb
}

// frameScratch is the arena-pooled geometry-phase scratch of one frame:
// camera-space positions and base colors (resized per actor), the
// accumulated raster command list, and the wireframe seen-edge table.
// Pooling it makes the steady-state geometry phase allocation-free.
type frameScratch struct {
	cam   []vmath.Vec3
	base  []Color
	cmds  []rasterCmd
	edges *data.PairTable
}

// Reset implements par.Resetter.
func (s *frameScratch) Reset() {
	s.cam = s.cam[:0]
	s.base = s.base[:0]
	s.cmds = s.cmds[:0]
	s.edges.Reset()
}

// camBuf returns the camera-space position buffer sized for n points.
func (s *frameScratch) camBuf(n int) []vmath.Vec3 {
	if cap(s.cam) < n {
		s.cam = make([]vmath.Vec3, n)
	}
	s.cam = s.cam[:n]
	return s.cam
}

// baseBuf returns the base color buffer sized for n points.
func (s *frameScratch) baseBuf(n int) []Color {
	if cap(s.base) < n {
		s.base = make([]Color, n)
	}
	s.base = s.base[:n]
	return s.base
}

var frameArena = par.NewArena(func() *frameScratch {
	return &frameScratch{edges: data.NewPairTable()}
})

// cmdChunk is the pooled per-chunk command buffer of the parallel
// triangle emission phase.
type cmdChunk struct{ cmds []rasterCmd }

// Reset implements par.Resetter.
func (c *cmdChunk) Reset() { c.cmds = c.cmds[:0] }

var cmdArena = par.NewArena(func() *cmdChunk { return &cmdChunk{} })

// RenderFBContext is RenderFB with cancellation: geometry and raster
// phases run on the par worker pool and abort early (returning the
// partial framebuffer and ctx's error) when the context is canceled.
func (r *Renderer) RenderFBContext(ctx context.Context, w, h int) (*Framebuffer, error) {
	if w <= 0 {
		w = 300
	}
	if h <= 0 {
		h = 300
	}
	fb := NewFramebuffer(w, h, r.Background)
	bounds := r.VisibleBounds()
	if bounds.IsEmpty() {
		return fb, nil
	}
	near, far := r.Camera.clippingRange(bounds)
	view := r.Camera.ViewMatrix()
	proj := r.Camera.ProjMatrix(float64(w)/float64(h), near, far)

	// Geometry phase: every visible actor is transformed, shaded and
	// near-clipped into raster commands, in actor order, accumulated in
	// the frame's pooled scratch.
	fs := frameArena.Get()
	defer frameArena.Put(fs)
	for _, a := range r.Actors {
		if a.Visible && a.Mesh != nil {
			if err := r.emitActor(ctx, fb, a, view, proj, near, fs); err != nil {
				return fb, err
			}
		}
	}
	cmds := fs.cmds

	// Raster phase: replay the command list over disjoint row bands.
	err := par.For(ctx, h, func(y0, y1 int) {
		for i := range cmds {
			c := &cmds[i]
			if c.yMax < y0 || c.yMin >= y1 {
				continue
			}
			c.exec(fb, y0, y1)
		}
	})
	if err != nil {
		return fb, err
	}

	// Volumes composite over (and depth-test against) the rasterized
	// geometry, so they run as a third phase.
	for _, v := range r.Volumes {
		if v.Visible && v.Image != nil {
			if err := r.castVolume(ctx, fb, v, view, proj, near, far); err != nil {
				return fb, err
			}
		}
	}
	return fb, nil
}

// cmdKind discriminates raster commands.
type cmdKind uint8

const (
	cmdTriangle cmdKind = iota
	cmdBlendTriangle
	cmdLine
	cmdPoint
)

// rasterCmd is one band-replayable draw: a projected primitive with its
// parameter (opacity, line width or point size) and the conservative
// inclusive row span it can touch.
type rasterCmd struct {
	kind       cmdKind
	v0, v1, v2 vert
	param      float64
	yMin, yMax int
}

// exec replays the command restricted to rows [y0, y1).
func (c *rasterCmd) exec(fb *Framebuffer, y0, y1 int) {
	switch c.kind {
	case cmdTriangle:
		fb.triangleBand(c.v0, c.v1, c.v2, y0, y1)
	case cmdBlendTriangle:
		fb.blendTriangleBand(c.v0, c.v1, c.v2, c.param, y0, y1)
	case cmdLine:
		fb.lineBand(c.v0, c.v1, c.param, y0, y1)
	case cmdPoint:
		fb.pointBand(c.v0, c.param, y0, y1)
	}
}

func triCmd(v0, v1, v2 vert, opacity float64) rasterCmd {
	kind := cmdTriangle
	if opacity < 1 {
		kind = cmdBlendTriangle
	}
	lo := int(math.Floor(min3(v0.y, v1.y, v2.y)))
	hi := int(math.Ceil(max3(v0.y, v1.y, v2.y)))
	return rasterCmd{kind: kind, v0: v0, v1: v1, v2: v2, param: opacity, yMin: lo, yMax: hi}
}

func lineCmd(v0, v1 vert, width float64) rasterCmd {
	r := int(width/2) + 1
	lo := int(math.Floor(math.Min(v0.y, v1.y))) - r
	hi := int(math.Ceil(math.Max(v0.y, v1.y))) + r
	return rasterCmd{kind: cmdLine, v0: v0, v1: v1, param: width, yMin: lo, yMax: hi}
}

func pointCmd(v vert, size float64) rasterCmd {
	r := int(size/2) + 1
	return rasterCmd{kind: cmdPoint, v0: v, param: size, yMin: int(v.y) - r, yMax: int(v.y) + r}
}

// pipeline holds per-actor projection state.
type pipeline struct {
	fb         *Framebuffer
	view, proj vmath.Mat4
	near       float64
	camPos     vmath.Vec3
	viewDir    vmath.Vec3
}

// project maps a camera-space point to a screen vertex; ok is false when
// the point is on or behind the near plane (caller must clip first for
// primitives that straddle it).
func (pl *pipeline) project(cam vmath.Vec3, c Color) (vert, bool) {
	if cam.Z > -pl.near {
		return vert{}, false
	}
	ndc, wclip := pl.proj.MulPointW(cam)
	if wclip == 0 {
		return vert{}, false
	}
	ndc = ndc.Mul(1 / wclip)
	return vert{
		x: (ndc.X + 1) / 2 * float64(pl.fb.W),
		y: (1 - ndc.Y) / 2 * float64(pl.fb.H),
		z: ndc.Z,
		c: c,
	}, true
}

// emitActor runs the geometry phase for one actor: camera-space
// transform and vertex shading parallel over points, triangle clipping
// parallel over polygon chunks, command list appended to fs.cmds in
// deterministic (mesh) order. All per-actor buffers come from fs.
func (r *Renderer) emitActor(ctx context.Context, fb *Framebuffer, a *Actor, view, proj vmath.Mat4, near float64, fs *frameScratch) error {
	mesh := a.Mesh
	n := mesh.NumPoints()
	if n == 0 {
		return nil
	}
	pl := &pipeline{
		fb: fb, view: view, proj: proj, near: near,
		camPos:  r.Camera.Position,
		viewDir: r.Camera.Direction(),
	}
	// Camera-space positions.
	cam := fs.camBuf(n)
	if err := par.For(ctx, n, func(start, end int) {
		for i := start; i < end; i++ {
			cam[i] = view.MulPoint(mesh.Pts[i])
		}
	}); err != nil {
		return err
	}
	// Base (unshaded) per-vertex colors.
	base := fs.baseBuf(n)
	var colorField *data.Field
	if a.ColorField != "" && a.LUT != nil {
		colorField = mesh.Points.Get(a.ColorField)
	}
	if err := par.For(ctx, n, func(start, end int) {
		for i := start; i < end; i++ {
			switch {
			case colorField == nil:
				base[i] = a.SolidColor
			case colorField.NumComponents == 1:
				base[i] = a.LUT.Map(colorField.Scalar(i))
			default:
				// Vector fields color by magnitude, ParaView's default.
				base[i] = a.LUT.Map(colorField.Vec3(i).Len())
			}
		}
	}); err != nil {
		return err
	}
	normals := mesh.Points.Get("Normals")

	shade := func(i int, flat vmath.Vec3) Color {
		var nrm vmath.Vec3
		if normals != nil {
			nrm = normals.Vec3(i)
		} else {
			nrm = flat
		}
		// Headlight diffuse: full intensity facing the camera.
		d := math.Abs(nrm.Norm().Dot(pl.viewDir))
		return base[i].Scale(0.25 + 0.75*d)
	}

	drawTriangles := a.Rep == RepSurface || a.Rep == RepSurfaceWithEdges
	drawEdges := a.Rep == RepWireframe || a.Rep == RepSurfaceWithEdges
	drawAsPoints := a.Rep == RepPoints

	if drawTriangles {
		// Chunks cover disjoint polygon ranges, fan-triangulated in
		// place (the emission order matches EachTriangle), each filling
		// an arena-pooled command buffer; the ordered conveyor
		// concatenates completed buffers into the frame command list in
		// chunk order while later chunks still emit.
		err := par.OrderedSweep(ctx, len(mesh.Polys), cmdArena, nil, func(cc *cmdChunk, start, end int) {
			out := cc.cmds
			for _, poly := range mesh.Polys[start:end] {
				for ti := 2; ti < len(poly); ti++ {
					ia, ib, ic := poly[0], poly[ti-1], poly[ti]
					flat := mesh.Pts[ib].Sub(mesh.Pts[ia]).Cross(mesh.Pts[ic].Sub(mesh.Pts[ia]))
					cs := [3]Color{shade(ia, flat), shade(ib, flat), shade(ic, flat)}
					out = clipTriangleCmds(pl, [3]vmath.Vec3{cam[ia], cam[ib], cam[ic]}, cs, a.Opacity, out)
				}
			}
			cc.cmds = out
		}, func(cc *cmdChunk) {
			fs.cmds = append(fs.cmds, cc.cmds...)
		})
		if err != nil {
			return err
		}
	}
	if drawEdges {
		edgeColor := func(i int, flat vmath.Vec3) Color {
			if a.Rep == RepSurfaceWithEdges {
				return a.EdgeColor
			}
			return shade(i, flat)
		}
		seen := fs.edges
		seen.Reset() // per-actor edge dedup
		for _, poly := range mesh.Polys {
			for i := range poly {
				p0, p1 := poly[i], poly[(i+1)%len(poly)]
				if _, added := seen.GetOrPut(data.PackPair(p0, p1), 0); !added {
					continue
				}
				flat := vmath.Vec3{}
				fs.cmds = clipLineCmds(pl, cam[p0], cam[p1],
					edgeColor(p0, flat), edgeColor(p1, flat), a.LineWidth, fs.cmds)
			}
		}
	}
	if drawAsPoints {
		for i := 0; i < n; i++ {
			if v, ok := pl.project(cam[i], base[i]); ok {
				fs.cmds = append(fs.cmds, pointCmd(v, a.PointSize))
			}
		}
	}
	// Polylines and vertex cells always draw in every representation
	// (they have no surface to show).
	for _, line := range mesh.Lines {
		for i := 0; i+1 < len(line); i++ {
			fs.cmds = clipLineCmds(pl, cam[line[i]], cam[line[i+1]],
				base[line[i]], base[line[i+1]], a.LineWidth, fs.cmds)
		}
	}
	for _, vc := range mesh.Verts {
		if len(vc) == 1 {
			if v, ok := pl.project(cam[vc[0]], base[vc[0]]); ok {
				fs.cmds = append(fs.cmds, pointCmd(v, a.PointSize))
			}
		}
	}
	return nil
}

// clipTriangleCmds clips a camera-space triangle against the near plane
// and appends the resulting raster commands.
func clipTriangleCmds(pl *pipeline, p [3]vmath.Vec3, c [3]Color, opacity float64, cmds []rasterCmd) []rasterCmd {
	if opacity <= 0 {
		return cmds
	}
	zlim := -pl.near
	inside := func(v vmath.Vec3) bool { return v.Z <= zlim }
	// Fast path: fully visible.
	if inside(p[0]) && inside(p[1]) && inside(p[2]) {
		v0, ok0 := pl.project(p[0], c[0])
		v1, ok1 := pl.project(p[1], c[1])
		v2, ok2 := pl.project(p[2], c[2])
		if ok0 && ok1 && ok2 {
			cmds = append(cmds, triCmd(v0, v1, v2, opacity))
		}
		return cmds
	}
	// Sutherland–Hodgman against the near plane. One plane cuts a
	// triangle into at most a quad, so fixed-size scratch suffices.
	type cv struct {
		p vmath.Vec3
		c Color
	}
	in := [3]cv{{p[0], c[0]}, {p[1], c[1]}, {p[2], c[2]}}
	var out [4]cv
	no := 0
	for i := range in {
		cur, nxt := in[i], in[(i+1)%len(in)]
		ci, ni := inside(cur.p), inside(nxt.p)
		lerp := func() cv {
			t := (zlim - cur.p.Z) / (nxt.p.Z - cur.p.Z)
			return cv{cur.p.Lerp(nxt.p, t), cur.c.Lerp(nxt.c, t)}
		}
		if ci {
			out[no] = cur
			no++
			if !ni {
				out[no] = lerp()
				no++
			}
		} else if ni {
			out[no] = lerp()
			no++
		}
	}
	if no < 3 {
		return cmds
	}
	var verts [4]vert
	for i := 0; i < no; i++ {
		v, ok := pl.project(out[i].p, out[i].c)
		if !ok {
			return cmds
		}
		verts[i] = v
	}
	for i := 2; i < no; i++ {
		cmds = append(cmds, triCmd(verts[0], verts[i-1], verts[i], opacity))
	}
	return cmds
}

// clipLineCmds clips a camera-space segment at the near plane and
// appends its raster command.
func clipLineCmds(pl *pipeline, p0, p1 vmath.Vec3, c0, c1 Color, width float64, cmds []rasterCmd) []rasterCmd {
	zlim := -pl.near
	i0, i1 := p0.Z <= zlim, p1.Z <= zlim
	if !i0 && !i1 {
		return cmds
	}
	if !i0 || !i1 {
		t := (zlim - p0.Z) / (p1.Z - p0.Z)
		cut := p0.Lerp(p1, t)
		cc := c0.Lerp(c1, t)
		if i0 {
			p1, c1 = cut, cc
		} else {
			p0, c0 = cut, cc
		}
	}
	v0, ok0 := pl.project(p0, c0)
	v1, ok1 := pl.project(p1, c1)
	if ok0 && ok1 {
		cmds = append(cmds, lineCmd(v0, v1, width))
	}
	return cmds
}
