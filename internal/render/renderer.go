package render

import (
	"image"
	"math"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

// Representation selects how geometry is drawn, mirroring ParaView's
// representation property.
type Representation int

// Geometry representations.
const (
	RepSurface Representation = iota
	RepWireframe
	RepPoints
	RepSurfaceWithEdges
)

// String returns the ParaView name of the representation.
func (r Representation) String() string {
	switch r {
	case RepSurface:
		return "Surface"
	case RepWireframe:
		return "Wireframe"
	case RepPoints:
		return "Points"
	case RepSurfaceWithEdges:
		return "Surface With Edges"
	}
	return "Unknown"
}

// ParseRepresentation maps a ParaView representation name to the enum; it
// falls back to Surface for unknown names (as the GUI does).
func ParseRepresentation(s string) Representation {
	switch s {
	case "Wireframe":
		return RepWireframe
	case "Points":
		return RepPoints
	case "Surface With Edges":
		return RepSurfaceWithEdges
	default:
		return RepSurface
	}
}

// Actor is one piece of renderable geometry with its display properties.
type Actor struct {
	Mesh    *data.PolyData
	Rep     Representation
	Visible bool
	// SolidColor is used when ColorField is empty.
	SolidColor Color
	// ColorField selects a point array for scalar coloring through LUT.
	ColorField string
	LUT        *LookupTable
	Opacity    float64
	LineWidth  float64
	PointSize  float64
	// EdgeColor is used by SurfaceWithEdges.
	EdgeColor Color
}

// NewActor returns an actor with ParaView-like display defaults.
func NewActor(mesh *data.PolyData) *Actor {
	return &Actor{
		Mesh:       mesh,
		Rep:        RepSurface,
		Visible:    true,
		SolidColor: DefaultSurface,
		Opacity:    1,
		LineWidth:  1,
		PointSize:  2,
		EdgeColor:  Black,
	}
}

// VolumeActor renders an ImageData scalar field by ray casting.
type VolumeActor struct {
	Image   *data.ImageData
	Field   string
	CTF     *LookupTable
	OTF     *OpacityFunction
	Visible bool
	// SampleDistance is the ray-march step as a fraction of the volume
	// diagonal (default 1/300).
	SampleDistance float64
}

// NewVolumeActor builds a volume actor with default transfer functions
// spanning the field's data range (what ParaView does when a volume
// representation is first shown).
func NewVolumeActor(im *data.ImageData, field string) *VolumeActor {
	lo, hi := data.FieldRange(im, field)
	return &VolumeActor{
		Image:   im,
		Field:   field,
		CTF:     NewCoolToWarm(lo, hi),
		OTF:     NewDefaultOpacity(lo, hi),
		Visible: true,
	}
}

// Renderer is a scene: actors, volumes, a camera and a background.
type Renderer struct {
	Camera     *Camera
	Background Color
	Actors     []*Actor
	Volumes    []*VolumeActor
}

// NewRenderer returns a renderer with the default camera and ParaView's
// default background.
func NewRenderer() *Renderer {
	return &Renderer{Camera: NewCamera(), Background: DefaultBackground}
}

// AddActor appends geometry to the scene and returns its actor.
func (r *Renderer) AddActor(a *Actor) *Actor {
	r.Actors = append(r.Actors, a)
	return a
}

// AddVolume appends a volume to the scene.
func (r *Renderer) AddVolume(v *VolumeActor) *VolumeActor {
	r.Volumes = append(r.Volumes, v)
	return v
}

// VisibleBounds returns the union of the bounds of all visible props.
func (r *Renderer) VisibleBounds() vmath.AABB {
	b := vmath.EmptyAABB()
	for _, a := range r.Actors {
		if a.Visible && a.Mesh != nil && a.Mesh.NumPoints() > 0 {
			b.Union(a.Mesh.Bounds())
		}
	}
	for _, v := range r.Volumes {
		if v.Visible && v.Image != nil {
			b.Union(v.Image.Bounds())
		}
	}
	return b
}

// ResetCamera fits the camera to the visible bounds, as ParaView's
// ResetCamera does.
func (r *Renderer) ResetCamera() {
	b := r.VisibleBounds()
	if !b.IsEmpty() {
		r.Camera.ResetToBounds(b)
	}
}

// Render draws the scene into a w x h image.
func (r *Renderer) Render(w, h int) *image.RGBA {
	fb := r.RenderFB(w, h)
	return fb.Image()
}

// RenderFB draws the scene and returns the raw framebuffer (tests inspect
// depth and float colors through it).
func (r *Renderer) RenderFB(w, h int) *Framebuffer {
	if w <= 0 {
		w = 300
	}
	if h <= 0 {
		h = 300
	}
	fb := NewFramebuffer(w, h, r.Background)
	bounds := r.VisibleBounds()
	if bounds.IsEmpty() {
		return fb
	}
	near, far := r.Camera.clippingRange(bounds)
	view := r.Camera.ViewMatrix()
	proj := r.Camera.ProjMatrix(float64(w)/float64(h), near, far)
	for _, a := range r.Actors {
		if a.Visible && a.Mesh != nil {
			r.drawActor(fb, a, view, proj, near)
		}
	}
	for _, v := range r.Volumes {
		if v.Visible && v.Image != nil {
			r.castVolume(fb, v, view, proj, near, far)
		}
	}
	return fb
}

// pipeline holds per-actor projection state.
type pipeline struct {
	fb         *Framebuffer
	view, proj vmath.Mat4
	near       float64
	camPos     vmath.Vec3
	viewDir    vmath.Vec3
}

// project maps a camera-space point to a screen vertex; ok is false when
// the point is on or behind the near plane (caller must clip first for
// primitives that straddle it).
func (pl *pipeline) project(cam vmath.Vec3, c Color) (vert, bool) {
	if cam.Z > -pl.near {
		return vert{}, false
	}
	ndc, wclip := pl.proj.MulPointW(cam)
	if wclip == 0 {
		return vert{}, false
	}
	ndc = ndc.Mul(1 / wclip)
	return vert{
		x: (ndc.X + 1) / 2 * float64(pl.fb.W),
		y: (1 - ndc.Y) / 2 * float64(pl.fb.H),
		z: ndc.Z,
		c: c,
	}, true
}

func (r *Renderer) drawActor(fb *Framebuffer, a *Actor, view, proj vmath.Mat4, near float64) {
	mesh := a.Mesh
	n := mesh.NumPoints()
	if n == 0 {
		return
	}
	pl := &pipeline{
		fb: fb, view: view, proj: proj, near: near,
		camPos:  r.Camera.Position,
		viewDir: r.Camera.Direction(),
	}
	// Camera-space positions.
	cam := make([]vmath.Vec3, n)
	for i := 0; i < n; i++ {
		cam[i] = view.MulPoint(mesh.Pts[i])
	}
	// Base (unshaded) per-vertex colors.
	base := make([]Color, n)
	if a.ColorField != "" && a.LUT != nil {
		f := mesh.Points.Get(a.ColorField)
		if f != nil {
			for i := 0; i < n; i++ {
				if f.NumComponents == 1 {
					base[i] = a.LUT.Map(f.Scalar(i))
				} else {
					// Vector fields color by magnitude, ParaView's default.
					base[i] = a.LUT.Map(f.Vec3(i).Len())
				}
			}
		} else {
			for i := range base {
				base[i] = a.SolidColor
			}
		}
	} else {
		for i := range base {
			base[i] = a.SolidColor
		}
	}
	normals := mesh.Points.Get("Normals")

	shade := func(i int, flat vmath.Vec3) Color {
		var nrm vmath.Vec3
		if normals != nil {
			nrm = normals.Vec3(i)
		} else {
			nrm = flat
		}
		// Headlight diffuse: full intensity facing the camera.
		d := math.Abs(nrm.Norm().Dot(pl.viewDir))
		return base[i].Scale(0.25 + 0.75*d)
	}

	drawTriangles := a.Rep == RepSurface || a.Rep == RepSurfaceWithEdges
	drawEdges := a.Rep == RepWireframe || a.Rep == RepSurfaceWithEdges
	drawAsPoints := a.Rep == RepPoints

	if drawTriangles {
		mesh.EachTriangle(func(ia, ib, ic int) {
			flat := mesh.Pts[ib].Sub(mesh.Pts[ia]).Cross(mesh.Pts[ic].Sub(mesh.Pts[ia]))
			tri := [3]int{ia, ib, ic}
			var cs [3]Color
			for k, idx := range tri {
				cs[k] = shade(idx, flat)
			}
			r.clipAndRasterTriangle(pl, [3]vmath.Vec3{cam[ia], cam[ib], cam[ic]}, cs, a.Opacity)
		})
	}
	if drawEdges {
		edgeColor := func(i int, flat vmath.Vec3) Color {
			if a.Rep == RepSurfaceWithEdges {
				return a.EdgeColor
			}
			return shade(i, flat)
		}
		seen := make(map[[2]int]bool)
		for _, poly := range mesh.Polys {
			for i := range poly {
				p0, p1 := poly[i], poly[(i+1)%len(poly)]
				key := [2]int{p0, p1}
				if p1 < p0 {
					key = [2]int{p1, p0}
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				flat := vmath.Vec3{}
				r.clipAndDrawLine(pl, cam[p0], cam[p1],
					edgeColor(p0, flat), edgeColor(p1, flat), a.LineWidth)
			}
		}
	}
	if drawAsPoints {
		for i := 0; i < n; i++ {
			if v, ok := pl.project(cam[i], base[i]); ok {
				fb.Point(v, a.PointSize)
			}
		}
	}
	// Polylines and vertex cells always draw in every representation
	// (they have no surface to show).
	for _, line := range mesh.Lines {
		for i := 0; i+1 < len(line); i++ {
			r.clipAndDrawLine(pl, cam[line[i]], cam[line[i+1]],
				base[line[i]], base[line[i+1]], a.LineWidth)
		}
	}
	for _, vc := range mesh.Verts {
		if len(vc) == 1 {
			if v, ok := pl.project(cam[vc[0]], base[vc[0]]); ok {
				fb.Point(v, a.PointSize)
			}
		}
	}
}

// clipAndRasterTriangle clips a camera-space triangle against the near
// plane and rasterizes the result.
func (r *Renderer) clipAndRasterTriangle(pl *pipeline, p [3]vmath.Vec3, c [3]Color, opacity float64) {
	zlim := -pl.near
	inside := func(v vmath.Vec3) bool { return v.Z <= zlim }
	// Fast path: fully visible.
	if inside(p[0]) && inside(p[1]) && inside(p[2]) {
		v0, ok0 := pl.project(p[0], c[0])
		v1, ok1 := pl.project(p[1], c[1])
		v2, ok2 := pl.project(p[2], c[2])
		if ok0 && ok1 && ok2 {
			rasterTri(pl.fb, v0, v1, v2, opacity)
		}
		return
	}
	// Sutherland–Hodgman against the near plane.
	type cv struct {
		p vmath.Vec3
		c Color
	}
	in := []cv{{p[0], c[0]}, {p[1], c[1]}, {p[2], c[2]}}
	var out []cv
	for i := range in {
		cur, nxt := in[i], in[(i+1)%len(in)]
		ci, ni := inside(cur.p), inside(nxt.p)
		lerp := func() cv {
			t := (zlim - cur.p.Z) / (nxt.p.Z - cur.p.Z)
			return cv{cur.p.Lerp(nxt.p, t), cur.c.Lerp(nxt.c, t)}
		}
		if ci {
			out = append(out, cur)
			if !ni {
				out = append(out, lerp())
			}
		} else if ni {
			out = append(out, lerp())
		}
	}
	if len(out) < 3 {
		return
	}
	verts := make([]vert, len(out))
	for i, o := range out {
		v, ok := pl.project(o.p, o.c)
		if !ok {
			return
		}
		verts[i] = v
	}
	for i := 2; i < len(verts); i++ {
		rasterTri(pl.fb, verts[0], verts[i-1], verts[i], opacity)
	}
}

func rasterTri(fb *Framebuffer, v0, v1, v2 vert, opacity float64) {
	if opacity >= 1 {
		fb.Triangle(v0, v1, v2)
		return
	}
	if opacity <= 0 {
		return
	}
	// Translucent: blend at full-coverage pixels without writing depth.
	blendTriangle(fb, v0, v1, v2, opacity)
}

// blendTriangle is the translucent variant of Framebuffer.Triangle.
func blendTriangle(fb *Framebuffer, v0, v1, v2 vert, alpha float64) {
	minX := int(math.Floor(min3(v0.x, v1.x, v2.x)))
	maxX := int(math.Ceil(max3(v0.x, v1.x, v2.x)))
	minY := int(math.Floor(min3(v0.y, v1.y, v2.y)))
	maxY := int(math.Ceil(max3(v0.y, v1.y, v2.y)))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX >= fb.W {
		maxX = fb.W - 1
	}
	if maxY >= fb.H {
		maxY = fb.H - 1
	}
	area := edge(v0, v1, v2.x, v2.y)
	if area == 0 {
		return
	}
	inv := 1 / area
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float64(x)+0.5, float64(y)+0.5
			w0 := edge(v1, v2, px, py) * inv
			w1 := edge(v2, v0, px, py) * inv
			w2 := edge(v0, v1, px, py) * inv
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			z := w0*v0.z + w1*v1.z + w2*v2.z
			c := Color{
				R: w0*v0.c.R + w1*v1.c.R + w2*v2.c.R,
				G: w0*v0.c.G + w1*v1.c.G + w2*v2.c.G,
				B: w0*v0.c.B + w1*v1.c.B + w2*v2.c.B,
			}
			fb.blend(x, y, z, c, alpha)
		}
	}
}

// clipAndDrawLine clips a camera-space segment at the near plane and draws
// it.
func (r *Renderer) clipAndDrawLine(pl *pipeline, p0, p1 vmath.Vec3, c0, c1 Color, width float64) {
	zlim := -pl.near
	i0, i1 := p0.Z <= zlim, p1.Z <= zlim
	if !i0 && !i1 {
		return
	}
	if !i0 || !i1 {
		t := (zlim - p0.Z) / (p1.Z - p0.Z)
		cut := p0.Lerp(p1, t)
		cc := c0.Lerp(c1, t)
		if i0 {
			p1, c1 = cut, cc
		} else {
			p0, c0 = cut, cc
		}
	}
	v0, ok0 := pl.project(p0, c0)
	v1, ok1 := pl.project(p1, c1)
	if ok0 && ok1 {
		pl.fb.Line(v0, v1, width)
	}
}
