package render

import (
	"image"
	"image/color"
	"math"
)

// Framebuffer is a color + depth target. Depth is in NDC units ([-1,1],
// smaller is closer); pixels start at +Inf so anything drawn wins.
//
// The *Band primitive variants restrict writes to the pixel rows
// [y0, y1): the tile-parallel rasterizer partitions the framebuffer
// into disjoint row bands and replays the frame's draw commands per
// band, so every pixel is written by exactly one goroutine in command
// order — the bytes are identical to a serial replay.
type Framebuffer struct {
	W, H  int
	Color []Color
	Depth []float64
}

// NewFramebuffer allocates a buffer cleared to the given background.
func NewFramebuffer(w, h int, bg Color) *Framebuffer {
	fb := &Framebuffer{
		W: w, H: h,
		Color: make([]Color, w*h),
		Depth: make([]float64, w*h),
	}
	for i := range fb.Color {
		fb.Color[i] = bg
		fb.Depth[i] = math.Inf(1)
	}
	return fb
}

// At returns the color at (x, y).
func (fb *Framebuffer) At(x, y int) Color { return fb.Color[y*fb.W+x] }

// set writes a depth-tested pixel.
func (fb *Framebuffer) set(x, y int, z float64, c Color) {
	if x < 0 || y < 0 || x >= fb.W || y >= fb.H {
		return
	}
	i := y*fb.W + x
	if z <= fb.Depth[i] {
		fb.Depth[i] = z
		fb.Color[i] = c
	}
}

// blend writes a depth-tested alpha-blended pixel without updating depth
// (used for translucent fragments).
func (fb *Framebuffer) blend(x, y int, z float64, c Color, alpha float64) {
	if x < 0 || y < 0 || x >= fb.W || y >= fb.H {
		return
	}
	i := y*fb.W + x
	if z <= fb.Depth[i] {
		fb.Color[i] = fb.Color[i].Lerp(c, alpha)
	}
}

// vert is a projected vertex ready for rasterization: screen x/y, NDC z,
// and a shaded color.
type vert struct {
	x, y, z float64
	c       Color
}

// Triangle rasterizes a filled triangle with Gouraud-interpolated color.
func (fb *Framebuffer) Triangle(v0, v1, v2 vert) {
	fb.triangleBand(v0, v1, v2, 0, fb.H)
}

// triangleBand rasterizes the triangle restricted to rows [y0, y1).
func (fb *Framebuffer) triangleBand(v0, v1, v2 vert, y0, y1 int) {
	minX := int(math.Floor(min3(v0.x, v1.x, v2.x)))
	maxX := int(math.Ceil(max3(v0.x, v1.x, v2.x)))
	minY := int(math.Floor(min3(v0.y, v1.y, v2.y)))
	maxY := int(math.Ceil(max3(v0.y, v1.y, v2.y)))
	if minX < 0 {
		minX = 0
	}
	if minY < y0 {
		minY = y0
	}
	if maxX >= fb.W {
		maxX = fb.W - 1
	}
	if maxY >= y1 {
		maxY = y1 - 1
	}
	area := edge(v0, v1, v2.x, v2.y)
	if area == 0 {
		return
	}
	inv := 1 / area
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float64(x)+0.5, float64(y)+0.5
			w0 := edge(v1, v2, px, py) * inv
			w1 := edge(v2, v0, px, py) * inv
			w2 := edge(v0, v1, px, py) * inv
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			z := w0*v0.z + w1*v1.z + w2*v2.z
			c := Color{
				R: w0*v0.c.R + w1*v1.c.R + w2*v2.c.R,
				G: w0*v0.c.G + w1*v1.c.G + w2*v2.c.G,
				B: w0*v0.c.B + w1*v1.c.B + w2*v2.c.B,
			}
			fb.set(x, y, z, c)
		}
	}
}

// blendTriangleBand is the translucent variant of triangleBand: blended
// color at full-coverage pixels without writing depth.
func (fb *Framebuffer) blendTriangleBand(v0, v1, v2 vert, alpha float64, y0, y1 int) {
	minX := int(math.Floor(min3(v0.x, v1.x, v2.x)))
	maxX := int(math.Ceil(max3(v0.x, v1.x, v2.x)))
	minY := int(math.Floor(min3(v0.y, v1.y, v2.y)))
	maxY := int(math.Ceil(max3(v0.y, v1.y, v2.y)))
	if minX < 0 {
		minX = 0
	}
	if minY < y0 {
		minY = y0
	}
	if maxX >= fb.W {
		maxX = fb.W - 1
	}
	if maxY >= y1 {
		maxY = y1 - 1
	}
	area := edge(v0, v1, v2.x, v2.y)
	if area == 0 {
		return
	}
	inv := 1 / area
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float64(x)+0.5, float64(y)+0.5
			w0 := edge(v1, v2, px, py) * inv
			w1 := edge(v2, v0, px, py) * inv
			w2 := edge(v0, v1, px, py) * inv
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			z := w0*v0.z + w1*v1.z + w2*v2.z
			c := Color{
				R: w0*v0.c.R + w1*v1.c.R + w2*v2.c.R,
				G: w0*v0.c.G + w1*v1.c.G + w2*v2.c.G,
				B: w0*v0.c.B + w1*v1.c.B + w2*v2.c.B,
			}
			fb.blend(x, y, z, c, alpha)
		}
	}
}

// edge evaluates the signed edge function of (a,b) at (px,py).
func edge(a, b vert, px, py float64) float64 {
	return (b.x-a.x)*(py-a.y) - (b.y-a.y)*(px-a.x)
}

// Line draws a depth-tested line of the given width (pixels) with color
// interpolation. A small depth bias pulls lines toward the viewer so
// wireframe edges win over their own surface.
func (fb *Framebuffer) Line(v0, v1 vert, width float64) {
	fb.lineBand(v0, v1, width, 0, fb.H)
}

// lineBand draws the line restricted to rows [y0, y1).
func (fb *Framebuffer) lineBand(v0, v1 vert, width float64, y0, y1 int) {
	const depthBias = 1e-4
	dx, dy := v1.x-v0.x, v1.y-v0.y
	steps := int(math.Max(math.Abs(dx), math.Abs(dy))) + 1
	r := int(width / 2)
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		x := v0.x + t*dx
		y := v0.y + t*dy
		z := v0.z + t*(v1.z-v0.z) - depthBias
		c := v0.c.Lerp(v1.c, t)
		if r <= 0 {
			if py := int(y); py >= y0 && py < y1 {
				fb.set(int(x), py, z, c)
			}
			continue
		}
		for oy := -r; oy <= r; oy++ {
			py := int(y) + oy
			if py < y0 || py >= y1 {
				continue
			}
			for ox := -r; ox <= r; ox++ {
				if ox*ox+oy*oy <= r*r {
					fb.set(int(x)+ox, py, z, c)
				}
			}
		}
	}
}

// Point draws a depth-tested square point of the given size (pixels).
func (fb *Framebuffer) Point(v vert, size float64) {
	fb.pointBand(v, size, 0, fb.H)
}

// pointBand draws the point restricted to rows [y0, y1).
func (fb *Framebuffer) pointBand(v vert, size float64, y0, y1 int) {
	r := int(size / 2)
	const depthBias = 1e-4
	for oy := -r; oy <= r; oy++ {
		py := int(v.y) + oy
		if py < y0 || py >= y1 {
			continue
		}
		for ox := -r; ox <= r; ox++ {
			fb.set(int(v.x)+ox, py, v.z-depthBias, v.c)
		}
	}
}

// Image converts the framebuffer to an 8-bit RGBA image.
func (fb *Framebuffer) Image() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, fb.W, fb.H))
	for y := 0; y < fb.H; y++ {
		for x := 0; x < fb.W; x++ {
			c := fb.Color[y*fb.W+x]
			img.SetRGBA(x, y, color.RGBA{
				R: to8(c.R), G: to8(c.G), B: to8(c.B), A: 255,
			})
		}
	}
	return img
}

func to8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

func min3(a, b, c float64) float64 { return math.Min(a, math.Min(b, c)) }
func max3(a, b, c float64) float64 { return math.Max(a, math.Max(b, c)) }
