// Package render is the software rendering engine: a z-buffered
// rasterizer for surfaces, wireframes, lines and points, a front-to-back
// volume ray caster, ParaView-style cameras and color transfer functions,
// and PNG output. It renders the dataset model into images the evaluation
// harness can diff against ground truth.
package render

import (
	"math"

	"chatvis/internal/vmath"
)

// Camera mirrors ParaView's render-view camera: a position, focal point,
// view-up vector and vertical view angle (degrees). The zero value is not
// useful; use NewCamera.
type Camera struct {
	Position   vmath.Vec3
	FocalPoint vmath.Vec3
	ViewUp     vmath.Vec3
	// ViewAngle is the vertical field of view in degrees (ParaView default
	// 30).
	ViewAngle float64
	// ParallelProjection switches to an orthographic projection with
	// half-height ParallelScale.
	ParallelProjection bool
	ParallelScale      float64
}

// NewCamera returns the ParaView default camera: at +z looking at the
// origin with +y up and a 30 degree view angle.
func NewCamera() *Camera {
	return &Camera{
		Position:   vmath.V(0, 0, 6.69),
		FocalPoint: vmath.V(0, 0, 0),
		ViewUp:     vmath.V(0, 1, 0),
		ViewAngle:  30,
	}
}

// ViewMatrix returns the world-to-camera transform.
func (c *Camera) ViewMatrix() vmath.Mat4 {
	return vmath.LookAt(c.Position, c.FocalPoint, c.ViewUp)
}

// ProjMatrix returns the camera-to-clip transform for the given aspect
// ratio and near/far distances.
func (c *Camera) ProjMatrix(aspect, near, far float64) vmath.Mat4 {
	if c.ParallelProjection {
		h := c.ParallelScale
		if h <= 0 {
			h = 1
		}
		w := h * aspect
		return vmath.Ortho(-w, w, -h, h, near, far)
	}
	return vmath.Perspective(vmath.Radians(c.ViewAngle), aspect, near, far)
}

// Distance returns the distance from the camera to its focal point.
func (c *Camera) Distance() float64 { return c.Position.Dist(c.FocalPoint) }

// Direction returns the unit view direction (position toward focal point).
func (c *Camera) Direction() vmath.Vec3 { return c.FocalPoint.Sub(c.Position).Norm() }

// ResetToBounds repositions the camera along its current view direction so
// the given bounds fit in view, reproducing ParaView's ResetCamera.
func (c *Camera) ResetToBounds(b vmath.AABB) {
	if b.IsEmpty() {
		return
	}
	center := b.Center()
	radius := b.Diagonal() / 2
	// Non-finite bounds (a half-empty box, or NaN geometry) would place
	// the camera at NaN; leave it where it is instead.
	if math.IsNaN(center.X) || math.IsNaN(center.Y) || math.IsNaN(center.Z) ||
		math.IsInf(radius, 0) || math.IsNaN(radius) {
		return
	}
	if radius == 0 {
		radius = 1
	}
	dir := c.Direction()
	if dir.Len() == 0 {
		dir = vmath.V(0, 0, -1)
	}
	// Fit the bounding sphere inside the vertical view angle with
	// ParaView's comfortable margin.
	dist := radius / math.Sin(vmath.Radians(c.ViewAngle)/2)
	c.FocalPoint = center
	c.Position = center.Sub(dir.Mul(dist))
	c.ParallelScale = radius
	// Fix a degenerate up vector (parallel to the view direction).
	if math.Abs(c.ViewUp.Norm().Dot(dir)) > 0.999 {
		c.ViewUp = vmath.V(0, 1, 0)
		if math.Abs(c.ViewUp.Dot(dir)) > 0.999 {
			c.ViewUp = vmath.V(0, 0, 1)
		}
	}
}

// LookFrom orients the camera to look at the bounds centre from the given
// direction (unit not required), then fits the bounds. up selects the view
// up; pass the zero vector for an automatic choice. This backs the
// ParaView "ResetActiveCameraToPositiveX/NegativeY/…" helpers.
func (c *Camera) LookFrom(dir vmath.Vec3, up vmath.Vec3, b vmath.AABB) {
	if b.IsEmpty() {
		// An empty scene has no centre to aim at; fall back to the unit
		// box so the orientation still applies without NaN positions.
		b = vmath.AABB{Min: vmath.V(-1, -1, -1), Max: vmath.V(1, 1, 1)}
	}
	d := dir.Norm()
	if d.Len() == 0 {
		d = vmath.V(0, 0, 1)
	}
	if up.Len() == 0 {
		up = vmath.V(0, 0, 1)
		if math.Abs(d.Dot(up)) > 0.999 {
			up = vmath.V(0, 1, 0)
		}
	}
	c.ViewUp = up.Norm()
	c.Position = b.Center().Add(d) // direction encoded; ResetToBounds sets distance
	c.FocalPoint = b.Center()
	c.ResetToBounds(b)
}

// Isometric points the camera along the (1,1,1) diagonal at the bounds,
// matching ParaView's "isometric view" toolbar action (+X+Y+Z octant, z up).
func (c *Camera) Isometric(b vmath.AABB) {
	c.LookFrom(vmath.V(1, 1, 1), vmath.V(0, 0, 1), b)
}

// Azimuth rotates the camera about the view-up axis through the focal
// point by the given angle in degrees.
func (c *Camera) Azimuth(deg float64) {
	rot := vmath.RotateAxis(c.ViewUp.Norm(), vmath.Radians(deg))
	rel := c.Position.Sub(c.FocalPoint)
	c.Position = c.FocalPoint.Add(rot.MulDir(rel))
}

// Elevation rotates the camera about the horizontal axis through the focal
// point by the given angle in degrees.
func (c *Camera) Elevation(deg float64) {
	right := c.Direction().Cross(c.ViewUp).Norm()
	rot := vmath.RotateAxis(right, vmath.Radians(deg))
	rel := c.Position.Sub(c.FocalPoint)
	c.Position = c.FocalPoint.Add(rot.MulDir(rel))
	c.ViewUp = rot.MulDir(c.ViewUp).Norm()
}

// Zoom moves the camera toward (factor > 1) or away from (factor < 1) the
// focal point.
func (c *Camera) Zoom(factor float64) {
	if factor <= 0 {
		return
	}
	rel := c.Position.Sub(c.FocalPoint)
	c.Position = c.FocalPoint.Add(rel.Mul(1 / factor))
	c.ParallelScale /= factor
}

// clippingRange computes near/far distances that enclose the bounds as
// seen from the camera, with guards against degenerate values.
func (c *Camera) clippingRange(b vmath.AABB) (near, far float64) {
	if b.IsEmpty() {
		return 0.1, 1000
	}
	dir := c.Direction()
	near, far = math.Inf(1), math.Inf(-1)
	for i := 0; i < 8; i++ {
		corner := vmath.V(
			pick(i&1 == 0, b.Min.X, b.Max.X),
			pick(i&2 == 0, b.Min.Y, b.Max.Y),
			pick(i&4 == 0, b.Min.Z, b.Max.Z))
		d := corner.Sub(c.Position).Dot(dir)
		near = math.Min(near, d)
		far = math.Max(far, d)
	}
	pad := (far - near) * 0.05
	near -= pad
	far += pad
	minNear := far * 1e-4
	if near < minNear {
		near = minNear
	}
	if far <= near {
		far = near * 10
	}
	return near, far
}

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}
