package llm

import (
	"context"
	"time"
)

// Usage accounts for the size of one completion exchange. The simulated
// models report character counts directly and estimate tokens from them;
// a network-backed Client would fill the token fields from the provider's
// usage block.
type Usage struct {
	// PromptChars / CompletionChars are raw text sizes.
	PromptChars     int
	CompletionChars int
	// PromptTokens / CompletionTokens are token counts (estimated for
	// simulated models).
	PromptTokens     int
	CompletionTokens int
}

// Add returns the element-wise sum of two usages.
func (u Usage) Add(v Usage) Usage {
	return Usage{
		PromptChars:      u.PromptChars + v.PromptChars,
		CompletionChars:  u.CompletionChars + v.CompletionChars,
		PromptTokens:     u.PromptTokens + v.PromptTokens,
		CompletionTokens: u.CompletionTokens + v.CompletionTokens,
	}
}

// TotalTokens is the prompt + completion token count.
func (u Usage) TotalTokens() int { return u.PromptTokens + u.CompletionTokens }

// EstimateTokens approximates a token count from text length (~4 chars
// per token, the usual English-code average). Non-empty text is at least
// one token.
func EstimateTokens(s string) int {
	if len(s) == 0 {
		return 0
	}
	n := (len(s) + 3) / 4
	if n < 1 {
		n = 1
	}
	return n
}

// Response is one completed LLM call with its observability metadata.
type Response struct {
	// Text is the model's completion.
	Text string
	// Model is the name of the client that produced the text.
	Model string
	// Usage sizes the exchange.
	Usage Usage
	// Latency is the wall-clock duration of the call (as observed by the
	// caller-facing layer; cache hits report the lookup cost, not the
	// original call's).
	Latency time.Duration
	// CacheHit marks responses served by WithCache without reaching the
	// underlying model.
	CacheHit bool
	// Attempts counts how many tries the call took (1 without retries;
	// WithRetry increments it on each failure).
	Attempts int
}

// NewResponse fills the bookkeeping fields of a completed call: usage
// sizes, latency since start, and a first-attempt count.
func NewResponse(model string, req Request, text string, start time.Time) Response {
	prompt := req.System + req.User
	return Response{
		Text:  text,
		Model: model,
		Usage: Usage{
			PromptChars:      len(prompt),
			CompletionChars:  len(text),
			PromptTokens:     EstimateTokens(prompt),
			CompletionTokens: EstimateTokens(text),
		},
		Latency:  time.Since(start),
		Attempts: 1,
	}
}

// Middleware wraps a Client with cross-cutting behaviour (caching,
// retries, metrics, rate limiting). Middlewares compose: the first one
// passed to Chain becomes the outermost layer.
type Middleware func(Client) Client

// Chain applies middlewares around base so that mws[0] sees the request
// first: Chain(c, m1, m2) == m1(m2(c)).
func Chain(base Client, mws ...Middleware) Client {
	c := base
	for i := len(mws) - 1; i >= 0; i-- {
		c = mws[i](c)
	}
	return c
}

// ClientFunc adapts a function to the Client interface, for tests and
// one-off backends.
type ClientFunc struct {
	// ModelName is returned by Name().
	ModelName string
	// Fn handles Complete.
	Fn func(ctx context.Context, req Request) (Response, error)
}

// Name implements Client.
func (c *ClientFunc) Name() string { return c.ModelName }

// Complete implements Client.
func (c *ClientFunc) Complete(ctx context.Context, req Request) (Response, error) {
	return c.Fn(ctx, req)
}
