package llm

import (
	"fmt"
	"regexp"
	"strings"

	"chatvis/internal/errext"
	"chatvis/internal/pypy"
)

// attrErrRe parses our engine's AttributeError messages:
// 'Class' object has no attribute 'Name'.
var attrErrRe = regexp.MustCompile(`'([\w ]+)' object has no attribute '(\w+)'`)

// attrFixes maps (class, attribute) to the correct replacement attribute
// or method name — the "knowledge" a competent model applies when shown
// an error message.
var attrFixes = map[[2]string]string{
	{"Clip", "InsideOut"}:                           "Invert",
	{"RenderView", "ViewUp"}:                        "CameraViewUp",
	{"Tube", "NumberOfSides"}:                       "NumberofSides",
	{"GeometryRepresentation", "SetRepresentation"}: "SetRepresentationType",
	{"RenderView", "ResetActiveCameraToIsometric"}:  "ApplyIsometricView",
	{"RenderView", "SetIsometricView"}:              "ApplyIsometricView",
	{"Glyph", "ScaleMode"}:                          "GlyphMode",
}

// attrDeletes lists invented attributes whose assignments a competent
// model simply removes (no equivalent exists on the proxy).
var attrDeletes = map[[2]string]bool{
	{"Glyph", "Scalars"}: true,
	{"Glyph", "Vectors"}: true,
}

// Repair revises a script given extracted error reports, at the given
// skill level: 0 returns the script unchanged, 1 deletes offending lines,
// 2 applies the correct targeted fixes (falling back to deletion).
func Repair(script string, reports []errext.ErrorReport, skill int) string {
	if skill <= 0 || len(reports) == 0 {
		return script
	}
	lines := strings.Split(script, "\n")
	for _, r := range reports {
		switch r.Kind {
		case "AttributeError":
			lines = repairAttribute(lines, r, skill)
		case "SyntaxError":
			lines = repairSyntax(lines, r, skill)
		case "TypeError":
			lines = repairType(lines, r, skill)
		case "NameError":
			lines = repairName(lines, r, skill)
		default:
			// Unknown failure: drop the offending *statement* if located.
			// The report line may be the continuation of a multi-line
			// call; deleting just that line would leave dangling syntax.
			if r.Line >= 1 && r.Line <= len(lines) && skill >= 1 {
				lines = deleteStatementAt(lines, r.Line)
			}
		}
	}
	return strings.Join(lines, "\n")
}

func deleteLine(lines []string, n int) []string {
	if n < 1 || n > len(lines) {
		return lines
	}
	out := append([]string{}, lines[:n-1]...)
	return append(out, lines[n:]...)
}

// statementSpanOf maps a 1-based line to the [start, end] line range of
// the statement containing it, via the Python AST when the script
// parses, and a bracket-depth scan otherwise.
func statementSpanOf(lines []string, n int) (int, int) {
	if n < 1 || n > len(lines) {
		return n, n
	}
	if mod, err := pypy.Parse("script.py", strings.Join(lines, "\n")); err == nil {
		if s, e, ok := pypy.StatementSpan(mod, n); ok {
			return s, e
		}
	}
	// Fallback for unparsable scripts: depth[i] = open brackets after
	// line i+1; a line is a continuation when the depth before it is
	// positive.
	depth := make([]int, len(lines)+1)
	for i, l := range lines {
		depth[i+1] = depth[i] + bracketDepth(l)
	}
	start, end := n, n
	for start > 1 && depth[start-1] > 0 {
		start--
	}
	for end < len(lines) && depth[end] > 0 {
		end++
	}
	return start, end
}

// deleteStatementAt removes the complete statement containing line n.
func deleteStatementAt(lines []string, n int) []string {
	if n < 1 || n > len(lines) {
		return lines
	}
	start, end := statementSpanOf(lines, n)
	out := append([]string{}, lines[:start-1]...)
	return append(out, lines[end:]...)
}

// deleteStatementsContaining removes every statement that has the needle
// on any of its lines.
func deleteStatementsContaining(lines []string, needle string) []string {
	drop := make([]bool, len(lines)+1)
	found := false
	for i, l := range lines {
		if strings.Contains(l, needle) {
			start, end := statementSpanOf(lines, i+1)
			for j := start; j <= end; j++ {
				drop[j] = true
			}
			found = true
		}
	}
	if !found {
		return lines
	}
	out := lines[:0:0]
	for i, l := range lines {
		if !drop[i+1] {
			out = append(out, l)
		}
	}
	return out
}

// renameAttr rewrites ".old" attribute references to ".new" everywhere.
func renameAttr(lines []string, old, fix string) []string {
	for i, l := range lines {
		if strings.Contains(l, "."+old) {
			lines[i] = strings.ReplaceAll(l, "."+old, "."+fix)
		}
	}
	return lines
}

// rewriteThresholdRange translates the deprecated pre-5.10 range
// property into the modern Lower/UpperThreshold pair.
func rewriteThresholdRange(lines []string) []string {
	re := regexp.MustCompile(`^(\s*)(\w+)\.ThresholdRange\s*=\s*\[([^,\]]+),\s*([^\]]+)\]`)
	var out []string
	for _, l := range lines {
		if mm := re.FindStringSubmatch(l); mm != nil {
			out = append(out,
				fmt.Sprintf("%s%s.LowerThreshold = %s", mm[1], mm[2], strings.TrimSpace(mm[3])),
				fmt.Sprintf("%s%s.UpperThreshold = %s", mm[1], mm[2], strings.TrimSpace(mm[4])))
			continue
		}
		out = append(out, l)
	}
	return out
}

// createNamedView fixes Show(..., 'RenderView1')-style references: a
// view is created first and the name string replaced by the variable.
func createNamedView(lines []string) []string {
	var out []string
	created := false
	for _, l := range lines {
		if strings.Contains(l, "'RenderView1'") && strings.Contains(l, "Show(") {
			if !created {
				out = append(out, "renderView1 = GetActiveViewOrCreate('RenderView')")
				created = true
			}
			l = strings.ReplaceAll(l, "'RenderView1'", "renderView1")
		}
		out = append(out, l)
	}
	return out
}

func repairAttribute(lines []string, r errext.ErrorReport, skill int) []string {
	m := attrErrRe.FindStringSubmatch(r.Message)
	if m == nil {
		if r.Line >= 1 {
			return deleteStatementAt(lines, r.Line)
		}
		return lines
	}
	class, attr := m[1], m[2]
	key := [2]string{class, attr}
	if skill >= 2 {
		if class == "Threshold" && attr == "ThresholdRange" {
			// The pre-5.10 range property split into two scalars; rewrite
			// `x.ThresholdRange = [lo, hi]` into the modern pair.
			return rewriteThresholdRange(lines)
		}
		if fix, ok := attrFixes[key]; ok {
			// Rename the attribute wherever it appears.
			return renameAttr(lines, attr, fix)
		}
		if attrDeletes[key] {
			return deleteStatementsContaining(lines, "."+attr)
		}
		if attr == "UseSeparateColorMap" {
			// ColorBy was called on a pipeline proxy instead of its
			// representation: retarget to the Show() result.
			return retargetColorBy(lines)
		}
	}
	// Skill 1 (or unknown attribute at skill 2): delete the offending
	// assignment(s), whole statements at a time.
	return deleteStatementsContaining(lines, "."+attr)
}

var colorByCallRe = regexp.MustCompile(`ColorBy\((\w+)\s*,`)
var showAssignRe = regexp.MustCompile(`(\w+)\s*=\s*Show\((\w+)`)

// retargetColorBy rewrites ColorBy(filter, ...) to ColorBy(display, ...)
// using the display variable assigned from Show(filter, ...).
func retargetColorBy(lines []string) []string {
	displayOf := map[string]string{}
	for _, l := range lines {
		if m := showAssignRe.FindStringSubmatch(l); m != nil {
			displayOf[m[2]] = m[1]
		}
	}
	for i, l := range lines {
		m := colorByCallRe.FindStringSubmatch(l)
		if m == nil {
			continue
		}
		arg := m[1]
		if strings.Contains(arg, "Display") {
			continue
		}
		if disp, ok := displayOf[arg]; ok {
			lines[i] = strings.Replace(l, "ColorBy("+arg, "ColorBy("+disp, 1)
		}
	}
	return lines
}

func repairSyntax(lines []string, r errext.ErrorReport, skill int) []string {
	// Markdown fences are the most common weak-model artifact.
	var out []string
	stripped := false
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "```") {
			stripped = true
			continue
		}
		out = append(out, l)
	}
	if stripped {
		return out
	}
	lines = out
	switch {
	case strings.Contains(r.Message, "was never closed"):
		// CPython reports the opening line; rebalance it, or — if the
		// report is off — the nearest unbalanced line above.
		fixed := false
		if r.Line >= 1 && r.Line <= len(lines) {
			if bracketDepth(lines[r.Line-1]) > 0 {
				lines[r.Line-1] = rebalance(lines[r.Line-1])
				fixed = true
			}
		}
		if !fixed {
			start := len(lines)
			if r.Line >= 1 && r.Line <= len(lines) {
				start = r.Line
			}
			for i := start - 1; i >= 0; i-- {
				if bracketDepth(lines[i]) > 0 {
					lines[i] = rebalance(lines[i])
					break
				}
			}
		}
	case strings.Contains(r.Message, "unterminated string"):
		if r.Line >= 1 && r.Line <= len(lines) {
			lines[r.Line-1] = closeString(lines[r.Line-1])
		}
	default:
		if r.Line >= 1 && r.Line <= len(lines) && skill >= 1 {
			// Unexpected indent or similar: normalize leading whitespace.
			trimmed := strings.TrimLeft(lines[r.Line-1], " \t")
			if trimmed != lines[r.Line-1] {
				lines[r.Line-1] = trimmed
			} else {
				lines = deleteLine(lines, r.Line)
			}
		}
	}
	return lines
}

// bracketDepth counts unclosed round/square brackets on a line.
func bracketDepth(line string) int {
	depth := 0
	for _, c := range line {
		switch c {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		}
	}
	return depth
}

// rebalance appends missing closing brackets to a line.
func rebalance(line string) string {
	for depth := bracketDepth(line); depth > 0; depth-- {
		line += ")"
	}
	return line
}

// closeString restores a missing quote by re-quoting the first
// unterminated literal segment.
func closeString(line string) string {
	count := strings.Count(line, "'")
	if count%2 == 1 {
		// Re-insert the quote before the first comma after the opening
		// quote, or at end of line.
		i := strings.Index(line, "'")
		j := strings.Index(line[i+1:], ",")
		if j >= 0 {
			pos := i + 1 + j
			return line[:pos] + "'" + line[pos:]
		}
		return line + "'"
	}
	return line
}

func repairType(lines []string, r errext.ErrorReport, skill int) []string {
	if strings.Contains(r.Message, "render view proxy") ||
		strings.Contains(r.Message, "view proxy") {
		// A view was referenced by name string before creation: create a
		// view first and pass the variable.
		return createNamedView(lines)
	}
	if r.Line >= 1 && skill >= 1 {
		return deleteStatementAt(lines, r.Line)
	}
	return lines
}

func repairName(lines []string, r errext.ErrorReport, skill int) []string {
	// name 'renderView1' is not defined -> insert a view creation before
	// first use; other undefined names: delete the line.
	m := regexp.MustCompile(`name '(\w+)' is not defined`).FindStringSubmatch(r.Message)
	if m == nil {
		return lines
	}
	name := m[1]
	if strings.HasPrefix(strings.ToLower(name), "renderview") && skill >= 2 {
		decl := fmt.Sprintf("%s = GetActiveViewOrCreate('RenderView')", name)
		for i, l := range lines {
			if strings.Contains(l, name) {
				out := append([]string{}, lines[:i]...)
				out = append(out, decl)
				return append(out, lines[i:]...)
			}
		}
	}
	if r.Line >= 1 && skill >= 1 {
		return deleteStatementAt(lines, r.Line)
	}
	return lines
}
