package llm

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestRequestKeyDistinctInputs proves the cache key separates every
// dimension a completion can vary on: model, system prompt, user prompt
// — including the option and resolution text embedded in the prompts
// the assistant builds.
func TestRequestKeyDistinctInputs(t *testing.T) {
	type in struct {
		name  string
		model string
		req   Request
	}
	cases := []in{
		{"base", "gpt-4", Request{System: "sys", User: "user"}},
		{"other model", "gpt-3.5-turbo", Request{System: "sys", User: "user"}},
		{"oracle model", "oracle", Request{System: "sys", User: "user"}},
		{"system differs", "gpt-4", Request{System: "sys2", User: "user"}},
		{"user differs", "gpt-4", Request{System: "sys", User: "user2"}},
		{"resolution 480", "gpt-4", Request{System: "generate", User: "iso at 480 x 270 pixels"}},
		{"resolution 1920", "gpt-4", Request{System: "generate", User: "iso at 1920 x 1080 pixels"}},
		{"few-shot on", "gpt-4", Request{System: "generate\n\nExample code snippets:\nContour(", User: "iso"}},
		{"few-shot off", "gpt-4", Request{System: "generate", User: "iso"}},
		{"empty system", "gpt-4", Request{User: "user"}},
		{"empty user", "gpt-4", Request{System: "sys"}},
		{"empty both", "gpt-4", Request{}},
	}
	seen := map[uint64]string{}
	for _, c := range cases {
		k := requestKey(c.model, c.req)
		if prev, dup := seen[k]; dup {
			t.Errorf("%q collides with %q (key %d)", c.name, prev, k)
		}
		seen[k] = c.name
	}
}

// TestRequestKeyFieldBoundaries proves the separator framing: shifting
// bytes between adjacent fields must never produce the same key, even
// though the plain concatenation is identical.
func TestRequestKeyFieldBoundaries(t *testing.T) {
	pairs := [][2]struct {
		model string
		req   Request
	}{
		// model / system boundary
		{{"ab", Request{System: "c", User: "u"}}, {"a", Request{System: "bc", User: "u"}}},
		// system / user boundary
		{{"m", Request{System: "ab", User: "c"}}, {"m", Request{System: "a", User: "bc"}}},
		// whole-field migration
		{{"m", Request{System: "xy", User: ""}}, {"m", Request{System: "", User: "xy"}}},
		{{"mxy", Request{}}, {"m", Request{System: "xy"}}},
	}
	for i, p := range pairs {
		a := requestKey(p[0].model, p[0].req)
		b := requestKey(p[1].model, p[1].req)
		if a == b {
			t.Errorf("pair %d: boundary shift collides (%+v vs %+v)", i, p[0], p[1])
		}
	}
}

// TestRequestKeySweepNoCollisions hashes a broad grid of
// (model, options, resolution) combinations — every pair distinct.
func TestRequestKeySweepNoCollisions(t *testing.T) {
	models := []string{"gpt-4", "gpt-3.5-turbo", "llama3-8b", "codellama-7b", "codegemma", "oracle"}
	resolutions := []string{"480 x 270", "640 x 360", "1920 x 1080"}
	options := []string{"", "\nfew-shot", "\napi-reference"}
	seen := map[uint64]string{}
	for _, m := range models {
		for _, res := range resolutions {
			for _, opt := range options {
				req := Request{
					System: "Generate a ParaView script." + opt,
					User:   "isosurface of var0, screenshot at " + res + " pixels",
				}
				id := fmt.Sprintf("%s/%s/%q", m, res, opt)
				k := requestKey(m, req)
				if prev, dup := seen[k]; dup {
					t.Fatalf("%s collides with %s", id, prev)
				}
				seen[k] = id
			}
		}
	}
	if len(seen) != len(models)*len(resolutions)*len(options) {
		t.Fatalf("sweep lost keys: %d", len(seen))
	}
}

// TestWithCacheKeysIsolateModels drives the middleware itself: the same
// request through caches over two different models must not share
// entries, while the same model+request must.
func TestWithCacheKeysIsolateModels(t *testing.T) {
	calls := map[string]int{}
	var mu sync.Mutex
	mk := func(name string) Client {
		return WithCache()(&ClientFunc{
			ModelName: name,
			Fn: func(ctx context.Context, req Request) (Response, error) {
				mu.Lock()
				calls[name]++
				mu.Unlock()
				return Response{Text: name + ":" + req.User, Model: name}, nil
			},
		})
	}
	a, b := mk("model-a"), mk("model-b")
	req := Request{System: "s", User: "u"}
	for i := 0; i < 3; i++ {
		ra, err := a.Complete(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Text != "model-a:u" {
			t.Fatalf("cache leaked across models: %q", ra.Text)
		}
		rb, err := b.Complete(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Text != "model-b:u" {
			t.Fatalf("cache leaked across models: %q", rb.Text)
		}
	}
	if calls["model-a"] != 1 || calls["model-b"] != 1 {
		t.Errorf("each model should be called exactly once: %v", calls)
	}
}
