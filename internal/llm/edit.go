package llm

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"chatvis/internal/plan"
)

// The conversational side of the language-model layer: the edit-intent
// grammar (what a follow-up utterance means as a change to an existing
// pipeline) and the PlanDelta path — a model proposes a full target plan
// from (current plan JSON + utterance), which the session validates and
// executes incrementally.

// EditKind enumerates the pipeline-edit operations the grammar admits.
type EditKind int

// Edit kinds.
const (
	// EditAddOrSet adds a pipeline stage for the op, or updates the
	// matching stage's parameters when one already exists.
	EditAddOrSet EditKind = iota
	// EditRemove deletes the stage of the named class, rewiring its
	// dependents to its input.
	EditRemove
	// EditRetarget reconnects one stage onto another ("put the glyphs on
	// the slice").
	EditRetarget
	// EditColorBy recolors every display by a data array.
	EditColorBy
	// EditSolidColor paints the main display a named solid color.
	EditSolidColor
	// EditCamera reorients the view.
	EditCamera
	// EditScreenshot renames the screenshot output file.
	EditScreenshot
	// EditRepresentation switches the main display's representation type
	// ("Wireframe", "Surface").
	EditRepresentation
	// EditResolution resizes the view and screenshot.
	EditResolution
)

func (k EditKind) String() string {
	switch k {
	case EditAddOrSet:
		return "add-or-set"
	case EditRemove:
		return "remove"
	case EditRetarget:
		return "retarget"
	case EditColorBy:
		return "color-by"
	case EditSolidColor:
		return "solid-color"
	case EditCamera:
		return "camera"
	case EditScreenshot:
		return "screenshot"
	case EditRepresentation:
		return "representation"
	case EditResolution:
		return "resolution"
	}
	return "unknown"
}

// PlanEdit is one parsed edit operation.
type PlanEdit struct {
	Kind EditKind `json:"kind"`
	// Op carries the operation parameters for add-or-set edits.
	Op Op `json:"op,omitempty"`
	// Class is the stage class an add/remove/retarget edit targets.
	Class string `json:"class,omitempty"`
	// Parent, when set, names the class the utterance says the new stage
	// consumes ("slice the clipped data" → Parent "Clip").
	Parent string `json:"parent,omitempty"`
	// Target is the new upstream class of a retarget edit.
	Target string `json:"target,omitempty"`
	// Array is the color array of a color-by edit.
	Array string `json:"array,omitempty"`
	// View is the camera direction of a camera edit.
	View string `json:"view,omitempty"`
	// Str is the filename / representation / color payload.
	Str string `json:"str,omitempty"`
	// PlaneOnly marks a "move the plane" edit: only the plane helper of
	// the stage changes; other parameters (e.g. Clip's Invert) keep
	// their current values.
	PlaneOnly bool `json:"plane_only,omitempty"`
	// Width, Height are the resolution-edit payload.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
}

// EditIntent is the structured reading of a follow-up utterance: an
// ordered list of edits against the session's current plan.
type EditIntent struct {
	Edits []PlanEdit `json:"edits"`
}

// Empty reports whether the utterance parsed to no recognizable edit.
func (e EditIntent) Empty() bool { return len(e.Edits) == 0 }

// Key returns a canonical content encoding of the intent, used by
// chatvisd's turn coalescing (two rewordings of the same edit share it).
func (e EditIntent) Key() string {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Sprintf("%+v", e)
	}
	return string(b)
}

// editClassWords maps utterance nouns to the stage classes they name.
var editClassWords = map[string]string{
	"glyph": "Glyph", "glyphs": "Glyph",
	"clip":  "Clip",
	"slice": "Slice",
	"tube":  "Tube", "tubes": "Tube",
	"contour": "Contour", "contours": "Contour",
	"isosurface": "Contour", "isosurfaces": "Contour",
	"threshold":  "Threshold",
	"streamline": "StreamTracer", "streamlines": "StreamTracer",
	"delaunay": "Delaunay3D", "triangulation": "Delaunay3D",
	"volume": "", // "the volume" names the source, not a filter
}

// classForOpKind maps operation kinds to the proxy class they build.
func classForOpKind(k OpKind) string {
	switch k {
	case OpIsosurface, OpContourLines:
		return "Contour"
	case OpSlice:
		return "Slice"
	case OpClip:
		return "Clip"
	case OpThreshold:
		return "Threshold"
	case OpDelaunay:
		return "Delaunay3D"
	case OpStreamlines:
		return "StreamTracer"
	case OpTube:
		return "Tube"
	case OpGlyph:
		return "Glyph"
	}
	return ""
}

var (
	classWordPat = `(glyphs?|clips?|slices?|tubes?|contours?|isosurfaces?|thresholds?|streamlines?|delaunay|triangulation)`
	removeRe     = regexp.MustCompile(`(?i)(?:remove|drop|delete|discard)\s+(?:the\s+)?(?:[\w-]+\s+){0,2}?` + classWordPat)
	retargetRe   = regexp.MustCompile(`(?i)(?:put|move|attach)\s+(?:the\s+)?(?:[\w-]+\s+){0,2}?` + classWordPat + `\s+(?:onto|on|to)\s+(?:the\s+)?(?:[\w-]+\s+){0,2}?` + classWordPat)
	// pastRefRe marks "the Xed data" back-references: the named class is
	// the parent of a new stage, not a command to build one.
	pastRefRe    = regexp.MustCompile(`(?i)\b(clipped|sliced|thresholded|contoured)\b`)
	isoEditRe    = regexp.MustCompile(`(?i)(?:raise|lower|change|set|move)\s+the\s+(?:isovalues?|isosurfaces?)\s+to\s+(?:the\s+)?(?:values?\s+)?(` + numPat + `(?:(?:\s*,\s*|\s+and\s+)` + numPat + `)*)`)
	planeEditRe  = regexp.MustCompile(`(?i)move\s+the\s+(slice|clip)\s+(?:plane\s+)?to\s+([xyz])\s*=\s*` + numPat)
	threshEditRe = regexp.MustCompile(`(?i)(?:change|set)\s+the\s+threshold\s+(?:range\s+)?to\s+(?:between\s+)?` + numPat + `\s+and\s+` + numPat)
	saveAsRe     = regexp.MustCompile(`(?i)save\s+(?:the\s+)?screenshot\s+(?:[\w\s]{0,24}?)?(?:as|to|in)\s+(?:the\s+filename\s+)?['"]?([\w\-.]+?\.png)['"]?`)
	surfaceRe    = regexp.MustCompile(`(?i)(?:render|show|display)\s+(?:the\s+)?[\w\s]*?as\s+a?\s*surface`)
)

// pastParticipleClass maps "clipped"-style references to the class named.
var pastParticipleClass = map[string]string{
	"clipped": "Clip", "sliced": "Slice",
	"thresholded": "Threshold", "contoured": "Contour",
}

// ParseEditIntent extracts the structured edit list from a follow-up
// utterance against an existing pipeline. Like ParseIntent it is
// deterministic and shared by every simulated model; models differ in
// what they do downstream, not in language understanding.
func ParseEditIntent(text string) EditIntent {
	var intent EditIntent

	// Back-references ("the clipped data") name the parent of a new
	// stage; neutralize them so the op parser does not read them as
	// commands, but keep the parent hint for insertion.
	parentHint := ""
	if m := pastRefRe.FindStringSubmatch(text); m != nil {
		parentHint = pastParticipleClass[strings.ToLower(m[1])]
	}
	sanitized := pastRefRe.ReplaceAllString(text, "upstream")

	// Classes being removed or retargeted must not also be parsed as
	// additions from their keyword alone.
	suppressed := map[string]bool{}

	for _, m := range removeRe.FindAllStringSubmatch(sanitized, -1) {
		cls := editClassWords[strings.ToLower(m[1])]
		if cls == "" {
			continue
		}
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditRemove, Class: cls})
		suppressed[cls] = true
	}
	var retargets []PlanEdit
	for _, m := range retargetRe.FindAllStringSubmatch(sanitized, -1) {
		cls, onto := editClassWords[strings.ToLower(m[1])], editClassWords[strings.ToLower(m[2])]
		if cls == "" || onto == "" || cls == onto {
			continue
		}
		retargets = append(retargets, PlanEdit{Kind: EditRetarget, Class: cls, Target: onto})
		suppressed[cls] = true
	}

	// Dedicated edit phrasings that the one-shot parser has no rule for.
	if m := isoEditRe.FindStringSubmatch(sanitized); m != nil {
		op := Op{Kind: OpIsosurface}
		for _, n := range numsRe.FindAllString(m[1], -1) {
			if v, err := strconv.ParseFloat(n, 64); err == nil {
				op.Values = append(op.Values, v)
			}
		}
		if len(op.Values) > 0 {
			op.Value = op.Values[0]
		}
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditAddOrSet, Op: op, Class: "Contour"})
		suppressed["Contour"] = true
	}
	if m := planeEditRe.FindStringSubmatch(sanitized); m != nil {
		kind := OpSlice
		if strings.EqualFold(m[1], "clip") {
			kind = OpClip
		}
		off, _ := strconv.ParseFloat(m[3], 64)
		op := Op{Kind: kind, Axis: strings.ToLower(m[2]), Offset: off}
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditAddOrSet, Op: op, Class: classForOpKind(kind), PlaneOnly: true})
		suppressed[classForOpKind(kind)] = true
	}
	if m := threshEditRe.FindStringSubmatch(sanitized); m != nil {
		lo, _ := strconv.ParseFloat(m[1], 64)
		hi, _ := strconv.ParseFloat(m[2], 64)
		op := Op{Kind: OpThreshold, Offset: lo, Value: hi}
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditAddOrSet, Op: op, Class: "Threshold"})
		suppressed["Threshold"] = true
	}

	// The one-shot grammar covers ordinary "slice the data in a plane…"
	// phrasings; everything it extracts that is not suppressed becomes an
	// add-or-set edit.
	spec := ParseIntent(sanitized)
	for _, op := range spec.Ops {
		if op.Kind == OpRead {
			continue
		}
		cls := classForOpKind(op.Kind)
		if cls == "" || suppressed[cls] {
			continue
		}
		intent.Edits = append(intent.Edits,
			PlanEdit{Kind: EditAddOrSet, Op: op, Class: cls, Parent: parentHint})
		suppressed[cls] = true
	}
	intent.Edits = append(intent.Edits, retargets...)

	if spec.ColorArray != "" {
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditColorBy, Array: spec.ColorArray})
	}
	if spec.SolidColor != "" {
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditSolidColor, Str: spec.SolidColor})
	}
	if dir := parseViewDirection(sanitized); dir != "" {
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditCamera, View: dir})
	}
	if spec.Wireframe {
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditRepresentation, Str: "Wireframe"})
	} else if surfaceRe.MatchString(sanitized) {
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditRepresentation, Str: "Surface"})
	}
	if spec.Screenshot != "" {
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditScreenshot, Str: spec.Screenshot})
	} else if m := saveAsRe.FindStringSubmatch(sanitized); m != nil {
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditScreenshot, Str: m[1]})
	}
	if spec.Width > 0 && spec.Height > 0 {
		intent.Edits = append(intent.Edits, PlanEdit{Kind: EditResolution, Width: spec.Width, Height: spec.Height})
	}
	return intent
}

// overlayClasses mark stages that decorate the trunk (they are shown in
// addition to it, not instead of it).
var overlayClasses = map[string]bool{"Glyph": true, "Tube": true}

// trunkTail returns the index of the pipeline stage new filters should
// consume by default: the deepest displayed non-overlay stage, falling
// back to the deepest pipeline stage.
func trunkTail(p *plan.Plan) int {
	depth := make([]int, len(p.Stages))
	for i, st := range p.Stages {
		for _, in := range st.Inputs {
			if in < i && depth[in]+1 > depth[i] {
				depth[i] = depth[in] + 1
			}
		}
	}
	displayed := map[int]bool{}
	for _, st := range p.Stages {
		if st.Kind == plan.StageDisplay && len(st.Inputs) > 0 {
			displayed[st.Inputs[0]] = true
		}
	}
	best, bestDepth := -1, -1
	consider := func(i int) {
		st := p.Stages[i]
		if !st.IsPipeline() || overlayClasses[st.Class] {
			return
		}
		if depth[i] > bestDepth {
			best, bestDepth = i, depth[i]
		}
	}
	for i := range p.Stages {
		if displayed[i] {
			consider(i)
		}
	}
	if best >= 0 {
		return best
	}
	for i := range p.Stages {
		consider(i)
	}
	if best >= 0 {
		return best
	}
	// Overlay-only pipelines: take any deepest pipeline stage.
	for i, st := range p.Stages {
		if st.IsPipeline() && depth[i] > bestDepth {
			best, bestDepth = i, depth[i]
		}
	}
	return best
}

// findPipelineClass returns the index of the first pipeline stage of the
// class, or -1.
func findPipelineClass(p *plan.Plan, class string) int {
	for i, st := range p.Stages {
		if st.IsPipeline() && st.Class == class {
			return i
		}
	}
	return -1
}

// propsForOp renders an operation's stage properties. Fields the
// utterance did not specify (an empty Array) are omitted so a set-edit
// merges into the existing stage instead of clobbering it.
func propsForOp(op Op) map[string]plan.Value {
	props := map[string]plan.Value{}
	switch op.Kind {
	case OpIsosurface:
		if op.Array != "" {
			props["ContourBy"] = plan.AssocV("POINTS", op.Array)
		}
		values := op.Values
		if len(values) == 0 {
			values = []float64{op.Value}
		}
		props["Isosurfaces"] = plan.NumsV(values...)
	case OpContourLines:
		props["Isosurfaces"] = plan.NumsV(op.Value)
	case OpSlice:
		props["SliceType"] = planePropVals(op.Axis, op.Offset)
	case OpClip:
		props["ClipType"] = planePropVals(op.Axis, op.Offset)
		props["Invert"] = plan.IntV(int64(boolToInt(op.KeepNegative)))
	case OpThreshold:
		if op.Array != "" {
			props["Scalars"] = plan.AssocV("POINTS", op.Array)
		}
		props["LowerThreshold"] = plan.NumV(op.Offset)
		props["UpperThreshold"] = plan.NumV(op.Value)
	case OpTube:
		props["Radius"] = plan.NumV(0.075)
	case OpGlyph:
		gt := op.GlyphType
		if gt == "" {
			gt = "Arrow"
		}
		props["GlyphType"] = plan.StrV(gt)
		props["OrientationArray"] = plan.AssocV("POINTS", "V")
		props["ScaleArray"] = plan.AssocV("POINTS", "V")
		props["ScaleFactor"] = plan.NumV(0.2)
	}
	return props
}

// cameraOpsForDirection maps a view direction to the camera-op sequence
// the writer emits for it.
func cameraOpsForDirection(dir string) []string {
	switch dir {
	case "isometric":
		return []string{"ApplyIsometricView", "ResetCamera"}
	case "+X":
		return []string{"ResetActiveCameraToPositiveX", "ResetCamera"}
	case "-X":
		return []string{"ResetActiveCameraToNegativeX", "ResetCamera"}
	case "+Y":
		return []string{"ResetActiveCameraToPositiveY", "ResetCamera"}
	case "-Y":
		return []string{"ResetActiveCameraToNegativeY", "ResetCamera"}
	case "+Z":
		return []string{"ResetActiveCameraToPositiveZ", "ResetCamera"}
	case "-Z":
		return []string{"ResetActiveCameraToNegativeZ", "ResetCamera"}
	}
	return []string{"ResetCamera"}
}

// ApplyEdits applies an edit intent to a plan and returns the edited
// copy. This is the deterministic "language-to-delta" competence every
// simulated model shares: the model receives the current plan as JSON
// and the utterance, and answers with the full target plan.
func ApplyEdits(cur *plan.Plan, intent EditIntent) *plan.Plan {
	p := cur.Clone()
	for _, e := range intent.Edits {
		switch e.Kind {
		case EditRemove:
			p = removeClassStage(p, e.Class)
		case EditRetarget:
			retargetStage(p, e.Class, e.Target)
		case EditAddOrSet:
			p = addOrSetStage(p, e)
		case EditColorBy:
			for _, st := range p.Stages {
				if st.Kind == plan.StageDisplay {
					st.SetProp(plan.PropColorArray, plan.AssocV("POINTS", e.Array), 0)
					st.SetProp(plan.PropRescaleTF, plan.BoolV(true), 0)
				}
			}
		case EditSolidColor:
			if d := mainDisplay(p); d != nil {
				d.SetProp(plan.PropColorArray, plan.ListV(plan.StrV("POINTS"), plan.NoneV()), 0)
				if rgb, ok := colorVecs[e.Str]; ok {
					d.SetProp("DiffuseColor", plan.NumsV(rgb[0], rgb[1], rgb[2]), 0)
				}
				d.SetProp("LineWidth", plan.NumV(2.0), 0)
			}
		case EditCamera:
			for _, st := range p.Stages {
				if st.Kind == plan.StageView {
					st.Camera = cameraOpsForDirection(e.View)
				}
			}
		case EditScreenshot:
			for _, st := range p.Stages {
				if st.Kind == plan.StageScreenshot {
					st.SetProp(plan.PropFilename, plan.StrV(e.Str), 0)
				}
			}
		case EditRepresentation:
			if d := mainDisplay(p); d != nil {
				d.SetProp(plan.PropRepresentation, plan.StrV(e.Str), 0)
			}
		case EditResolution:
			res := plan.NumsV(float64(e.Width), float64(e.Height))
			for _, st := range p.Stages {
				switch st.Kind {
				case plan.StageView:
					st.SetProp("ViewSize", res, 0)
				case plan.StageScreenshot:
					st.SetProp(plan.PropImageResolution, res, 0)
				}
			}
		}
	}
	return p
}

// mainDisplay returns the first non-overlay display (falling back to the
// first display of any kind).
func mainDisplay(p *plan.Plan) *plan.Stage {
	var first *plan.Stage
	for _, st := range p.Stages {
		if st.Kind != plan.StageDisplay {
			continue
		}
		if first == nil {
			first = st
		}
		if len(st.Inputs) > 0 {
			src := p.Stage(st.Inputs[0])
			if src != nil && !overlayClasses[src.Class] {
				return st
			}
		}
	}
	return first
}

// addOrSetStage updates the existing stage of the edit's class, or
// inserts a new one after the utterance's parent (default: the trunk
// tail), retargeting the displays that showed the insertion point.
func addOrSetStage(p *plan.Plan, e PlanEdit) *plan.Plan {
	props := propsForOp(e.Op)
	if e.PlaneOnly {
		for name := range props {
			if name != "SliceType" && name != "ClipType" {
				delete(props, name)
			}
		}
	}
	if idx := findPipelineClass(p, e.Class); idx >= 0 {
		st := p.Stages[idx]
		for name, v := range props {
			st.SetProp(name, v, 0)
		}
		return p
	}
	parent := -1
	if e.Parent != "" {
		parent = findPipelineClass(p, e.Parent)
	}
	if parent < 0 {
		parent = trunkTail(p)
	}
	st := &plan.Stage{Kind: plan.StageFilter, Class: e.Class, ID: strings.ToLower(e.Class) + "New"}
	if parent >= 0 {
		st.Inputs = []int{parent}
	}
	for name, v := range props {
		st.SetProp(name, v, 0)
	}
	newIdx := p.Add(st)
	viewIdx := -1
	for i, vs := range p.Stages {
		if vs.Kind == plan.StageView {
			viewIdx = i
			break
		}
	}
	if overlayClasses[e.Class] {
		// Overlays get their own display next to the existing ones,
		// inheriting the main display's coloring.
		if viewIdx >= 0 {
			d := &plan.Stage{
				Kind: plan.StageDisplay, ID: st.ID + "Display",
				Class: plan.DisplayClass, Inputs: []int{newIdx, viewIdx},
			}
			if main := mainDisplay(p); main != nil {
				for _, name := range []string{plan.PropColorArray, plan.PropRescaleTF} {
					if v, ok := main.Props[name]; ok {
						d.SetProp(name, v, 0)
					}
				}
			}
			p.Add(d)
		}
		return p
	}
	// Ordinary filters splice into the trunk: displays that showed the
	// parent now show the new stage.
	for _, ds := range p.Stages {
		if ds.Kind == plan.StageDisplay && len(ds.Inputs) > 0 && ds.Inputs[0] == parent {
			ds.Inputs[0] = newIdx
		}
	}
	return p
}

// removeClassStage deletes the first pipeline stage of the class,
// rewiring dependents (and displays) to its input; displays left without
// a source — or duplicated by the rewiring — are dropped.
func removeClassStage(p *plan.Plan, class string) *plan.Plan {
	idx := findPipelineClass(p, class)
	if idx < 0 {
		return p
	}
	input := -1
	if len(p.Stages[idx].Inputs) > 0 {
		input = p.Stages[idx].Inputs[0]
	}
	q := &plan.Plan{Version: p.Version}
	remap := make([]int, len(p.Stages))
	for i, st := range p.Stages {
		if i == idx {
			remap[i] = -1
			continue
		}
		remap[i] = len(q.Stages)
		q.Stages = append(q.Stages, st)
	}
	var kept []*plan.Stage
	seenDisplay := map[string]bool{}
	for _, st := range q.Stages {
		ins := st.Inputs[:0]
		dropped := false
		for _, in := range st.Inputs {
			switch {
			case remap[in] >= 0:
				ins = append(ins, remap[in])
			case in == idx && input >= 0 && remap[input] >= 0:
				ins = append(ins, remap[input])
			default:
				dropped = true
			}
		}
		st.Inputs = ins
		if len(st.Inputs) == 0 {
			st.Inputs = nil
		}
		if dropped && (st.Kind == plan.StageDisplay || st.IsPipeline()) {
			continue // lost its source entirely
		}
		if st.Kind == plan.StageDisplay {
			key := fmt.Sprintf("%v", st.Inputs)
			if seenDisplay[key] {
				continue // rewiring collapsed two displays onto one source
			}
			seenDisplay[key] = true
		}
		kept = append(kept, st)
	}
	// Dropping stages shifted indices; remap the kept stages' inputs.
	final := &plan.Plan{Version: p.Version}
	pos := map[*plan.Stage]int{}
	for _, st := range kept {
		pos[st] = final.Add(st)
	}
	for _, st := range kept {
		ins := st.Inputs[:0]
		for _, in := range st.Inputs {
			if in < len(q.Stages) {
				if at, ok := pos[q.Stages[in]]; ok {
					ins = append(ins, at)
				}
			}
		}
		st.Inputs = ins
		if len(st.Inputs) == 0 {
			st.Inputs = nil
		}
	}
	return final
}

// retargetStage reconnects the class stage onto the target class stage,
// refusing edits that would create a cycle.
func retargetStage(p *plan.Plan, class, target string) {
	from := findPipelineClass(p, class)
	onto := findPipelineClass(p, target)
	if from < 0 || onto < 0 || from == onto {
		return
	}
	// Reject cycles: is `from` upstream of `onto`?
	var reaches func(i, goal int) bool
	reaches = func(i, goal int) bool {
		if i == goal {
			return true
		}
		for _, in := range p.Stages[i].Inputs {
			if reaches(in, goal) {
				return true
			}
		}
		return false
	}
	if reaches(onto, from) {
		return
	}
	p.Stages[from].Inputs = []int{onto}
}

// Prompt framing of the PlanDelta path. EditSystem carries the marker
// phrase the simulated models dispatch on; the user payload wraps the
// current plan JSON and the raw utterance.
const EditSystem = `You are an expert in ParaView pipeline editing.
The user has an existing visualization pipeline, given below as a JSON plan.
Apply the user's requested change to the pipeline plan and return the complete
updated plan as JSON in the same schema, with no commentary.`

// Plan-edit prompt markers.
const (
	planEditOpen  = "--- CURRENT PLAN ---"
	planEditClose = "--- END CURRENT PLAN ---"
	editReqOpen   = "--- EDIT REQUEST ---"
	editReqClose  = "--- END EDIT REQUEST ---"
)

// BuildPlanEditUser formats the PlanDelta user prompt: current plan JSON
// plus the follow-up utterance.
func BuildPlanEditUser(cur *plan.Plan, utterance string) string {
	blob, err := cur.Encode()
	if err != nil {
		blob = []byte("{}")
	}
	return fmt.Sprintf("%s\n%s%s\n%s\n%s\n%s\n",
		planEditOpen, blob, planEditClose, editReqOpen, utterance, editReqClose)
}

// BuildPlanDeltaRepairUser formats the pre-execution repair prompt for a
// proposed plan that failed schema validation: the plan JSON plus the
// structured diagnostics, mirroring BuildPlanRepairUser for scripts.
func BuildPlanDeltaRepairUser(p *plan.Plan, diags []plan.Diagnostic) string {
	blob, err := p.Encode()
	if err != nil {
		blob = []byte("{}")
	}
	dj, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		dj = []byte("[]")
	}
	return fmt.Sprintf("The following pipeline plan failed validation against the ParaView API. Fix every reported problem and return the complete corrected plan as JSON.\n%s\n%s%s\n%s\n%s\n%s\n",
		planEditOpen, blob, planEditClose, planDiagOpen, dj, planDiagClose)
}

// ParsePlanText extracts and decodes a plan JSON document from model
// response text (markdown fences and surrounding prose tolerated).
func ParsePlanText(text string) (*plan.Plan, error) {
	start := strings.Index(text, "{")
	end := strings.LastIndex(text, "}")
	if start < 0 || end <= start {
		return nil, fmt.Errorf("llm: response carries no plan JSON")
	}
	return plan.Decode([]byte(text[start : end+1]))
}

// RepairPlanDoc fixes a plan against its validation diagnostics at the
// given skill level: 0 returns it unchanged, 1+ deletes the offending
// properties, camera operations and stages. It is the plan-document
// sibling of RepairPlan (which patches script text).
func RepairPlanDoc(p *plan.Plan, diags []plan.Diagnostic, skill int) *plan.Plan {
	if skill <= 0 || len(diags) == 0 {
		return p
	}
	q := p.Clone()
	dropStages := map[string]bool{}
	for _, d := range diags {
		if d.Severity != plan.SevError {
			continue
		}
		switch {
		case d.Kind == plan.DiagUnknownClass:
			dropStages[d.Stage] = true
		case d.Property != "":
			for _, st := range q.Stages {
				if st.ID != d.Stage {
					continue
				}
				if _, ok := st.Props[d.Property]; ok {
					delete(st.Props, d.Property)
					continue
				}
				// Helper-member and camera-op findings name the inner
				// property; scrub both.
				for name, v := range st.Props {
					if v.Kind == plan.KindHelper {
						delete(v.Obj, d.Property)
						st.Props[name] = v
					}
				}
				var cam []string
				for _, op := range st.Camera {
					if op != d.Property {
						cam = append(cam, op)
					}
				}
				st.Camera = cam
			}
		}
	}
	if len(dropStages) == 0 {
		return q
	}
	ids := make([]string, 0, len(dropStages))
	for id := range dropStages {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for i, st := range q.Stages {
			if st.ID == id {
				q = removeStageAt(q, i)
				break
			}
		}
	}
	return q
}

// removeStageAt deletes one stage by index, rewiring dependents to its
// first input (reusing the class-removal machinery).
func removeStageAt(p *plan.Plan, idx int) *plan.Plan {
	if idx < 0 || idx >= len(p.Stages) {
		return p
	}
	// Tag the stage with a unique sentinel class and reuse removal.
	saved := p.Stages[idx].Class
	p.Stages[idx].Class = "\x00doomed"
	q := removeClassStage(p, "\x00doomed")
	for _, st := range q.Stages {
		if st.Class == "\x00doomed" {
			st.Class = saved
		}
	}
	return q
}
