package llm

import (
	"context"
	"testing"

	"chatvis/internal/plan"
)

// buildIsoPlan is a minimal canonical pipeline: reader → contour → view/
// display/screenshot.
func buildIsoPlan() *plan.Plan {
	p := plan.New()
	reader := &plan.Stage{Kind: plan.StageSource, ID: "reader1", Class: "LegacyVTKReader"}
	reader.SetProp("FileNames", plan.ListV(plan.StrV("ml-100.vtk")), 0)
	ri := p.Add(reader)
	contour := &plan.Stage{Kind: plan.StageFilter, ID: "contour1", Class: "Contour", Inputs: []int{ri}}
	contour.SetProp("ContourBy", plan.AssocV("POINTS", "var0"), 0)
	contour.SetProp("Isosurfaces", plan.NumsV(0.5), 0)
	ci := p.Add(contour)
	view := &plan.Stage{Kind: plan.StageView, ID: "renderView1", Class: plan.ViewClass, Camera: []string{"ResetCamera"}}
	view.SetProp("ViewSize", plan.NumsV(480, 270), 0)
	vi := p.Add(view)
	p.Add(&plan.Stage{Kind: plan.StageDisplay, ID: "contour1Display", Class: plan.DisplayClass, Inputs: []int{ci, vi}})
	ss := &plan.Stage{Kind: plan.StageScreenshot, ID: "screenshot1", Class: plan.ScreenshotClass, Inputs: []int{vi}}
	ss.SetProp(plan.PropFilename, plan.StrV("iso.png"), 0)
	ss.SetProp(plan.PropImageResolution, plan.NumsV(480, 270), 0)
	p.Add(ss)
	return p
}

func TestParseEditIntentPropertyEdit(t *testing.T) {
	in := ParseEditIntent("Raise the isovalue to 0.7.")
	if len(in.Edits) != 1 {
		t.Fatalf("edits = %+v", in.Edits)
	}
	e := in.Edits[0]
	if e.Kind != EditAddOrSet || e.Class != "Contour" {
		t.Fatalf("edit = %+v", e)
	}
	if len(e.Op.Values) != 1 || e.Op.Values[0] != 0.7 {
		t.Fatalf("values = %v", e.Op.Values)
	}
}

func TestParseEditIntentMultiValueAndDecorations(t *testing.T) {
	in := ParseEditIntent("Change the isosurfaces to the values 0.3 and 0.7. Color the result by the var0 data array. Rotate the view to an isometric direction. Save the screenshot as 'ml-multi-iso-screenshot.png'.")
	kinds := map[EditKind]PlanEdit{}
	for _, e := range in.Edits {
		kinds[e.Kind] = e
	}
	if e, ok := kinds[EditAddOrSet]; !ok || len(e.Op.Values) != 2 || e.Op.Values[0] != 0.3 || e.Op.Values[1] != 0.7 {
		t.Errorf("isosurface edit = %+v", kinds[EditAddOrSet])
	}
	if e := kinds[EditColorBy]; e.Array != "var0" {
		t.Errorf("color edit = %+v", e)
	}
	if e := kinds[EditCamera]; e.View != "isometric" {
		t.Errorf("camera edit = %+v", e)
	}
	if e := kinds[EditScreenshot]; e.Str != "ml-multi-iso-screenshot.png" {
		t.Errorf("screenshot edit = %+v", e)
	}
}

func TestParseEditIntentRemoveAndRetarget(t *testing.T) {
	in := ParseEditIntent("Drop the cone glyphs.")
	if len(in.Edits) != 1 || in.Edits[0].Kind != EditRemove || in.Edits[0].Class != "Glyph" {
		t.Fatalf("remove edits = %+v", in.Edits)
	}
	in = ParseEditIntent("Slice the volume in a plane parallel to the x-y plane at z=1. Put the glyphs on the slice.")
	var sawSliceAdd, sawRetarget bool
	for _, e := range in.Edits {
		if e.Kind == EditAddOrSet && e.Class == "Slice" && e.Op.Axis == "z" && e.Op.Offset == 1 {
			sawSliceAdd = true
		}
		if e.Kind == EditRetarget && e.Class == "Glyph" && e.Target == "Slice" {
			sawRetarget = true
		}
		if e.Kind == EditAddOrSet && e.Class == "Glyph" {
			t.Errorf("retargeted glyph also parsed as an addition: %+v", e)
		}
	}
	if !sawSliceAdd || !sawRetarget {
		t.Errorf("edits = %+v", in.Edits)
	}
}

func TestParseEditIntentPastParticipleIsParentNotCommand(t *testing.T) {
	in := ParseEditIntent("Slice the clipped data in a plane parallel to the x-y plane at z=0.")
	for _, e := range in.Edits {
		if e.Kind == EditAddOrSet && e.Class == "Clip" {
			t.Fatalf("back-reference 'clipped' parsed as a clip command: %+v", in.Edits)
		}
	}
	var slice *PlanEdit
	for i, e := range in.Edits {
		if e.Kind == EditAddOrSet && e.Class == "Slice" {
			slice = &in.Edits[i]
		}
	}
	if slice == nil {
		t.Fatalf("no slice edit in %+v", in.Edits)
	}
	if slice.Parent != "Clip" {
		t.Errorf("slice parent = %q, want Clip", slice.Parent)
	}
}

func TestApplyEditsPropertyEdit(t *testing.T) {
	cur := buildIsoPlan()
	next := ApplyEdits(cur, ParseEditIntent("Raise the isovalue to 0.7."))
	idx := next.FindClass("Contour")
	iso := next.Stage(idx).Props["Isosurfaces"]
	if iso.Kind != plan.KindList || len(iso.List) != 1 || iso.List[0].Num != 0.7 {
		t.Errorf("Isosurfaces = %+v", iso)
	}
	// ContourBy must survive a value-only edit.
	if _, ok := next.Stage(idx).Props["ContourBy"]; !ok {
		t.Error("ContourBy clobbered by isovalue edit")
	}
	// The original plan is untouched.
	old := cur.Stage(cur.FindClass("Contour")).Props["Isosurfaces"]
	if old.List[0].Num != 0.5 {
		t.Error("ApplyEdits mutated its input plan")
	}
}

func TestApplyEditsInsertSplicesTrunk(t *testing.T) {
	cur := buildIsoPlan()
	next := ApplyEdits(cur, ParseEditIntent("Clip the data with a y-z plane at x=0, keeping the -x half."))
	ci := next.FindClass("Clip")
	if ci < 0 {
		t.Fatal("no clip inserted")
	}
	clip := next.Stage(ci)
	if len(clip.Inputs) != 1 || next.Stage(clip.Inputs[0]).Class != "Contour" {
		t.Errorf("clip input = %v", clip.Inputs)
	}
	// The display now shows the clip.
	for _, st := range next.Stages {
		if st.Kind == plan.StageDisplay {
			if next.Stage(st.Inputs[0]).Class != "Clip" {
				t.Errorf("display shows %s, want Clip", next.Stage(st.Inputs[0]).Class)
			}
		}
	}
}

func TestApplyEditsPlaneMoveKeepsInvert(t *testing.T) {
	cur := buildIsoPlan()
	withClip := ApplyEdits(cur, ParseEditIntent("Clip the data with a y-z plane at x=0, keeping the -x half."))
	ci := withClip.FindClass("Clip")
	if inv := withClip.Stage(ci).Props["Invert"]; inv.Num != 1 {
		t.Fatalf("Invert after keep -x = %+v, want 1", inv)
	}
	moved := ApplyEdits(withClip, ParseEditIntent("Move the clip to x=0.2."))
	mi := moved.FindClass("Clip")
	if inv := moved.Stage(mi).Props["Invert"]; inv.Num != 1 {
		t.Errorf("Invert clobbered by a plane move: %+v", inv)
	}
	ct := moved.Stage(mi).Props["ClipType"]
	if ct.Kind != plan.KindHelper || ct.Obj["Origin"].List[0].Num != 0.2 {
		t.Errorf("ClipType after move = %+v", ct)
	}
}

func TestApplyEditsRemoveRewires(t *testing.T) {
	cur := buildIsoPlan()
	withClip := ApplyEdits(cur, ParseEditIntent("Clip the data with a y-z plane at x=0."))
	reverted := ApplyEdits(withClip, ParseEditIntent("Remove the clip."))
	if reverted.FindClass("Clip") >= 0 {
		t.Fatal("clip survived removal")
	}
	// A nil schema skips default folding, which the hash comparison here
	// does not need.
	a := plan.Normalize(cur, nil)
	b := plan.Normalize(reverted, nil)
	if a.Hash() != b.Hash() {
		t.Errorf("add+remove did not round-trip:\n%s\nvs\n%s", mustScript(a), mustScript(b))
	}
}

func TestApplyEditsGlyphOverlayKeepsExistingDisplay(t *testing.T) {
	cur := buildIsoPlan()
	next := ApplyEdits(cur, ParseEditIntent("Add arrow glyphs oriented along the V data array."))
	displays := 0
	for _, st := range next.Stages {
		if st.Kind == plan.StageDisplay {
			displays++
		}
	}
	if displays != 2 {
		t.Errorf("displays = %d, want 2 (overlay keeps the original)", displays)
	}
}

func TestEditIntentKeyStableAcrossRewording(t *testing.T) {
	a := ParseEditIntent("Raise the isovalue to 0.7.").Key()
	b := ParseEditIntent("Set the isovalue to 0.7.").Key()
	c := ParseEditIntent("Raise the isovalue to 0.9.").Key()
	if a != b {
		t.Errorf("reworded identical edits got different keys:\n%s\n%s", a, b)
	}
	if a == c {
		t.Error("different isovalues share a key")
	}
}

// TestSimModelPlanDeltaRoundTrip drives the marker protocol end to end:
// the model receives plan JSON + utterance and answers with the edited
// plan as JSON.
func TestSimModelPlanDeltaRoundTrip(t *testing.T) {
	model, err := NewModel("gpt-4")
	if err != nil {
		t.Fatal(err)
	}
	cur := buildIsoPlan()
	resp, err := model.Complete(context.Background(), Request{
		System: EditSystem,
		User:   BuildPlanEditUser(cur, "Raise the isovalue to 0.7."),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePlanText(resp.Text)
	if err != nil {
		t.Fatalf("response is not a plan: %v\n%s", err, resp.Text)
	}
	iso := got.Stage(got.FindClass("Contour")).Props["Isosurfaces"]
	if len(iso.List) != 1 || iso.List[0].Num != 0.7 {
		t.Errorf("Isosurfaces = %+v", iso)
	}
}

// TestRepairPlanDocDropsOffendingProps: the plan-document repair path
// strips hallucinated properties and unknown stages at skill >= 1.
func TestRepairPlanDocDropsOffendingProps(t *testing.T) {
	p := buildIsoPlan()
	idx := p.FindClass("Contour")
	p.Stage(idx).SetProp("Smoothness", plan.NumV(3), 0)
	diags := []plan.Diagnostic{{
		Kind: plan.DiagUnknownProperty, Severity: plan.SevError,
		Stage: "contour1", Class: "Contour", Property: "Smoothness",
	}}
	if got := RepairPlanDoc(p, diags, 0); got.Stage(idx).Props["Smoothness"].Kind == plan.KindNone {
		t.Error("skill 0 repaired anyway")
	}
	fixed := RepairPlanDoc(p, diags, 1)
	if _, ok := fixed.Stage(fixed.FindClass("Contour")).Props["Smoothness"]; ok {
		t.Error("hallucinated property survived repair")
	}
	if _, ok := p.Stage(idx).Props["Smoothness"]; !ok {
		t.Error("repair mutated its input")
	}
}

func mustScript(p *plan.Plan) string { return p.Script() }
