package llm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingClient returns a canned response and counts how many calls
// actually reach it — the probe behind the cache/retry tests.
type countingClient struct {
	calls   atomic.Int64
	failFor int64 // first failFor calls error out
	delay   time.Duration
}

func (c *countingClient) Name() string { return "counting" }

func (c *countingClient) Complete(ctx context.Context, req Request) (Response, error) {
	n := c.calls.Add(1)
	if c.delay > 0 {
		select {
		case <-time.After(c.delay):
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
	if n <= c.failFor {
		return Response{}, errors.New("transient failure")
	}
	start := time.Now()
	return NewResponse("counting", req, "response to "+req.User, start), nil
}

func TestWithCacheServesRepeatsWithoutRecomputing(t *testing.T) {
	base := &countingClient{}
	c := Chain(base, WithCache())
	ctx := context.Background()
	req := Request{System: "sys", User: "u1"}

	first, err := c.Complete(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first call must not be a cache hit")
	}
	second, err := c.Complete(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second identical call should hit the cache")
	}
	if second.Text != first.Text {
		t.Errorf("cached text %q != original %q", second.Text, first.Text)
	}
	if base.calls.Load() != 1 {
		t.Errorf("underlying client called %d times, want 1", base.calls.Load())
	}
	// A different request misses.
	third, err := c.Complete(ctx, Request{System: "sys", User: "u2"})
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Error("distinct request should miss")
	}
	if base.calls.Load() != 2 {
		t.Errorf("underlying client called %d times, want 2", base.calls.Load())
	}
}

func TestWithCacheConcurrentAccess(t *testing.T) {
	base := &countingClient{delay: time.Millisecond}
	c := Chain(base, WithCache())
	ctx := context.Background()

	const goroutines = 32
	const distinct = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{System: "sys", User: fmt.Sprintf("u%d", i%distinct)}
			resp, err := c.Complete(ctx, req)
			if err != nil {
				errs <- err
				return
			}
			if want := "response to " + req.User; resp.Text != want {
				errs <- fmt.Errorf("got %q want %q", resp.Text, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// In-flight dedup: each distinct request reaches the model exactly once
	// even when all 32 goroutines race on a cold cache.
	if got := base.calls.Load(); got != distinct {
		t.Errorf("underlying calls = %d, want %d (single-flight per key)", got, distinct)
	}
}

func TestWithCacheDoesNotCacheErrors(t *testing.T) {
	base := &countingClient{failFor: 1}
	c := Chain(base, WithCache())
	ctx := context.Background()
	req := Request{User: "u"}
	if _, err := c.Complete(ctx, req); err == nil {
		t.Fatal("first call should fail")
	}
	resp, err := c.Complete(ctx, req)
	if err != nil {
		t.Fatalf("second call should retry past the evicted failure: %v", err)
	}
	if resp.CacheHit {
		t.Error("response after an evicted failure is not a hit")
	}
}

func TestWithRetryRecoversAndCountsAttempts(t *testing.T) {
	base := &countingClient{failFor: 2}
	c := Chain(base, WithRetry(3, 0))
	resp, err := c.Complete(context.Background(), Request{User: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", resp.Attempts)
	}
	// Exhausted budget surfaces the last error.
	base2 := &countingClient{failFor: 10}
	c2 := Chain(base2, WithRetry(2, 0))
	if _, err := c2.Complete(context.Background(), Request{User: "u"}); err == nil {
		t.Error("exhausted retries should return the error")
	}
	if base2.calls.Load() != 2 {
		t.Errorf("underlying calls = %d, want 2", base2.calls.Load())
	}
}

func TestWithRetryStopsOnCancelledContext(t *testing.T) {
	base := &countingClient{failFor: 100}
	c := Chain(base, WithRetry(50, time.Hour))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Complete(ctx, Request{User: "u"})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored cancellation")
	}
}

func TestWithMetricsAccumulates(t *testing.T) {
	var m Metrics
	base := &countingClient{failFor: 1}
	c := Chain(base, WithMetrics(&m), WithCache())
	ctx := context.Background()

	if _, err := c.Complete(ctx, Request{User: "u"}); err == nil {
		t.Fatal("first call should fail")
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Complete(ctx, Request{User: "u"}); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Snapshot()
	if s.Calls != 4 {
		t.Errorf("calls = %d, want 4", s.Calls)
	}
	if s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
	if s.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2", s.CacheHits)
	}
	if s.CompletionTokens == 0 || s.PromptTokens == 0 {
		t.Errorf("token usage not accumulated: %+v", s)
	}
}

func TestWithRateLimitBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	base := &ClientFunc{
		ModelName: "gauge",
		Fn: func(ctx context.Context, req Request) (Response, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return Response{Text: "ok", Attempts: 1}, nil
		},
	}
	c := Chain(base, WithRateLimit(2))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Complete(context.Background(), Request{User: "u"}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if peak.Load() > 2 {
		t.Errorf("peak in-flight = %d, want <= 2", peak.Load())
	}
}

func TestChainOrderOutermostFirst(t *testing.T) {
	var order []string
	mw := func(tag string) Middleware {
		return func(next Client) Client {
			return &ClientFunc{
				ModelName: next.Name(),
				Fn: func(ctx context.Context, req Request) (Response, error) {
					order = append(order, tag)
					return next.Complete(ctx, req)
				},
			}
		}
	}
	base := &ClientFunc{ModelName: "base", Fn: func(ctx context.Context, req Request) (Response, error) {
		return Response{Text: "ok"}, nil
	}}
	c := Chain(base, mw("outer"), mw("inner"))
	if _, err := c.Complete(context.Background(), Request{}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Errorf("order = %v", order)
	}
}

func TestEstimateTokens(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"abc", 1},
		{"abcd", 1},
		{"abcde", 2},
		{"12345678", 2},
	}
	for _, tc := range cases {
		if got := EstimateTokens(tc.in); got != tc.want {
			t.Errorf("EstimateTokens(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	u := Usage{PromptTokens: 2, CompletionTokens: 3, PromptChars: 8, CompletionChars: 12}
	sum := u.Add(u)
	if sum.TotalTokens() != 10 || sum.PromptChars != 16 || sum.CompletionChars != 24 {
		t.Errorf("Usage.Add = %+v", sum)
	}
}
