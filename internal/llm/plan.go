package llm

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"chatvis/internal/plan"
)

// The plan-IR side of the language-model layer: the writer's *intended*
// plan (what a defect-free generation means), and repair driven by
// structured pre-execution diagnostics instead of runtime tracebacks.

// colorVecs maps named colors to RGB triples (the numeric counterpart of
// the writer's colorRGB literals).
var colorVecs = map[string][3]float64{
	"red": {1, 0, 0}, "green": {0, 1, 0}, "blue": {0, 0, 1},
	"white": {1, 1, 1}, "black": {0, 0, 0}, "yellow": {1, 1, 0},
	"orange": {1, 0.5, 0}, "purple": {0.5, 0, 0.5},
}

func axisNormalVals(axis string) plan.Value {
	switch axis {
	case "y":
		return plan.NumsV(0, 1, 0)
	case "z":
		return plan.NumsV(0, 0, 1)
	default:
		return plan.NumsV(1, 0, 0)
	}
}

func axisOriginVals(axis string, off float64) plan.Value {
	switch axis {
	case "y":
		return plan.NumsV(0, off, 0)
	case "z":
		return plan.NumsV(0, 0, off)
	default:
		return plan.NumsV(off, 0, 0)
	}
}

func planePropVals(axis string, off float64) plan.Value {
	return plan.HelperV("Plane").
		WithObj("Origin", axisOriginVals(axis, off)).
		WithObj("Normal", axisNormalVals(axis))
}

// WritePlan builds the intended pipeline plan for a task spec: the plan
// a defect-free, fully grounded generation means. WriteScript emits the
// script text (possibly degraded by the profile); WritePlan emits the
// same pipeline as IR. For a clean profile with full grounding,
// normalize(compile(WriteScript(spec))) == normalize(WritePlan(spec)) —
// the round-trip invariant the eval suite pins per scenario.
//
// The returned plan is un-normalized; callers normalize with the engine
// schema before hashing or comparing.
func WritePlan(spec TaskSpec) *plan.Plan {
	w, h := spec.Width, spec.Height
	if w == 0 {
		w, h = 1920, 1080
	}
	shot := spec.Screenshot
	if shot == "" {
		shot = "screenshot.png"
	}

	p := plan.New()
	current := -1
	if spec.InputFile != "" {
		st := &plan.Stage{Kind: plan.StageSource, ID: "reader"}
		if strings.HasSuffix(strings.ToLower(spec.InputFile), ".vtk") {
			st.Class = "LegacyVTKReader"
			st.SetProp("FileNames", plan.ListV(plan.StrV(spec.InputFile)), 0)
		} else {
			st.Class = "ExodusIIReader"
			st.SetProp("FileName", plan.StrV(spec.InputFile), 0)
		}
		current = p.Add(st)
	}

	addFilter := func(id, class string, input int) *plan.Stage {
		st := &plan.Stage{Kind: plan.StageFilter, ID: id, Class: class}
		if input >= 0 {
			st.Inputs = []int{input}
		}
		current = p.Add(st)
		return st
	}

	showIdx := -1         // the stage Show targets (default: pipeline head)
	extraShows := []int{} // additional shown stages (glyphs)

	for _, op := range spec.Ops {
		switch op.Kind {
		case OpIsosurface:
			st := addFilter("contour1", "Contour", current)
			values := op.Values
			if len(values) == 0 {
				values = []float64{op.Value}
			}
			st.SetProp("ContourBy", plan.AssocV("POINTS", orDefault(op.Array, "var0")), 0)
			st.SetProp("Isosurfaces", plan.NumsV(values...), 0)
		case OpSlice:
			st := addFilter("slice1", "Slice", current)
			st.SetProp("SliceType", planePropVals(op.Axis, op.Offset), 0)
		case OpContourLines:
			st := addFilter("contour1", "Contour", current)
			st.SetProp("Isosurfaces", plan.NumsV(op.Value), 0)
		case OpThreshold:
			st := addFilter("threshold1", "Threshold", current)
			st.SetProp("Scalars", plan.AssocV("POINTS", orDefault(op.Array, "Temp")), 0)
			st.SetProp("LowerThreshold", plan.NumV(op.Offset), 0)
			st.SetProp("UpperThreshold", plan.NumV(op.Value), 0)
		case OpDelaunay:
			addFilter("delaunay1", "Delaunay3D", current)
		case OpClip:
			st := addFilter("clip1", "Clip", current)
			st.SetProp("ClipType", planePropVals(op.Axis, op.Offset), 0)
			st.SetProp("Invert", plan.IntV(int64(boolToInt(op.KeepNegative))), 0)
		case OpStreamlines:
			addFilter("streamTracer", "StreamTracer", current)
		case OpTube:
			st := addFilter("tube", "Tube", current)
			st.SetProp("Radius", plan.NumV(0.075), 0)
			// The writer shows the tube but keeps chaining (glyphs) off
			// the stream tracer.
			showIdx = len(p.Stages) - 1
			if len(st.Inputs) > 0 {
				current = st.Inputs[0]
			}
		case OpGlyph:
			st := addFilter("glyph", "Glyph", current)
			st.SetProp("GlyphType", plan.StrV(op.GlyphType), 0)
			st.SetProp("OrientationArray", plan.AssocV("POINTS", "V"), 0)
			st.SetProp("ScaleArray", plan.AssocV("POINTS", "V"), 0)
			st.SetProp("ScaleFactor", plan.NumV(0.2), 0)
			extraShows = append(extraShows, len(p.Stages)-1)
			if len(st.Inputs) > 0 {
				current = st.Inputs[0]
			}
		}
	}
	if showIdx < 0 {
		showIdx = current
	}

	// View with camera orientation.
	view := &plan.Stage{Kind: plan.StageView, ID: "renderView1", Class: plan.ViewClass}
	view.SetProp("ViewSize", plan.NumsV(float64(w), float64(h)), 0)
	switch spec.ViewDirection {
	case "isometric":
		view.Camera = append(view.Camera, "ApplyIsometricView")
	case "+X":
		view.Camera = append(view.Camera, "ResetActiveCameraToPositiveX")
	case "-X":
		view.Camera = append(view.Camera, "ResetActiveCameraToNegativeX")
	case "+Y":
		view.Camera = append(view.Camera, "ResetActiveCameraToPositiveY")
	case "-Y":
		view.Camera = append(view.Camera, "ResetActiveCameraToNegativeY")
	case "+Z":
		view.Camera = append(view.Camera, "ResetActiveCameraToPositiveZ")
	case "-Z":
		view.Camera = append(view.Camera, "ResetActiveCameraToNegativeZ")
	}
	view.Camera = append(view.Camera, "ResetCamera")
	viewIdx := p.Add(view)

	// Displays.
	addDisplay := func(src int) *plan.Stage {
		st := &plan.Stage{
			Kind:   plan.StageDisplay,
			ID:     p.Stages[src].ID + "Display",
			Class:  plan.DisplayClass,
			Inputs: []int{src, viewIdx},
		}
		p.Add(st)
		return st
	}
	if showIdx < 0 {
		// A spec with no reader and no ops yields an empty plan.
		return p
	}
	main := addDisplay(showIdx)
	var extras []*plan.Stage
	for _, idx := range extraShows {
		extras = append(extras, addDisplay(idx))
	}

	if spec.HasOp(OpVolumeRender) {
		main.SetProp(plan.PropRepresentation, plan.StrV("Volume"), 0)
		main.SetProp(plan.PropColorArray, plan.AssocV("POINTS", orDefault(spec.ColorArray, "var0")), 0)
		main.SetProp(plan.PropRescaleTF, plan.BoolV(true), 0)
	}
	if spec.Wireframe {
		main.SetProp(plan.PropRepresentation, plan.StrV("Wireframe"), 0)
	}
	if spec.SolidColor != "" {
		main.SetProp(plan.PropColorArray, plan.ListV(plan.StrV("POINTS"), plan.NoneV()), 0)
		if rgb, ok := colorVecs[spec.SolidColor]; ok {
			main.SetProp("DiffuseColor", plan.NumsV(rgb[0], rgb[1], rgb[2]), 0)
		}
		main.SetProp("LineWidth", plan.NumV(2.0), 0)
	}
	if spec.ColorArray != "" && !spec.HasOp(OpVolumeRender) {
		for _, d := range append([]*plan.Stage{main}, extras...) {
			d.SetProp(plan.PropColorArray, plan.AssocV("POINTS", spec.ColorArray), 0)
			d.SetProp(plan.PropRescaleTF, plan.BoolV(true), 0)
		}
	}

	// Screenshot.
	ss := &plan.Stage{
		Kind:   plan.StageScreenshot,
		ID:     "screenshot1",
		Class:  plan.ScreenshotClass,
		Inputs: []int{viewIdx},
	}
	ss.SetProp(plan.PropFilename, plan.StrV(shot), 0)
	ss.SetProp(plan.PropImageResolution, plan.NumsV(float64(w), float64(h)), 0)
	ss.SetProp(plan.PropOverridePalette, plan.StrV("WhiteBackground"), 0)
	p.Add(ss)
	return p
}

// Plan-diagnostic repair prompt markers, mirroring the traceback-based
// repair framing.
const (
	planDiagOpen  = "--- PLAN DIAGNOSTICS ---"
	planDiagClose = "--- END PLAN DIAGNOSTICS ---"
)

// BuildPlanRepairUser formats the pre-execution correction prompt: the
// candidate script plus the structured validation diagnostics, JSON-
// encoded so a model (simulated or real) gets machine-readable findings
// instead of a traceback to parse.
func BuildPlanRepairUser(script string, diags []plan.Diagnostic) string {
	blob, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		blob = []byte("[]")
	}
	return fmt.Sprintf("The following ParaView Python script failed static validation against the ParaView API before execution. Fix every reported problem and regenerate the full script.\n%s\n%s\n%s\n%s\n%s\n%s\n",
		scriptOpen, script, scriptClose, planDiagOpen, string(blob), planDiagClose)
}

// RepairPlan revises a script given structured plan diagnostics, at the
// given skill level: 0 returns the script unchanged, 1 deletes the
// offending statements, 2 applies targeted fixes (falling back to
// statement deletion). It is the pre-execution sibling of Repair: same
// knowledge table, but driven by validation instead of tracebacks, so a
// competent model fixes *every* hallucinated property in one round
// before any engine time is spent.
func RepairPlan(script string, diags []plan.Diagnostic, skill int) string {
	if skill <= 0 || len(diags) == 0 {
		return script
	}
	lines := strings.Split(script, "\n")
	// Diagnostics carry line numbers from the original script, so every
	// line-anchored deletion must be resolved against pristine lines:
	// they are collected first and applied bottom-up, and only then do
	// the content-anchored fixes (renames, needle-based deletions —
	// line-independent by construction) run.
	var lineDeletes []int
	var contentFixes []func([]string) []string
	for _, d := range diags {
		if d.Severity != plan.SevError {
			continue
		}
		key := [2]string{d.Class, d.Property}
		needle := "." + d.Property
		switch {
		case skill >= 2 && d.Class == "Threshold" && d.Property == "ThresholdRange":
			contentFixes = append(contentFixes, rewriteThresholdRange)
		case skill >= 2 && attrFixes[key] != "":
			prop, fix := d.Property, attrFixes[key]
			contentFixes = append(contentFixes, func(ls []string) []string {
				return renameAttr(ls, prop, fix)
			})
		case skill >= 2 && attrDeletes[key]:
			contentFixes = append(contentFixes, func(ls []string) []string {
				return deleteStatementsContaining(ls, needle)
			})
		case skill >= 2 && d.Property == "UseSeparateColorMap":
			contentFixes = append(contentFixes, retargetColorBy)
		case skill >= 2 && d.Kind == plan.DiagViewByName:
			contentFixes = append(contentFixes, createNamedView)
		case d.Property != "" && anyLineContains(lines, needle):
			contentFixes = append(contentFixes, func(ls []string) []string {
				return deleteStatementsContaining(ls, needle)
			})
		case d.Line >= 1:
			// Also reached for marker properties (ViewName, ColorBy's
			// ColorArrayName) that never appear as ".Prop" script text.
			lineDeletes = append(lineDeletes, d.Line)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lineDeletes)))
	for _, n := range lineDeletes {
		lines = deleteStatementAt(lines, n)
	}
	for _, fix := range contentFixes {
		lines = fix(lines)
	}
	return strings.Join(lines, "\n")
}

// anyLineContains reports whether the needle occurs on any line.
func anyLineContains(lines []string, needle string) bool {
	for _, l := range lines {
		if strings.Contains(l, needle) {
			return true
		}
	}
	return false
}
