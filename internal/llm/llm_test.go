package llm

import (
	"context"
	"strings"
	"testing"

	"chatvis/internal/errext"
)

// The paper's five user prompts, verbatim (§IV).
const (
	PromptIso = `Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename ml-iso-screenshot.png. The rendered view and saved screenshot should be 1920 x 1080 pixels.`

	PromptSlice = `Please generate a ParaView Python script for the following operations. Read in the file named 'ml-100.vtk'. Slice the volume in a plane parallel to the y-z plane at x=0. Take a contour through the slice at the value 0.5. Color the contour red. Rotate the view to look at the +x direction. Save a screenshot of the result in the filename 'ml-slice-iso-screenshot.png'. The rendered view and saved screenshot should be 1920 x 1080 pixels.`

	PromptVolume = `Please generate a ParaView Python script for the following operations. Read in the file named 'ml-100.vtk'. Generate a volume rendering using the default transfer function. Rotate the view to an isometric direction. Save a screenshot of the result in the filename 'ml-dvr-screenshot.png'. The rendered view and saved screenshot should be 1920 x 1080 pixels.`

	PromptDelaunay = `Please generate a ParaView Python script for the following operations. Read in the file named 'can_points.ex2'. Generate a 3d Delaunay triangulation of the dataset. Clip the data with a y-z plane at x=0, keeping the -x half of the data and removing the +x half. Render the image as a wireframe. View the result in an isometric view. Save a screenshot of the result in the filename 'points-surf-clip-screenshot.png'. The rendered view and saved screenshot should be 1920 x 1080 pixels.`

	PromptStream = `Please generate a ParaView Python script for the following operations. Read in the file named 'disk.ex2'. Trace streamlines of the V data array seeded from a default point cloud. Render the streamlines with tubes. Add cone glyphs to the streamlines. Color the streamlines and glyphs by the Temp data array. View the result in the +X direction. Save a screenshot of the result in the filename 'stream-glyph-screenshot.png'. The rendered view and saved screenshot should be 1920 x 1080 pixels.`
)

func TestParseIntentIso(t *testing.T) {
	spec := ParseIntent(PromptIso)
	if spec.InputFile != "ml-100.vtk" {
		t.Errorf("file = %q", spec.InputFile)
	}
	op, ok := spec.FindOp(OpIsosurface)
	if !ok || op.Array != "var0" || op.Value != 0.5 {
		t.Errorf("iso op = %+v ok=%v", op, ok)
	}
	if spec.Screenshot != "ml-iso-screenshot.png" {
		t.Errorf("screenshot = %q", spec.Screenshot)
	}
	if spec.Width != 1920 || spec.Height != 1080 {
		t.Errorf("resolution = %dx%d", spec.Width, spec.Height)
	}
	if spec.TaskID() != "isosurface" {
		t.Errorf("task = %q", spec.TaskID())
	}
}

func TestParseIntentSlice(t *testing.T) {
	spec := ParseIntent(PromptSlice)
	sl, ok := spec.FindOp(OpSlice)
	if !ok || sl.Axis != "x" || sl.Offset != 0 {
		t.Errorf("slice op = %+v ok=%v", sl, ok)
	}
	ct, ok := spec.FindOp(OpContourLines)
	if !ok || ct.Value != 0.5 {
		t.Errorf("contour op = %+v ok=%v", ct, ok)
	}
	if spec.SolidColor != "red" {
		t.Errorf("solid color = %q", spec.SolidColor)
	}
	if spec.ViewDirection != "+X" {
		t.Errorf("view = %q", spec.ViewDirection)
	}
	if spec.TaskID() != "slice-contour" {
		t.Errorf("task = %q", spec.TaskID())
	}
}

func TestParseIntentVolume(t *testing.T) {
	spec := ParseIntent(PromptVolume)
	if !spec.HasOp(OpVolumeRender) {
		t.Error("volume op missing")
	}
	if spec.ViewDirection != "isometric" {
		t.Errorf("view = %q", spec.ViewDirection)
	}
}

func TestParseIntentDelaunay(t *testing.T) {
	spec := ParseIntent(PromptDelaunay)
	if !spec.HasOp(OpDelaunay) {
		t.Error("delaunay op missing")
	}
	cl, ok := spec.FindOp(OpClip)
	if !ok || cl.Axis != "x" || !cl.KeepNegative {
		t.Errorf("clip op = %+v ok=%v", cl, ok)
	}
	if !spec.Wireframe {
		t.Error("wireframe missing")
	}
	if spec.ViewDirection != "isometric" {
		t.Errorf("view = %q", spec.ViewDirection)
	}
	if spec.InputFile != "can_points.ex2" {
		t.Errorf("file = %q", spec.InputFile)
	}
}

func TestParseIntentStream(t *testing.T) {
	spec := ParseIntent(PromptStream)
	st, ok := spec.FindOp(OpStreamlines)
	if !ok || st.Array != "V" {
		t.Errorf("stream op = %+v ok=%v", st, ok)
	}
	if !spec.HasOp(OpTube) {
		t.Error("tube missing")
	}
	gl, ok := spec.FindOp(OpGlyph)
	if !ok || gl.GlyphType != "Cone" {
		t.Errorf("glyph = %+v ok=%v", gl, ok)
	}
	if spec.ColorArray != "Temp" {
		t.Errorf("color array = %q", spec.ColorArray)
	}
	if spec.ViewDirection != "+X" {
		t.Errorf("view = %q", spec.ViewDirection)
	}
}

func TestStepPromptRoundTrip(t *testing.T) {
	// The generated prompt must parse back to an equivalent spec — the
	// two-stage pipeline depends on it.
	for name, prompt := range map[string]string{
		"iso": PromptIso, "slice": PromptSlice, "volume": PromptVolume,
		"delaunay": PromptDelaunay, "stream": PromptStream,
	} {
		orig := ParseIntent(prompt)
		rendered := RenderStepPrompt(orig)
		again := ParseIntent(rendered)
		if orig.TaskID() != again.TaskID() {
			t.Errorf("%s: task %q -> %q after round trip\nprompt:\n%s",
				name, orig.TaskID(), again.TaskID(), rendered)
		}
		if orig.InputFile != again.InputFile {
			t.Errorf("%s: file %q -> %q", name, orig.InputFile, again.InputFile)
		}
		if orig.Screenshot != again.Screenshot {
			t.Errorf("%s: shot %q -> %q", name, orig.Screenshot, again.Screenshot)
		}
		if orig.ViewDirection != again.ViewDirection {
			t.Errorf("%s: view %q -> %q", name, orig.ViewDirection, again.ViewDirection)
		}
		if len(orig.Ops) != len(again.Ops) {
			t.Errorf("%s: ops %d -> %d\nprompt:\n%s", name, len(orig.Ops), len(again.Ops), rendered)
		}
	}
}

func TestModelRegistry(t *testing.T) {
	for _, name := range PaperModels() {
		m, err := NewModel(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("name = %q", m.Name())
		}
	}
	if _, err := NewModel("gpt-99"); err == nil {
		t.Error("unknown model should error")
	}
	names := ModelNames()
	if len(names) < 6 {
		t.Errorf("models = %v", names)
	}
}

func TestWriterCanonicalIsGrounded(t *testing.T) {
	spec := ParseIntent(PromptStream)
	p := simProfiles["gpt-4"]
	grounded := WriteScript(spec, p, FullGrounding())
	if strings.Contains(grounded, "glyph.Scalars") {
		t.Error("grounded generation must not hallucinate Glyph.Scalars")
	}
	if !strings.Contains(grounded, "OrientationArray") {
		t.Error("grounded generation should use the canonical glyph API")
	}
	// Detail slip present (the loop's work).
	if !strings.Contains(grounded, "tube.NumberOfSides") {
		t.Error("expected the NumberOfSides detail slip under grounding")
	}
	ungrounded := WriteScript(spec, p, nil)
	if !strings.Contains(ungrounded, "glyph.Scalars") {
		t.Error("ungrounded gpt-4 should hallucinate Glyph.Scalars")
	}
	if !strings.Contains(ungrounded, "Show(tube, 'RenderView1')") {
		t.Error("ungrounded gpt-4 should use the view before creating it")
	}
}

func TestWriterSyntaxDefects(t *testing.T) {
	spec := ParseIntent(PromptIso)
	cases := map[string]string{
		"gpt-3.5-turbo": "paren",
		"llama3-8b":     "fence",
		"codellama-7b":  "indent",
		"codegemma":     "string",
	}
	for model, defect := range cases {
		s := WriteScript(spec, simProfiles[model], nil)
		switch defect {
		case "fence":
			if !strings.HasPrefix(s, "```") {
				t.Errorf("%s: expected markdown fences", model)
			}
		case "paren":
			if strings.Contains(s, "Show(reader, renderView1)") &&
				!strings.Contains(s, "Show(reader, renderView1\n") {
				// the closing paren must be gone somewhere
			}
			if s == WriteScript(spec, simProfiles["oracle"], nil) {
				t.Errorf("%s: no defect injected", model)
			}
		default:
			if s == WriteScript(spec, simProfiles["oracle"], nil) {
				t.Errorf("%s: no defect injected", model)
			}
		}
	}
}

func TestRepairAttributeRename(t *testing.T) {
	script := "tube = Tube(Input=st)\ntube.NumberOfSides = 12\n"
	reports := []errext.ErrorReport{{
		Kind:    "AttributeError",
		Message: "'Tube' object has no attribute 'NumberOfSides'",
		Line:    2,
	}}
	fixed := Repair(script, reports, 2)
	if !strings.Contains(fixed, "tube.NumberofSides = 12") {
		t.Errorf("fixed = %q", fixed)
	}
	// Skill 1 deletes instead.
	deleted := Repair(script, reports, 1)
	if strings.Contains(deleted, "NumberOfSides") {
		t.Errorf("skill-1 repair should delete: %q", deleted)
	}
	// Skill 0 is inert.
	if Repair(script, reports, 0) != script {
		t.Error("skill-0 repair must not modify")
	}
}

func TestRepairDeletesInventedGlyphAttrs(t *testing.T) {
	script := "glyph = Glyph(Input=st, GlyphType='Cone')\nglyph.Scalars = ['POINTS', 'Temp']\nglyph.ScaleFactor = 1.0\n"
	reports := []errext.ErrorReport{{
		Kind:    "AttributeError",
		Message: "'Glyph' object has no attribute 'Scalars'",
		Line:    2,
	}}
	fixed := Repair(script, reports, 2)
	if strings.Contains(fixed, "Scalars") {
		t.Errorf("fixed = %q", fixed)
	}
	if !strings.Contains(fixed, "ScaleFactor") {
		t.Error("unrelated lines must survive")
	}
}

func TestRepairColorByRetarget(t *testing.T) {
	script := `contour1 = Contour(Input=reader)
contour1Display = Show(contour1, renderView1)
ColorBy(contour1, None)
`
	reports := []errext.ErrorReport{{
		Kind:    "AttributeError",
		Message: "'Contour' object has no attribute 'UseSeparateColorMap'",
		Line:    3,
	}}
	fixed := Repair(script, reports, 2)
	if !strings.Contains(fixed, "ColorBy(contour1Display, None)") {
		t.Errorf("fixed = %q", fixed)
	}
}

func TestRepairSyntaxFence(t *testing.T) {
	script := "```python\nx = 1\n```\n"
	reports := []errext.ErrorReport{{Kind: "SyntaxError", Message: "invalid syntax", Line: 1}}
	fixed := Repair(script, reports, 1)
	if strings.Contains(fixed, "```") {
		t.Errorf("fixed = %q", fixed)
	}
}

func TestRepairSyntaxParen(t *testing.T) {
	script := "d = Show(reader, view\nprint(1)\n"
	reports := []errext.ErrorReport{{Kind: "SyntaxError", Message: "'(' was never closed", Line: 1}}
	fixed := Repair(script, reports, 2)
	if !strings.Contains(fixed, "Show(reader, view)") {
		t.Errorf("fixed = %q", fixed)
	}
}

func TestRepairShowStringView(t *testing.T) {
	script := "tubeDisplay = Show(tube, 'RenderView1')\n"
	reports := []errext.ErrorReport{{
		Kind:    "TypeError",
		Message: "argument must be a render view proxy, not str",
		Line:    1,
	}}
	fixed := Repair(script, reports, 2)
	if !strings.Contains(fixed, "GetActiveViewOrCreate") ||
		strings.Contains(fixed, "'RenderView1'") && !strings.Contains(fixed, "GetActiveViewOrCreate('RenderView')") {
		t.Errorf("fixed = %q", fixed)
	}
	if !strings.Contains(fixed, "Show(tube, renderView1)") {
		t.Errorf("fixed = %q", fixed)
	}
}

func TestSimModelStageDispatch(t *testing.T) {
	ctx := context.Background()
	m, _ := NewModel("gpt-4")
	// Rewrite stage.
	resp, err := m.Complete(ctx, Request{
		System: "Rewrite the request as step-by-step instructions.",
		User:   PromptIso,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "Requirements step-by-step") ||
		!strings.Contains(resp.Text, "ml-100.vtk") {
		t.Errorf("rewrite response = %q", resp.Text)
	}
	// Generation stage (ungrounded).
	resp, err = m.Complete(ctx, Request{System: "Generate a script.", User: PromptIso})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "from paraview.simple import *") {
		t.Errorf("generation response = %q", resp.Text)
	}
	if resp.Model != "gpt-4" {
		t.Errorf("response model = %q", resp.Model)
	}
	if resp.Usage.CompletionChars != len(resp.Text) || resp.Usage.CompletionTokens == 0 {
		t.Errorf("response usage = %+v", resp.Usage)
	}
	if resp.Usage.PromptChars == 0 || resp.Usage.PromptTokens == 0 {
		t.Errorf("prompt usage not recorded: %+v", resp.Usage)
	}
	if resp.Attempts != 1 || resp.CacheHit {
		t.Errorf("fresh call provenance = attempts %d cacheHit %v", resp.Attempts, resp.CacheHit)
	}
	// Repair stage.
	user := BuildRepairUser("x = (1\n", "  File \"script.py\", line 1\n    x = (1\n    ^\nSyntaxError: '(' was never closed")
	resp, err = m.Complete(ctx, Request{System: "Please fix the code.", User: user})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "x = (1)") {
		t.Errorf("repair response = %q", resp.Text)
	}
}

func TestDeterminism(t *testing.T) {
	ctx := context.Background()
	m, _ := NewModel("gpt-3.5-turbo")
	a, _ := m.Complete(ctx, Request{System: "gen", User: PromptStream})
	b, _ := m.Complete(ctx, Request{System: "gen", User: PromptStream})
	if a.Text != b.Text {
		t.Error("simulated models must be deterministic")
	}
}

func TestSimModelHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, _ := NewModel("gpt-4")
	if _, err := m.Complete(ctx, Request{System: "gen", User: PromptIso}); err == nil {
		t.Error("cancelled context should abort the call")
	}
}

func TestParseIntentGenericText(t *testing.T) {
	spec := ParseIntent("please do something unrelated to visualization")
	if len(spec.Ops) != 0 || spec.TaskID() != "generic" {
		t.Errorf("spec = %+v", spec)
	}
}
