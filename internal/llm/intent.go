// Package llm provides the language-model layer of the reproduction: a
// Client interface shaped like a chat-completion API, and a deterministic
// simulated model family whose members differ in ParaView-API competence —
// calibrated to the behaviours the paper reports for GPT-4,
// GPT-3.5-turbo, Llama-3-8B, CodeLlama-7B and CodeGemma.
//
// The simulation keeps every code path of the paper's agent real: models
// consume prompt text, emit Python script text (with model-specific
// hallucinations or syntax defects), and revise scripts when handed
// extracted error messages. See DESIGN.md for the substitution argument.
package llm

import (
	"regexp"
	"strconv"
	"strings"
)

// OpKind enumerates the visualization operations the intent parser
// recognizes — the vocabulary of the paper's five scenarios plus common
// variants.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpIsosurface
	OpSlice
	OpContourLines
	OpVolumeRender
	OpDelaunay
	OpClip
	OpStreamlines
	OpTube
	OpGlyph
	OpThreshold
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpIsosurface:
		return "isosurface"
	case OpSlice:
		return "slice"
	case OpContourLines:
		return "contour"
	case OpVolumeRender:
		return "volume-render"
	case OpDelaunay:
		return "delaunay"
	case OpClip:
		return "clip"
	case OpStreamlines:
		return "streamlines"
	case OpTube:
		return "tube"
	case OpGlyph:
		return "glyph"
	case OpThreshold:
		return "threshold"
	}
	return "unknown"
}

// Op is one requested operation with its parameters.
type Op struct {
	Kind OpKind
	// Array names the data array involved (contour variable, vector
	// field, color array).
	Array string
	// Value is the scalar parameter (isovalue, threshold).
	Value float64
	// Values holds multi-value parameters (a multi-value contour's
	// isovalue list); when set it supersedes Value.
	Values []float64
	// Axis is "x", "y" or "z" for slices/clips.
	Axis string
	// Offset is the plane position along Axis.
	Offset float64
	// KeepNegative keeps the -Axis side for clips.
	KeepNegative bool
	// GlyphType is "Cone", "Arrow" or "Sphere".
	GlyphType string
}

// TaskSpec is the structured reading of a visualization request — what
// the "language understanding" of every simulated model extracts from
// prompt text.
type TaskSpec struct {
	InputFile  string
	Ops        []Op
	Screenshot string
	Width      int
	Height     int
	// ViewDirection is "+X", "-X", ..., "isometric" or "" (default).
	ViewDirection string
	// ColorArray colors results by this point array ("" = none).
	ColorArray string
	// SolidColor is a named color for the primary result ("" = default).
	SolidColor string
	// Wireframe renders the result as wireframe.
	Wireframe bool
}

const numPat = `(-?\d+(?:\.\d+)?)`

var (
	fileRe      = regexp.MustCompile(`(?i)file(?:\s+named)?\s+['"]?([\w\-.]+?\.(?:vtk|ex2|exo|e))['"]?`)
	shotRe      = regexp.MustCompile(`(?i)(?:filename|file name)\s+['"]?([\w\-.]+?\.png)['"]?`)
	resRe       = regexp.MustCompile(`(?i)(\d{3,5})\s*[xX×]\s*(\d{3,5})\s*pixels?`)
	isoRe       = regexp.MustCompile(`(?i)isosurface(?:s)?\s+of\s+(?:the\s+)?(?:variable\s+)?['"]?(\w+)['"]?\s+at\s+(?:value\s+)?` + numPat)
	isoMultiRe  = regexp.MustCompile(`(?i)isosurfaces\s+of\s+(?:the\s+)?(?:variable\s+)?['"]?(\w+)['"]?\s+at\s+(?:the\s+)?values\s+(` + numPat + `(?:(?:\s*,\s*|\s+and\s+)` + numPat + `)*)`)
	numsRe      = regexp.MustCompile(numPat)
	valueRe     = regexp.MustCompile(`(?i)at\s+(?:the\s+)?value\s+` + numPat)
	sliceRe     = regexp.MustCompile(`(?i)plane\s+parallel\s+to\s+the\s+([xyz])[\s-]*([xyz])\s+plane\s+at\s+([xyz])\s*=\s*` + numPat)
	clipRe      = regexp.MustCompile(`(?i)clip\s+the\s+data\s+with\s+an?\s+([xyz])[\s-]*([xyz])\s+plane\s+at\s+([xyz])\s*=\s*` + numPat)
	keepRe      = regexp.MustCompile(`(?i)keeping\s+the\s+([+-])([xyz])\s+half`)
	streamRe    = regexp.MustCompile(`(?i)streamlines?\s+of\s+(?:the\s+)?['"]?(\w+)['"]?\s+(?:data\s+)?array`)
	threshRe    = regexp.MustCompile(`(?i)threshold\s+(?:the\s+)?[\w\s]*?(?:by|on)\s+(?:the\s+)?['"]?(\w+)['"]?[\w\s]*?between\s+` + numPat + `\s+and\s+` + numPat)
	contourOfRe = regexp.MustCompile(`(?i)contour\s+of\s+(?:the\s+)?variable\s+['"]?(\w+)['"]?`)
	colorRe     = regexp.MustCompile(`(?i)color\s+(?:the\s+)?[\w\s,]*?by\s+(?:the\s+)?['"]?(\w+)['"]?\s+(?:data\s+)?array`)
	solidRe     = regexp.MustCompile(`(?i)color\s+the\s+\w+\s+(red|green|blue|white|black|yellow|orange|purple)`)
)

// ParseIntent extracts a TaskSpec from natural-language text (a raw user
// prompt or a rewritten step-by-step prompt). It is deterministic and
// shared by all simulated models: the models differ downstream, in how
// they turn the spec into code.
func ParseIntent(text string) TaskSpec {
	var spec TaskSpec
	lower := strings.ToLower(text)

	if m := fileRe.FindStringSubmatch(text); m != nil {
		spec.InputFile = m[1]
		spec.Ops = append(spec.Ops, Op{Kind: OpRead})
	}
	if m := shotRe.FindStringSubmatch(text); m != nil {
		spec.Screenshot = m[1]
	}
	if m := resRe.FindStringSubmatch(text); m != nil {
		spec.Width, _ = strconv.Atoi(m[1])
		spec.Height, _ = strconv.Atoi(m[2])
	}

	// Slice before isosurface detection: the slice-then-contour prompt
	// contains both "slice" and "contour".
	hasSlice := strings.Contains(lower, "slice")
	if m := sliceRe.FindStringSubmatch(text); m != nil && hasSlice {
		off, _ := strconv.ParseFloat(m[4], 64)
		spec.Ops = append(spec.Ops, Op{Kind: OpSlice, Axis: strings.ToLower(m[3]), Offset: off})
	} else if hasSlice && strings.Contains(lower, "slice the volume") {
		spec.Ops = append(spec.Ops, Op{Kind: OpSlice, Axis: "x"})
	}

	switch {
	case strings.Contains(lower, "isosurface"):
		op := Op{Kind: OpIsosurface, Value: 0.5}
		if m := isoMultiRe.FindStringSubmatch(text); m != nil {
			// Multi-value contour: "isosurfaces of var0 at the values
			// 0.3 and 0.7".
			op.Array = m[1]
			for _, n := range numsRe.FindAllString(m[2], -1) {
				v, err := strconv.ParseFloat(n, 64)
				if err == nil {
					op.Values = append(op.Values, v)
				}
			}
			if len(op.Values) > 0 {
				op.Value = op.Values[0]
			}
		} else if m := isoRe.FindStringSubmatch(text); m != nil {
			op.Array = m[1]
			op.Value, _ = strconv.ParseFloat(m[2], 64)
		}
		spec.Ops = append(spec.Ops, op)
	case hasSlice && strings.Contains(lower, "contour"):
		op := Op{Kind: OpContourLines, Value: 0.5}
		if m := valueRe.FindStringSubmatch(text); m != nil {
			op.Value, _ = strconv.ParseFloat(m[1], 64)
		}
		spec.Ops = append(spec.Ops, op)
	case strings.Contains(lower, "contour") && !hasSlice:
		op := Op{Kind: OpIsosurface, Value: 0.5}
		if m := valueRe.FindStringSubmatch(text); m != nil {
			op.Value, _ = strconv.ParseFloat(m[1], 64)
		}
		if m := isoRe.FindStringSubmatch(text); m != nil {
			op.Array = m[1]
			op.Value, _ = strconv.ParseFloat(m[2], 64)
		} else if m := contourOfRe.FindStringSubmatch(text); m != nil {
			// "contour of the variable Temp at the value 600".
			op.Array = m[1]
		}
		spec.Ops = append(spec.Ops, op)
	}

	if strings.Contains(lower, "volume rendering") || strings.Contains(lower, "volume render") {
		spec.Ops = append(spec.Ops, Op{Kind: OpVolumeRender})
	}
	if strings.Contains(lower, "delaunay") {
		spec.Ops = append(spec.Ops, Op{Kind: OpDelaunay})
	}
	if strings.Contains(lower, "clip") {
		op := Op{Kind: OpClip, Axis: "x"}
		if m := clipRe.FindStringSubmatch(text); m != nil {
			op.Axis = strings.ToLower(m[3])
			op.Offset, _ = strconv.ParseFloat(m[4], 64)
		}
		if m := keepRe.FindStringSubmatch(text); m != nil {
			op.KeepNegative = m[1] == "-"
			op.Axis = strings.ToLower(m[2])
		}
		spec.Ops = append(spec.Ops, op)
	}
	if strings.Contains(lower, "threshold") {
		op := Op{Kind: OpThreshold}
		if m := threshRe.FindStringSubmatch(text); m != nil {
			op.Array = m[1]
			op.Offset, _ = strconv.ParseFloat(m[2], 64) // lower bound
			op.Value, _ = strconv.ParseFloat(m[3], 64)  // upper bound
		}
		spec.Ops = append(spec.Ops, op)
	}
	if strings.Contains(lower, "streamline") || strings.Contains(lower, "stream trace") {
		op := Op{Kind: OpStreamlines}
		if m := streamRe.FindStringSubmatch(text); m != nil {
			op.Array = m[1]
		}
		spec.Ops = append(spec.Ops, op)
	}
	if strings.Contains(lower, "tube") {
		spec.Ops = append(spec.Ops, Op{Kind: OpTube})
	}
	if strings.Contains(lower, "glyph") {
		op := Op{Kind: OpGlyph, GlyphType: "Arrow"}
		if strings.Contains(lower, "cone") {
			op.GlyphType = "Cone"
		} else if strings.Contains(lower, "sphere") {
			op.GlyphType = "Sphere"
		}
		spec.Ops = append(spec.Ops, op)
	}

	// Composition order: "slice the clipped data" means the clip runs
	// first even though the parser collected the slice earlier. Move the
	// clip op ahead of the first slice op.
	if strings.Contains(lower, "clipped") && spec.HasOp(OpClip) && spec.HasOp(OpSlice) {
		spec.Ops = clipBeforeSlice(spec.Ops)
	}
	// Likewise "contour ... through the thresholded data": the threshold
	// feeds the contour even though the contour parsed first.
	if strings.Contains(lower, "thresholded") && spec.HasOp(OpThreshold) && spec.HasOp(OpIsosurface) {
		spec.Ops = reorderOps(spec.Ops, OpThreshold, OpIsosurface)
	}

	if m := colorRe.FindStringSubmatch(text); m != nil {
		spec.ColorArray = m[1]
	}
	if m := solidRe.FindStringSubmatch(text); m != nil {
		spec.SolidColor = strings.ToLower(m[1])
	}
	spec.Wireframe = strings.Contains(lower, "wireframe")
	spec.ViewDirection = parseViewDirection(text)
	return spec
}

// parseViewDirection extracts a camera orientation request ("isometric",
// "+X", ... or "" when none). Shared by the one-shot intent parser and
// the edit-intent grammar.
func parseViewDirection(text string) string {
	lower := strings.ToLower(text)
	switch {
	case strings.Contains(lower, "isometric"):
		return "isometric"
	case regexp.MustCompile(`(?i)[+]x\s+direction`).MatchString(text),
		strings.Contains(lower, "look at the +x"):
		return "+X"
	case strings.Contains(lower, "-x direction"):
		return "-X"
	case strings.Contains(lower, "+y direction"):
		return "+Y"
	case strings.Contains(lower, "-y direction"):
		return "-Y"
	case strings.Contains(lower, "+z direction"):
		return "+Z"
	case strings.Contains(lower, "-z direction"):
		return "-Z"
	}
	return ""
}

// clipBeforeSlice reorders ops so the (first) clip precedes the (first)
// slice, preserving the relative order of everything else.
func clipBeforeSlice(ops []Op) []Op { return reorderOps(ops, OpClip, OpSlice) }

// reorderOps moves the first op of kind `before` ahead of the first op
// of kind `after`, preserving the relative order of everything else —
// the dataflow-composition fixups the prompt wording implies.
func reorderOps(ops []Op, before, after OpKind) []Op {
	beforeAt, afterAt := -1, -1
	for i, op := range ops {
		if op.Kind == before && beforeAt < 0 {
			beforeAt = i
		}
		if op.Kind == after && afterAt < 0 {
			afterAt = i
		}
	}
	if beforeAt < 0 || afterAt < 0 || beforeAt < afterAt {
		return ops
	}
	moved := ops[beforeAt]
	out := make([]Op, 0, len(ops))
	for i, op := range ops {
		if i == beforeAt {
			continue
		}
		if i == afterAt {
			out = append(out, moved)
		}
		out = append(out, op)
	}
	return out
}

// HasOp reports whether the spec contains an operation of the given kind.
func (s TaskSpec) HasOp(k OpKind) bool {
	for _, op := range s.Ops {
		if op.Kind == k {
			return true
		}
	}
	return false
}

// FindOp returns the first operation of the given kind.
func (s TaskSpec) FindOp(k OpKind) (Op, bool) {
	for _, op := range s.Ops {
		if op.Kind == k {
			return op, true
		}
	}
	return Op{}, false
}

// TaskID classifies the spec into one of the paper's scenario families,
// used for reporting (Table II rows) and the writer's structure choice.
func (s TaskSpec) TaskID() string {
	switch {
	case s.HasOp(OpStreamlines):
		return "streamlines"
	case s.HasOp(OpDelaunay):
		return "delaunay"
	case s.HasOp(OpVolumeRender):
		return "volume"
	case s.HasOp(OpSlice):
		return "slice-contour"
	case s.HasOp(OpIsosurface):
		return "isosurface"
	}
	return "generic"
}
