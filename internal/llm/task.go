package llm

// TaskKind classifies what a completion request asks the model to do.
// The pipeline stages in internal/chatvis tag every Request with one of
// these; the route.Router selects a model per kind from measured
// profiles instead of sending everything to the configured model.
//
// The kinds partition the call sites by the *capability* they need, not
// by stage name:
//
//   - TaskWrite: full-script synthesis and script-level repair — the
//     generate stage plus the traceback and plan-diagnostic repair
//     rounds that regenerate the whole script. One capability, measured
//     end-to-end by the write probe (the assisted loop includes its own
//     repairs).
//   - TaskPlanRepair: structured repair of a plan document from schema
//     diagnostics (the conversational edit path's validation repair).
//   - TaskEditIntent: natural-language intent extraction — the prompt
//     rewrite stage.
//   - TaskPlanDelta: proposing a target plan from (current plan,
//     follow-up utterance) — the conversational edit proposal.
//   - TaskProbe: calibration traffic. Probes measure models directly,
//     so a router never redirects them.
type TaskKind string

const (
	TaskWrite      TaskKind = "write"
	TaskPlanRepair TaskKind = "plan-repair"
	TaskEditIntent TaskKind = "edit-intent"
	TaskPlanDelta  TaskKind = "plan-delta"
	TaskProbe      TaskKind = "probe"
)

// TaskKinds lists the routable task kinds (TaskProbe excluded — probe
// traffic is never routed) in stable order.
func TaskKinds() []TaskKind {
	return []TaskKind{TaskWrite, TaskPlanRepair, TaskEditIntent, TaskPlanDelta}
}
