package llm

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseIntentMultiValueContour pins the multi-isovalue grammar and
// its round trip through the rendered step prompt.
func TestParseIntentMultiValueContour(t *testing.T) {
	prompt := "Read in the file named ml-100.vtk. Generate isosurfaces of the variable var0 at the values 0.3 and 0.7. Save a screenshot of the result in the filename multi.png."
	spec := ParseIntent(prompt)
	op, ok := spec.FindOp(OpIsosurface)
	if !ok {
		t.Fatal("no isosurface op parsed")
	}
	if op.Array != "var0" || !reflect.DeepEqual(op.Values, []float64{0.3, 0.7}) {
		t.Fatalf("op = %+v", op)
	}
	// Round trip: the rendered step prompt re-parses to the same values.
	again := ParseIntent(RenderStepPrompt(spec))
	op2, ok := again.FindOp(OpIsosurface)
	if !ok || !reflect.DeepEqual(op2.Values, op.Values) {
		t.Fatalf("round trip lost values: %+v", op2)
	}
	// The generated script configures the full isovalue list.
	script := WriteScript(spec, Profile{Name: "test"}, FullGrounding())
	if !strings.Contains(script, "contour1.Isosurfaces = [0.3, 0.7]") {
		t.Fatalf("script missing multi-value isosurfaces:\n%s", script)
	}
}

// TestParseIntentClipThenSlice pins the composition grammar: "slice the
// clipped data" orders the clip before the slice, in both the raw
// prompt and the rendered step prompt.
func TestParseIntentClipThenSlice(t *testing.T) {
	prompt := "Read in the file named ml-100.vtk. Clip the data with a y-z plane at x=0, keeping the -x half of the data and removing the +x half. Slice the clipped data in a plane parallel to the x-y plane at z=0. Save a screenshot of the result in the filename s.png."
	check := func(t *testing.T, spec TaskSpec) {
		t.Helper()
		clipAt, sliceAt := -1, -1
		for i, op := range spec.Ops {
			if op.Kind == OpClip {
				clipAt = i
			}
			if op.Kind == OpSlice {
				sliceAt = i
			}
		}
		if clipAt < 0 || sliceAt < 0 {
			t.Fatalf("missing ops: %+v", spec.Ops)
		}
		if clipAt > sliceAt {
			t.Fatalf("clip (#%d) must precede slice (#%d): %+v", clipAt, sliceAt, spec.Ops)
		}
	}
	spec := ParseIntent(prompt)
	check(t, spec)
	if op, _ := spec.FindOp(OpClip); !op.KeepNegative {
		t.Error("clip should keep the -x half")
	}
	if op, _ := spec.FindOp(OpSlice); op.Axis != "z" {
		t.Errorf("slice axis = %q, want z", op.Axis)
	}
	// Round trip through the rewritten prompt.
	check(t, ParseIntent(RenderStepPrompt(spec)))
	// The generated script feeds the slice from the clip.
	script := WriteScript(spec, Profile{Name: "test"}, FullGrounding())
	if !strings.Contains(script, "slice1 = Slice(registrationName='Slice1', Input=clip1") {
		t.Fatalf("slice should consume the clip output:\n%s", script)
	}
	// A plain slice prompt is unaffected by the reorder rule.
	plain := ParseIntent("Slice the volume in a plane parallel to the y-z plane at x=0. Take a contour through the slice at the value 0.5.")
	if plain.HasOp(OpClip) {
		t.Error("plain slice prompt grew a clip op")
	}
}
