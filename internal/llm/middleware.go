package llm

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// --- WithRetry ---------------------------------------------------------------

// WithRetry retries failed completions up to attempts times, sleeping
// backoff between tries (doubling each time). The context is honoured
// both between attempts and by the underlying client. The returned
// Response.Attempts reports how many tries the call consumed.
func WithRetry(attempts int, backoff time.Duration) Middleware {
	if attempts < 1 {
		attempts = 1
	}
	return func(next Client) Client {
		return &retryClient{next: next, attempts: attempts, backoff: backoff}
	}
}

type retryClient struct {
	next     Client
	attempts int
	backoff  time.Duration
}

func (c *retryClient) Name() string { return c.next.Name() }

func (c *retryClient) Complete(ctx context.Context, req Request) (Response, error) {
	var lastErr error
	delay := c.backoff
	for try := 1; try <= c.attempts; try++ {
		resp, err := c.next.Complete(ctx, req)
		if err == nil {
			resp.Attempts = try
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
		if try == c.attempts {
			break
		}
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return Response{}, ctx.Err()
			case <-timer.C:
			}
			delay *= 2
		}
	}
	return Response{}, lastErr
}

// --- WithCache ---------------------------------------------------------------

// WithCache memoizes completions keyed on a hash of (model, system,
// user). The cache is safe for concurrent use and deduplicates in-flight
// requests: two goroutines asking for the same completion at once share a
// single underlying call. Cached responses are returned with CacheHit set
// and the (near-zero) lookup latency.
func WithCache() Middleware {
	return func(next Client) Client {
		return &cacheClient{next: next, entries: map[uint64]*cacheEntry{}}
	}
}

type cacheClient struct {
	next    Client
	mu      sync.Mutex
	entries map[uint64]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	resp Response
	err  error
}

func requestKey(model string, req Request) uint64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(req.System))
	h.Write([]byte{0})
	h.Write([]byte(req.User))
	return h.Sum64()
}

func (c *cacheClient) Name() string { return c.next.Name() }

func (c *cacheClient) Complete(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	key := requestKey(c.next.Name(), req)
	for {
		c.mu.Lock()
		e, hit := c.entries[key]
		if !hit {
			e = &cacheEntry{}
			c.entries[key] = e
		}
		c.mu.Unlock()

		e.once.Do(func() {
			e.resp, e.err = c.next.Complete(ctx, req)
			if e.err != nil {
				// Do not cache failures: evict so a later call can retry.
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
			}
		})
		if e.err == nil {
			resp := e.resp
			if hit {
				resp.CacheHit = true
				resp.Latency = time.Since(start)
			}
			return resp, nil
		}
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
		// The shared call ran under another caller's context; if it died
		// of that caller's cancellation while ours is still live, retry
		// on a fresh entry with our own context.
		if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
			continue
		}
		return Response{}, e.err
	}
}

// --- WithMetrics -------------------------------------------------------------

// Metrics accumulates per-client counters across calls. All fields are
// updated atomically; read a consistent view with Snapshot.
type Metrics struct {
	calls            atomic.Int64
	errors           atomic.Int64
	cacheHits        atomic.Int64
	latencyNanos     atomic.Int64
	promptTokens     atomic.Int64
	completionTokens atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of a Metrics.
type MetricsSnapshot struct {
	Calls            int64
	Errors           int64
	CacheHits        int64
	TotalLatency     time.Duration
	PromptTokens     int64
	CompletionTokens int64
}

// Snapshot returns the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Calls:            m.calls.Load(),
		Errors:           m.errors.Load(),
		CacheHits:        m.cacheHits.Load(),
		TotalLatency:     time.Duration(m.latencyNanos.Load()),
		PromptTokens:     m.promptTokens.Load(),
		CompletionTokens: m.completionTokens.Load(),
	}
}

// WithMetrics records every call into m: counts, errors, cache hits,
// cumulative latency and token usage.
func WithMetrics(m *Metrics) Middleware {
	return func(next Client) Client {
		return &metricsClient{next: next, m: m}
	}
}

type metricsClient struct {
	next Client
	m    *Metrics
}

func (c *metricsClient) Name() string { return c.next.Name() }

func (c *metricsClient) Complete(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	resp, err := c.next.Complete(ctx, req)
	c.m.calls.Add(1)
	c.m.latencyNanos.Add(int64(time.Since(start)))
	if err != nil {
		c.m.errors.Add(1)
		return resp, err
	}
	if resp.CacheHit {
		// Cache hits consumed no model tokens: count the hit, not the
		// original call's usage again.
		c.m.cacheHits.Add(1)
		return resp, nil
	}
	c.m.promptTokens.Add(int64(resp.Usage.PromptTokens))
	c.m.completionTokens.Add(int64(resp.Usage.CompletionTokens))
	return resp, nil
}

// --- WithRateLimit -----------------------------------------------------------

// WithRateLimit bounds the number of in-flight completions to n,
// queueing excess callers until a slot frees up (or their context is
// cancelled). This is the knob a network-backed client uses to respect
// provider concurrency limits while the grid runner fans out.
func WithRateLimit(n int) Middleware {
	if n < 1 {
		n = 1
	}
	return func(next Client) Client {
		return &rateLimitClient{next: next, slots: make(chan struct{}, n)}
	}
}

type rateLimitClient struct {
	next  Client
	slots chan struct{}
}

func (c *rateLimitClient) Name() string { return c.next.Name() }

func (c *rateLimitClient) Complete(ctx context.Context, req Request) (Response, error) {
	select {
	case c.slots <- struct{}{}:
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
	defer func() { <-c.slots }()
	return c.next.Complete(ctx, req)
}
