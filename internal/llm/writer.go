package llm

import (
	"fmt"
	"strings"
)

// Profile describes one simulated model's competence. Fields are
// calibrated to the behaviours the paper reports per model.
type Profile struct {
	Name string
	// SyntaxDefect injects a deterministic syntax error into every
	// generated script: "" (none), "paren", "fence", "indent", "string".
	SyntaxDefect string
	// Hallucinates enables the GPT-4-class API hallucinations (invented
	// attributes, views used before creation) when generation is not
	// grounded by example snippets.
	Hallucinates bool
	// DetailSlips injects subtle property-name slips that few-shot
	// examples do not cover; these surface under ChatVis and are the work
	// the correction loop performs.
	DetailSlips bool
	// SetsExplicitCamera hand-writes camera coordinates instead of using
	// ResetCamera (the paper's cropped-screenshot failure).
	SetsExplicitCamera bool
	// OmitsBackgroundOverride leaves ParaView's gray background (the
	// GPT-4 isosurface difference in Fig. 2).
	OmitsBackgroundOverride bool
	// RepairSkill: 0 = cannot use error feedback, 1 = deletes offending
	// lines, 2 = applies correct fixes.
	RepairSkill int
}

// script builder helpers -----------------------------------------------------

type sb struct {
	lines []string
}

func (b *sb) add(format string, args ...interface{}) {
	b.lines = append(b.lines, fmt.Sprintf(format, args...))
}

func (b *sb) blank() { b.lines = append(b.lines, "") }

func (b *sb) String() string { return strings.Join(b.lines, "\n") + "\n" }

var colorRGB = map[string]string{
	"red": "[1.0, 0.0, 0.0]", "green": "[0.0, 1.0, 0.0]", "blue": "[0.0, 0.0, 1.0]",
	"white": "[1.0, 1.0, 1.0]", "black": "[0.0, 0.0, 0.0]", "yellow": "[1.0, 1.0, 0.0]",
	"orange": "[1.0, 0.5, 0.0]", "purple": "[0.5, 0.0, 0.5]",
}

func axisNormal(axis string) string {
	switch axis {
	case "y":
		return "[0.0, 1.0, 0.0]"
	case "z":
		return "[0.0, 0.0, 1.0]"
	default:
		return "[1.0, 0.0, 0.0]"
	}
}

func axisOrigin(axis string, off float64) string {
	switch axis {
	case "y":
		return fmt.Sprintf("[0.0, %g, 0.0]", off)
	case "z":
		return fmt.Sprintf("[0.0, 0.0, %g]", off)
	default:
		return fmt.Sprintf("[%g, 0.0, 0.0]", off)
	}
}

// Grounding records which operations were demonstrated by example
// snippets in the prompt. A model only uses the canonical API for an
// operation it has seen an example of — the paper's few-shot argument,
// made op-granular.
type Grounding map[string]bool

// Has reports whether the op family is grounded.
func (g Grounding) Has(op string) bool { return g != nil && g[op] }

// FullGrounding covers every operation (the complete example library).
func FullGrounding() Grounding {
	g := Grounding{}
	for _, op := range []string{"read", "contour", "slice", "clip", "delaunay",
		"streamlines", "tube", "glyph", "volume", "view", "screenshot",
		"threshold"} {
		g[op] = true
	}
	return g
}

// groundingMarkers map canonical API text to the op family it teaches.
var groundingMarkers = map[string]string{
	"LegacyVTKReader(":                "read",
	"ExodusIIReader(":                 "read",
	"Contour(":                        "contour",
	"Slice(":                          "slice",
	"Clip(":                           "clip",
	"Delaunay3D(":                     "delaunay",
	"StreamTracer(":                   "streamlines",
	"Tube(":                           "tube",
	"Glyph(":                          "glyph",
	"SetRepresentationType('Volume')": "volume",
	"GetActiveViewOrCreate(":          "view",
	"SaveScreenshot(":                 "screenshot",
	"Threshold(":                      "threshold",
}

// APIReferenceMarker is the header of a full API listing; a prompt
// containing complete documentation grounds every operation (the model
// can look names up instead of guessing).
const APIReferenceMarker = "paraview.simple API reference"

// GroundingFromText scans prompt text for example snippets (or a full
// API reference) and returns the ops they cover.
func GroundingFromText(text string) Grounding {
	if strings.Contains(text, APIReferenceMarker) {
		return FullGrounding()
	}
	g := Grounding{}
	for marker, op := range groundingMarkers {
		if strings.Contains(text, marker) {
			g[op] = true
		}
	}
	return g
}

// WriteScript synthesizes a ParaView Python script for the task. g
// records which operations example snippets covered (ChatVis few-shot
// prompting); grounding suppresses API hallucinations for exactly those
// operations, as the paper argues.
func WriteScript(spec TaskSpec, p Profile, g Grounding) string {
	halluc := func(op string) bool { return p.Hallucinates && !g.Has(op) }
	// slips are subtle property errors on ops the examples do cover.
	slip := func(op string) bool { return p.DetailSlips && g.Has(op) }

	w, h := spec.Width, spec.Height
	if w == 0 {
		w, h = 1920, 1080
	}
	shot := spec.Screenshot
	if shot == "" {
		shot = "screenshot.png"
	}

	b := &sb{}
	b.add("from paraview.simple import *")
	if g.Has("view") {
		b.add("paraview.simple._DisableFirstRenderCameraReset()")
	}
	b.blank()

	// --- reader ---------------------------------------------------------
	readerVar := "reader"
	if spec.InputFile != "" {
		b.add("# Read the input dataset")
		if strings.HasSuffix(strings.ToLower(spec.InputFile), ".vtk") {
			b.add("reader = LegacyVTKReader(registrationName='%s', FileNames=['%s'])",
				spec.InputFile, spec.InputFile)
		} else {
			b.add("reader = ExodusIIReader(FileName='%s')", spec.InputFile)
			b.add("reader.UpdatePipeline()")
		}
		b.blank()
	}

	current := readerVar // the head of the pipeline being built
	showVar := ""        // variable to Show (default: current)
	extraShows := []string{}

	// --- filters ----------------------------------------------------------
	for _, op := range spec.Ops {
		switch op.Kind {
		case OpIsosurface:
			array := op.Array
			if array == "" {
				array = "var0"
			}
			values := op.Values
			if len(values) == 0 {
				values = []float64{op.Value}
			}
			if len(values) > 1 {
				b.add("# Generate isosurfaces of %s at values %s", array, joinFloats(values, ", "))
			} else {
				b.add("# Generate an isosurface of %s at value %g", array, values[0])
			}
			b.add("contour1 = Contour(registrationName='Contour1', Input=%s)", current)
			b.add("contour1.ContourBy = ['POINTS', '%s']", array)
			b.add("contour1.Isosurfaces = [%s]", joinFloats(values, ", "))
			b.blank()
			current = "contour1"
		case OpSlice:
			b.add("# Slice with a plane normal to %s at %s=%g", op.Axis, op.Axis, op.Offset)
			b.add("slice1 = Slice(registrationName='Slice1', Input=%s, SliceType='Plane')", current)
			b.add("slice1.SliceType.Origin = %s", axisOrigin(op.Axis, op.Offset))
			b.add("slice1.SliceType.Normal = %s", axisNormal(op.Axis))
			b.blank()
			current = "slice1"
		case OpContourLines:
			b.add("# Contour the slice at value %g", op.Value)
			b.add("contour1 = Contour(registrationName='Contour1', Input=%s)", current)
			b.add("contour1.Isosurfaces = [%g]", op.Value)
			b.blank()
			current = "contour1"
		case OpThreshold:
			array := orDefault(op.Array, "Temp")
			b.add("# Threshold by %s between %g and %g", array, op.Offset, op.Value)
			b.add("threshold1 = Threshold(registrationName='Threshold1', Input=%s)", current)
			if halluc("threshold") {
				// Pre-5.10 ParaView used ThresholdRange; the modern API
				// split it into Lower/UpperThreshold — a classic stale-
				// training-data hallucination.
				b.add("threshold1.ThresholdRange = [%g, %g]", op.Offset, op.Value)
			} else {
				b.add("threshold1.Scalars = ['POINTS', '%s']", array)
				b.add("threshold1.LowerThreshold = %g", op.Offset)
				b.add("threshold1.UpperThreshold = %g", op.Value)
			}
			b.blank()
			current = "threshold1"
		case OpDelaunay:
			b.add("# Triangulate the point cloud")
			b.add("delaunay1 = Delaunay3D(registrationName='Delaunay3D1', Input=%s)", current)
			b.blank()
			current = "delaunay1"
		case OpClip:
			b.add("# Clip with a plane at %s=%g", op.Axis, op.Offset)
			b.add("clip1 = Clip(registrationName='Clip1', Input=%s, ClipType='Plane')", current)
			b.add("clip1.ClipType.Origin = %s", axisOrigin(op.Axis, op.Offset))
			b.add("clip1.ClipType.Normal = %s", axisNormal(op.Axis))
			if halluc("clip") {
				// GPT-4's invented attribute (paper §IV-D).
				b.add("clip1.InsideOut = %d", boolToInt(op.KeepNegative))
			} else {
				b.add("clip1.Invert = %d", boolToInt(op.KeepNegative))
			}
			b.blank()
			current = "clip1"
		case OpStreamlines:
			b.add("# Trace streamlines seeded from a default point cloud")
			b.add("streamTracer = StreamTracer(registrationName='StreamTracer1', Input=%s,", current)
			b.add("                            SeedType='Point Cloud')")
			if op.Array != "" && !g.Has("streamlines") {
				b.add("streamTracer.Vectors = ['POINTS', '%s']", op.Array)
			}
			b.blank()
			current = "streamTracer"
		case OpTube:
			b.add("# Render the streamlines with tubes")
			b.add("tube = Tube(registrationName='Tube1', Input=%s)", current)
			b.add("tube.Radius = 0.075")
			if slip("tube") {
				// Capitalization slip the examples don't cover: ParaView's
				// actual property is NumberofSides.
				b.add("tube.NumberOfSides = 12")
			}
			b.blank()
			showVar = "tube"
		case OpGlyph:
			src := current
			b.add("# Add %s glyphs to indicate direction", strings.ToLower(op.GlyphType))
			b.add("glyph = Glyph(registrationName='Glyph1', Input=%s, GlyphType='%s')", src, op.GlyphType)
			if halluc("glyph") {
				// GPT-4's invented Glyph attributes (paper Table I right).
				b.add("glyph.Scalars = ['POINTS', '%s']", orDefault(spec.ColorArray, "Temp"))
				b.add("glyph.Vectors = ['POINTS', 'V']")
			} else {
				b.add("glyph.OrientationArray = ['POINTS', 'V']")
				b.add("glyph.ScaleArray = ['POINTS', 'V']")
			}
			b.add("glyph.ScaleFactor = 0.2")
			b.blank()
			extraShows = append(extraShows, "glyph")
		}
	}
	if showVar == "" {
		showVar = current
	}

	// --- view -------------------------------------------------------------
	if halluc("view") && spec.HasOp(OpStreamlines) {
		// The paper's GPT-4 script shows into a view name before any view
		// exists.
		b.add("# Display the results")
		b.add("tubeDisplay = Show(%s, 'RenderView1')", showVar)
		for _, ev := range extraShows {
			b.add("%sDisplay = Show(%s, 'RenderView1')", ev, ev)
		}
		b.add("renderView1 = GetActiveViewOrCreate('RenderView')")
	} else {
		b.add("# Set up the render view")
		b.add("renderView1 = GetActiveViewOrCreate('RenderView')")
		b.add("renderView1.ViewSize = [%d, %d]", w, h)
		b.blank()
		b.add("%sDisplay = Show(%s, renderView1)", showVar, showVar)
		for _, ev := range extraShows {
			b.add("%sDisplay = Show(%s, renderView1)", ev, ev)
		}
	}

	// --- display options ----------------------------------------------------
	if spec.HasOp(OpVolumeRender) {
		if halluc("volume") {
			// GPT-4's volume script never switches to volume rendering
			// (paper §IV-C): nothing emitted here.
			b.add("# (volume rendering representation not configured)")
		} else {
			b.add("%sDisplay.SetRepresentationType('Volume')", showVar)
			if slip("volume") {
				// Slip: wrong method name, examples cover only ColorBy.
				b.lines[len(b.lines)-1] = fmt.Sprintf("%sDisplay.SetRepresentation('Volume')", showVar)
			}
			array := orDefault(spec.ColorArray, "var0")
			b.add("ColorBy(%sDisplay, ['POINTS', '%s'])", showVar, array)
			b.add("%sDisplay.RescaleTransferFunctionToDataRange(True)", showVar)
		}
	}
	if spec.Wireframe {
		b.add("%sDisplay.SetRepresentationType('Wireframe')", showVar)
	}
	if spec.SolidColor != "" {
		if halluc("view") {
			// GPT-4 calls ColorBy on the filter proxy (paper §IV-B).
			b.add("ColorBy(%s, None)", current)
		} else {
			b.add("ColorBy(%sDisplay, None)", showVar)
		}
		b.add("%sDisplay.DiffuseColor = %s", showVar, colorRGB[spec.SolidColor])
		b.add("%sDisplay.LineWidth = 2.0", showVar)
	}
	if spec.ColorArray != "" && !spec.HasOp(OpVolumeRender) {
		targets := append([]string{showVar}, extraShows...)
		for _, tgt := range targets {
			b.add("ColorBy(%sDisplay, ('POINTS', '%s'))", tgt, spec.ColorArray)
		}
		for _, tgt := range targets {
			b.add("%sDisplay.RescaleTransferFunctionToDataRange(True)", tgt)
		}
	}
	b.blank()

	// --- camera -------------------------------------------------------------
	switch {
	case halluc("view") && p.SetsExplicitCamera:
		// Hand-written camera numbers instead of ResetCamera. For the
		// isosurface task the guess roughly frames the object (Fig. 2c's
		// "slightly different zoom"); for streamlines the guess sits
		// inside the data and crops the view (paper Table I right,
		// lines 40-42).
		if spec.TaskID() == "isosurface" {
			b.add("renderView1.CameraPosition = [0, 0, 4]")
			b.add("renderView1.CameraFocalPoint = [0, 0, 0]")
			b.add("renderView1.CameraViewUp = [0, 1, 0]")
		} else {
			b.add("renderView1.CameraPosition = [1, 0, 0]")
			b.add("renderView1.CameraFocalPoint = [0, 0, 0]")
			if spec.TaskID() == "slice-contour" {
				// The ViewUp hallucination from the paper (§IV-B).
				b.add("renderView1.ViewUp = [0.0, 1.0, 0.0]")
			} else {
				b.add("renderView1.CameraViewUp = [0, 0, 1]")
			}
		}
	default:
		switch spec.ViewDirection {
		case "isometric":
			if slip("view") && spec.HasOp(OpDelaunay) {
				b.add("renderView1.ResetActiveCameraToIsometric()")
			} else {
				b.add("renderView1.ApplyIsometricView()")
			}
		case "+X":
			b.add("renderView1.ResetActiveCameraToPositiveX()")
		case "-X":
			b.add("renderView1.ResetActiveCameraToNegativeX()")
		case "+Y":
			b.add("renderView1.ResetActiveCameraToPositiveY()")
		case "-Y":
			b.add("renderView1.ResetActiveCameraToNegativeY()")
		case "+Z":
			b.add("renderView1.ResetActiveCameraToPositiveZ()")
		case "-Z":
			b.add("renderView1.ResetActiveCameraToNegativeZ()")
		}
		b.add("renderView1.ResetCamera()")
		if halluc("view") && spec.TaskID() == "slice-contour" {
			b.add("renderView1.ViewUp = [0.0, 1.0, 0.0]")
		}
	}
	b.blank()

	// --- screenshot -----------------------------------------------------------
	b.add("# Save a screenshot of the result")
	if p.OmitsBackgroundOverride && halluc("screenshot") {
		b.add("SaveScreenshot('%s', renderView1,", shot)
		b.add("    ImageResolution=[%d, %d])", w, h)
	} else {
		b.add("SaveScreenshot('%s', renderView1,", shot)
		b.add("    ImageResolution=[%d, %d],", w, h)
		b.add("    OverrideColorPalette='WhiteBackground')")
	}

	script := b.String()
	return injectSyntaxDefect(script, p.SyntaxDefect)
}

// OmitsVolumeRepresentation reports the GPT-4 volume-rendering behaviour.
func (p Profile) OmitsVolumeRepresentation() bool { return p.Hallucinates }

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// joinFloats renders a value list with %g formatting.
func joinFloats(vals []float64, sep string) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return strings.Join(parts, sep)
}

// injectSyntaxDefect corrupts a script the way weaker models do,
// deterministically.
func injectSyntaxDefect(script, defect string) string {
	lines := strings.Split(script, "\n")
	switch defect {
	case "paren":
		// Drop the closing parenthesis of the Show call.
		for i, l := range lines {
			if strings.Contains(l, "Show(") && strings.HasSuffix(strings.TrimSpace(l), ")") {
				lines[i] = strings.TrimRight(strings.TrimSpace(l), ")")
				break
			}
		}
		return strings.Join(lines, "\n")
	case "fence":
		return "```python\n" + script + "```\n"
	case "indent":
		// Indent a deterministic mid-script statement (not a comment —
		// indented comments are legal Python).
		for i, l := range lines {
			if i > 4 && strings.Contains(l, "=") && !strings.HasPrefix(l, " ") &&
				!strings.HasPrefix(l, "#") && l != "" {
				lines[i] = "    " + l
				break
			}
		}
		return strings.Join(lines, "\n")
	case "string":
		for i, l := range lines {
			if strings.Contains(l, "SaveScreenshot('") {
				lines[i] = strings.Replace(l, "', renderView1,", ", renderView1,", 1)
				break
			}
		}
		return strings.Join(lines, "\n")
	}
	return script
}

// RenderStepPrompt renders the "generated prompt" of the paper's first
// stage: a step-by-step instruction list derived from the task spec. Its
// phrasing deliberately round-trips through ParseIntent.
func RenderStepPrompt(spec TaskSpec) string {
	var b strings.Builder
	b.WriteString("Generate a Python script using ParaView for performing visualization tasks based on the provided steps. ")
	if spec.InputFile != "" {
		fmt.Fprintf(&b, "This script utilizes ParaView to visualize data from the %s file. ", spec.InputFile)
	}
	b.WriteString("Requirements step-by-step:\n")
	if spec.InputFile != "" {
		fmt.Fprintf(&b, "- Read the file named %s given the path.\n", spec.InputFile)
	}
	seenClip := false
	seenThreshold := false
	for _, op := range spec.Ops {
		switch op.Kind {
		case OpIsosurface:
			switch {
			case len(op.Values) > 1:
				// Multi-value contours keep their value list even after a
				// threshold; the "thresholded data" suffix preserves the
				// composition order through the re-parse (isoMultiRe
				// tolerates the trailing clause).
				suffix := ""
				if seenThreshold {
					suffix = " through the thresholded data"
				}
				fmt.Fprintf(&b, "- Generate isosurfaces of the variable %s at the values %s%s.\n",
					orDefault(op.Array, "var0"), joinFloats(op.Values, " and "), suffix)
			case seenThreshold:
				// Phrase the contour over "the thresholded data" so
				// re-parsing the rendered prompt preserves the
				// composition order (the thresholdBeforeContour reorder
				// keys on that wording).
				fmt.Fprintf(&b, "- Take a contour of the variable %s at the value %g through the thresholded data.\n",
					orDefault(op.Array, "var0"), op.Value)
			default:
				fmt.Fprintf(&b, "- Generate an isosurface of the variable %s at value %g.\n",
					orDefault(op.Array, "var0"), op.Value)
			}
		case OpSlice:
			pair := map[string]string{"x": "y-z", "y": "x-z", "z": "x-y"}[op.Axis]
			// After a clip, phrase the slice over "the clipped data" so
			// re-parsing the rendered prompt preserves the composition
			// order (clipBeforeSlice keys on that wording).
			target := "the volume"
			if seenClip {
				target = "the clipped data"
			}
			fmt.Fprintf(&b, "- Slice %s in a plane parallel to the %s plane at %s=%g.\n",
				target, pair, op.Axis, op.Offset)
		case OpContourLines:
			fmt.Fprintf(&b, "- Take a contour through the slice at the value %g.\n", op.Value)
		case OpThreshold:
			fmt.Fprintf(&b, "- Threshold the data by the %s array between %g and %g.\n",
				orDefault(op.Array, "Temp"), op.Offset, op.Value)
			seenThreshold = true
		case OpVolumeRender:
			b.WriteString("- Generate a volume rendering using the default transfer function.\n")
		case OpDelaunay:
			b.WriteString("- Generate a 3d Delaunay triangulation of the dataset.\n")
		case OpClip:
			sign := "+"
			if op.KeepNegative {
				sign = "-"
			}
			pair := map[string]string{"x": "y-z", "y": "x-z", "z": "x-y"}[op.Axis]
			fmt.Fprintf(&b, "- Clip the data with a %s plane at %s=%g, keeping the %s%s half.\n",
				pair, op.Axis, op.Offset, sign, op.Axis)
			seenClip = true
		case OpStreamlines:
			fmt.Fprintf(&b, "- Trace streamlines of the %s data array seeded from a default point cloud.\n",
				orDefault(op.Array, "V"))
		case OpTube:
			b.WriteString("- Render the streamlines with tubes.\n")
		case OpGlyph:
			// Only mention streamlines when the spec has them: the rendered
			// prompt round-trips through ParseIntent, and the word
			// "streamlines" would otherwise conjure a StreamTracer op the
			// user never asked for.
			target := "the dataset"
			if spec.HasOp(OpStreamlines) {
				target = "the streamlines"
			}
			fmt.Fprintf(&b, "- Add %s glyphs to %s.\n", strings.ToLower(op.GlyphType), target)
		}
	}
	if spec.SolidColor != "" {
		fmt.Fprintf(&b, "- Color the contour %s.\n", spec.SolidColor)
	}
	if spec.ColorArray != "" {
		if spec.HasOp(OpStreamlines) {
			fmt.Fprintf(&b, "- Color the streamlines and glyphs by the %s data array.\n", spec.ColorArray)
		} else {
			// Same round-trip concern as the glyph step above.
			fmt.Fprintf(&b, "- Color the result by the %s data array.\n", spec.ColorArray)
		}
	}
	if spec.Wireframe {
		b.WriteString("- Render the image as a wireframe.\n")
	}
	switch spec.ViewDirection {
	case "isometric":
		b.WriteString("- Rotate the view to an isometric direction.\n")
	case "":
	default:
		fmt.Fprintf(&b, "- View the result in the %s direction.\n", spec.ViewDirection)
	}
	if spec.Width > 0 {
		fmt.Fprintf(&b, "- Configure the rendered view resolution to %d x %d pixels.\n",
			spec.Width, spec.Height)
	}
	if spec.Screenshot != "" {
		fmt.Fprintf(&b, "- Save a screenshot of the rendered view to the filename %s.\n", spec.Screenshot)
	}
	return b.String()
}
