package llm

import (
	"strings"
	"testing"

	"chatvis/internal/errext"
	"chatvis/internal/plan"
)

// TestStatementAwareDeletion: the unknown-error fallback must delete the
// whole statement even when the report locates a continuation line of a
// multi-line call (satellite regression: the old code deleted the single
// line and left dangling syntax).
func TestStatementAwareDeletion(t *testing.T) {
	multi := strings.Join([]string{
		"from paraview.simple import *",
		"reader = ExodusIIReader(FileName='disk.ex2')",
		"streamTracer = StreamTracer(registrationName='ST', Input=reader,",
		"                            SeedType='Point Cloud')",
		"tube = Tube(Input=streamTracer)",
		"",
	}, "\n")
	cases := []struct {
		name      string
		script    string
		line      int
		wantGone  []string
		wantKept  []string
		wantValid bool // result must still parse
	}{
		{
			name: "continuation line deletes whole call", script: multi, line: 4,
			wantGone:  []string{"StreamTracer", "SeedType"},
			wantKept:  []string{"reader =", "tube ="},
			wantValid: true,
		},
		{
			name: "opening line deletes whole call", script: multi, line: 3,
			wantGone:  []string{"StreamTracer", "SeedType"},
			wantKept:  []string{"reader =", "tube ="},
			wantValid: true,
		},
		{
			name: "single-line statement deletes only itself", script: multi, line: 2,
			wantGone:  []string{"ExodusIIReader"},
			wantKept:  []string{"StreamTracer", "SeedType", "tube ="},
			wantValid: true,
		},
		{
			name: "bracket-scan fallback on unparsable script",
			script: strings.Join([]string{
				"    x = 1", // stray indent: the parser gives up, the scan takes over
				"reader = ExodusIIReader(FileName='disk.ex2',",
				"                        Foo=1)",
				"tube = Tube()",
				"",
			}, "\n"),
			line:     3,
			wantGone: []string{"ExodusIIReader", "Foo=1"},
			wantKept: []string{"tube ="},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Repair(tc.script, []errext.ErrorReport{{Kind: "ValueError", Line: tc.line}}, 1)
			for _, g := range tc.wantGone {
				if strings.Contains(got, g) {
					t.Errorf("%q should be gone:\n%s", g, got)
				}
			}
			for _, k := range tc.wantKept {
				if !strings.Contains(got, k) {
					t.Errorf("%q should survive:\n%s", k, got)
				}
			}
			if tc.wantValid {
				if _, err := plan.Compile(got, nil); err != nil {
					t.Errorf("repaired script no longer parses: %v\n%s", err, got)
				}
			}
		})
	}
}

// TestRepairPlanFixesDiagnosticsInOneRound: every hallucination the
// knowledge table covers is fixed from structured diagnostics alone — no
// engine run, one round.
func TestRepairPlanFixesDiagnosticsInOneRound(t *testing.T) {
	script := strings.Join([]string{
		"from paraview.simple import *",
		"clip1 = Clip(registrationName='C', ClipType='Plane')",
		"clip1.InsideOut = 1",
		"tube = Tube(Input=clip1)",
		"tube.NumberOfSides = 12",
		"glyph = Glyph(Input=clip1)",
		"glyph.Scalars = ['POINTS', 'Temp']",
		"threshold1 = Threshold(Input=clip1)",
		"threshold1.ThresholdRange = [500, 900]",
		"",
	}, "\n")
	diags := []plan.Diagnostic{
		{Kind: plan.DiagUnknownProperty, Severity: plan.SevError, Class: "Clip", Property: "InsideOut", Line: 3},
		{Kind: plan.DiagUnknownProperty, Severity: plan.SevError, Class: "Tube", Property: "NumberOfSides", Line: 5},
		{Kind: plan.DiagUnknownProperty, Severity: plan.SevError, Class: "Glyph", Property: "Scalars", Line: 7},
		{Kind: plan.DiagUnknownProperty, Severity: plan.SevError, Class: "Threshold", Property: "ThresholdRange", Line: 9},
	}
	got := RepairPlan(script, diags, 2)
	for _, want := range []string{"clip1.Invert = 1", "tube.NumberofSides = 12",
		"threshold1.LowerThreshold = 500", "threshold1.UpperThreshold = 900"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing fix %q in:\n%s", want, got)
		}
	}
	for _, gone := range []string{"InsideOut", "glyph.Scalars", "ThresholdRange"} {
		if strings.Contains(got, gone) {
			t.Errorf("%q should be fixed away:\n%s", gone, got)
		}
	}
	// Skill 0 cannot use the diagnostics.
	if RepairPlan(script, diags, 0) != script {
		t.Error("skill 0 must return the script unchanged")
	}
	// Skill 1 deletes offending statements instead of fixing them.
	del := RepairPlan(script, diags, 1)
	for _, gone := range []string{"InsideOut", "NumberOfSides", "ThresholdRange"} {
		if strings.Contains(del, gone) {
			t.Errorf("skill 1 should delete %q:\n%s", gone, del)
		}
	}
}

// TestRepairPlanLineAnchorsResolveAgainstPristineLines: a
// content-anchored deletion earlier in the diagnostics list must not
// shift a later line-anchored deletion onto an innocent statement.
func TestRepairPlanLineAnchorsResolveAgainstPristineLines(t *testing.T) {
	script := strings.Join([]string{
		"from paraview.simple import *",              // 1
		"contour1 = Contour(Input=reader)",           // 2
		"contour1.BogusProp = 1",                     // 3
		"view = GetActiveViewOrCreate('RenderView')", // 4
		"d = Show(contour1, view)",                   // 5
		"bad = UnknownThing()",                       // 6
		"keep = Tube(Input=contour1)",                // 7
		"",
	}, "\n")
	diags := []plan.Diagnostic{
		// Content-anchored: removes line 3 by needle.
		{Kind: plan.DiagUnknownProperty, Severity: plan.SevError, Class: "Contour", Property: "BogusProp", Line: 3},
		// Line-anchored (no property): must delete line 6, not line 7.
		{Kind: plan.DiagUnknownClass, Severity: plan.SevError, Line: 6},
	}
	got := RepairPlan(script, diags, 1)
	if strings.Contains(got, "BogusProp") || strings.Contains(got, "UnknownThing") {
		t.Errorf("offending statements survived:\n%s", got)
	}
	if !strings.Contains(got, "keep = Tube") {
		t.Errorf("innocent statement deleted by a shifted line anchor:\n%s", got)
	}
}

// TestRepairPlanSkillOneDeletesMarkerDiagnostics: marker properties
// (ViewName) never appear as ".Prop" script text; skill 1 must fall
// back to the diagnostic's line anchor instead of silently repairing
// nothing.
func TestRepairPlanSkillOneDeletesMarkerDiagnostics(t *testing.T) {
	script := strings.Join([]string{
		"from paraview.simple import *",
		"tube = Tube(registrationName='T')",
		"tubeDisplay = Show(tube, 'RenderView1')",
		"keep = Glyph(Input=tube)",
		"",
	}, "\n")
	got := RepairPlan(script, []plan.Diagnostic{
		{Kind: plan.DiagViewByName, Severity: plan.SevError, Property: plan.PropViewName, Line: 3},
	}, 1)
	if got == script {
		t.Fatalf("skill 1 repaired nothing:\n%s", got)
	}
	if strings.Contains(got, "'RenderView1'") {
		t.Errorf("offending Show survived:\n%s", got)
	}
	if !strings.Contains(got, "keep = Glyph") {
		t.Errorf("innocent statement deleted:\n%s", got)
	}
}

// TestRepairPlanFixesViewByName: the Show-by-view-name diagnostic gets
// the same view-creation fix the runtime TypeError path applies.
func TestRepairPlanFixesViewByName(t *testing.T) {
	script := strings.Join([]string{
		"from paraview.simple import *",
		"tube = Tube(registrationName='T')",
		"tubeDisplay = Show(tube, 'RenderView1')",
		"",
	}, "\n")
	got := RepairPlan(script, []plan.Diagnostic{
		{Kind: plan.DiagViewByName, Severity: plan.SevError, Line: 3},
	}, 2)
	if !strings.Contains(got, "renderView1 = GetActiveViewOrCreate('RenderView')") {
		t.Errorf("missing view creation:\n%s", got)
	}
	if !strings.Contains(got, "Show(tube, renderView1)") {
		t.Errorf("name reference not retargeted:\n%s", got)
	}
}

// TestMultiValueContourSurvivesThresholdRewrite: a multi-value contour
// after a threshold keeps its full isovalue list through the
// prompt-rewrite round trip (regression: the thresholded phrasing used
// to drop every value but the first).
func TestMultiValueContourSurvivesThresholdRewrite(t *testing.T) {
	spec := TaskSpec{
		InputFile: "disk.ex2",
		Ops: []Op{
			{Kind: OpRead},
			{Kind: OpThreshold, Array: "Temp", Offset: 300, Value: 900},
			{Kind: OpIsosurface, Array: "Temp", Value: 400, Values: []float64{400, 600}},
		},
	}
	rendered := RenderStepPrompt(spec)
	if !strings.Contains(rendered, "values 400 and 600") {
		t.Fatalf("rewritten prompt lost the isovalue list:\n%s", rendered)
	}
	reparsed := ParseIntent(rendered)
	iso, ok := reparsed.FindOp(OpIsosurface)
	if !ok || len(iso.Values) != 2 || iso.Values[0] != 400 || iso.Values[1] != 600 {
		t.Errorf("re-parsed iso op = %+v", iso)
	}
	// The composition order survives too: the threshold still feeds the
	// contour after the round trip.
	thrAt, isoAt := -1, -1
	for i, op := range reparsed.Ops {
		if op.Kind == OpThreshold && thrAt < 0 {
			thrAt = i
		}
		if op.Kind == OpIsosurface && isoAt < 0 {
			isoAt = i
		}
	}
	if thrAt < 0 || isoAt < 0 || thrAt > isoAt {
		t.Errorf("composition order lost: ops = %+v", reparsed.Ops)
	}
}

// TestWritePlanCoversOps: the intended plan mirrors the writer's stage
// structure for a composite spec.
func TestWritePlanCoversOps(t *testing.T) {
	spec := TaskSpec{
		InputFile:  "disk.ex2",
		Screenshot: "out.png",
		Width:      320, Height: 180,
		ColorArray:    "Temp",
		ViewDirection: "+X",
		Ops: []Op{
			{Kind: OpRead},
			{Kind: OpStreamlines, Array: "V"},
			{Kind: OpTube},
			{Kind: OpGlyph, GlyphType: "Cone"},
		},
	}
	p := WritePlan(spec)
	for _, class := range []string{"ExodusIIReader", "StreamTracer", "Tube", "Glyph", plan.ViewClass, plan.ScreenshotClass} {
		if p.FindClass(class) < 0 {
			t.Errorf("plan missing %s stage", class)
		}
	}
	edges := strings.Join(p.PipelineEdges(), ",")
	for _, want := range []string{"ExodusIIReader->StreamTracer", "StreamTracer->Tube", "StreamTracer->Glyph"} {
		if !strings.Contains(edges, want) {
			t.Errorf("missing edge %s in %s", want, edges)
		}
	}
	displays := 0
	for _, st := range p.Stages {
		if st.Kind == plan.StageDisplay {
			displays++
			if v, ok := st.Props[plan.PropColorArray]; !ok || v.List[1].Str != "Temp" {
				t.Errorf("display not colored by Temp: %#v", st.Props)
			}
		}
	}
	if displays != 2 { // tube + glyph
		t.Errorf("displays = %d, want 2", displays)
	}
}
