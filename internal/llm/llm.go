package llm

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"chatvis/internal/errext"
	"chatvis/internal/plan"
)

// Request is one chat completion request: a system prompt (instructions
// plus any example snippets) and the user content.
type Request struct {
	System string
	User   string

	// Task classifies what the call asks the model to do (see TaskKind).
	// A routing client selects the serving model by task; untagged
	// requests fall through to the configured model. Simulated backends
	// ignore it — they dispatch on prompt markers, like a real model
	// reads its prompt.
	Task TaskKind
	// Escalation is the caller's failure count for this logical step: 0
	// for a first attempt, incremented each time a validation/repair
	// round has to re-ask. A routing client walks one rung up its
	// strength ladder per escalation, bounded by the task's budget.
	Escalation int
}

// Client is the LLM interface the assistant talks to — shaped like a
// chat-completion API so a network-backed implementation could be dropped
// in where the paper used the OpenAI Python API. Complete honours the
// context (cancellation, deadlines) and returns a Response carrying
// usage, latency and cache provenance alongside the text, so middlewares
// (WithCache, WithRetry, WithMetrics, WithRateLimit) and the traced
// assistant sessions have something to hang observability on.
type Client interface {
	// Name identifies the model (e.g. "gpt-4").
	Name() string
	// Complete returns the model's response to one chat exchange.
	Complete(ctx context.Context, req Request) (Response, error)
}

// Mode markers the simulated models key their behaviour on. The assistant
// embeds these phrases in its prompts; they match how the paper describes
// each stage.
const (
	// rewriteMarker appears in the prompt-generation stage.
	rewriteMarker = "step-by-step"
	// exampleMarker introduces few-shot snippets in the system prompt.
	exampleMarker = "Example code snippets"
	// repairMarker appears in the correction-loop prompt.
	repairMarker = "fix the code"
	// scriptOpen/scriptClose delimit the previous script in repair
	// prompts.
	scriptOpen  = "--- SCRIPT ---"
	scriptClose = "--- END SCRIPT ---"
	// errorsOpen/errorsClose delimit the extracted error messages.
	errorsOpen  = "--- ERRORS ---"
	errorsClose = "--- END ERRORS ---"
)

// BuildRepairUser formats the correction-loop user prompt the assistant
// sends: the failing script plus the extracted error messages.
func BuildRepairUser(script, errors string) string {
	return fmt.Sprintf("The following ParaView Python script failed. Please fix the code so it runs correctly and regenerate the full script.\n%s\n%s\n%s\n%s\n%s\n%s\n",
		scriptOpen, script, scriptClose, errorsOpen, errors, errorsClose)
}

// SimModel is a deterministic simulated LLM with a competence profile.
type SimModel struct {
	P Profile
}

// Name implements Client.
func (m *SimModel) Name() string { return m.P.Name }

// Complete implements Client, dispatching on the request's stage.
func (m *SimModel) Complete(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	sys := req.System
	user := req.User
	var text string
	switch {
	case strings.Contains(user, planEditOpen):
		// Conversational plan editing: the current plan as JSON plus
		// either a follow-up utterance (PlanDelta) or validation
		// diagnostics (pre-execution plan repair). The response is the
		// full target plan as JSON.
		cur, err := ParsePlanText(between(user, planEditOpen, planEditClose))
		switch {
		case err != nil:
			text = "{}"
		case strings.Contains(user, planDiagOpen):
			var diags []plan.Diagnostic
			_ = json.Unmarshal([]byte(between(user, planDiagOpen, planDiagClose)), &diags)
			text = encodePlanText(RepairPlanDoc(cur, diags, m.P.RepairSkill))
		default:
			utter := between(user, editReqOpen, editReqClose)
			text = encodePlanText(ApplyEdits(cur, ParseEditIntent(utter)))
		}
	case strings.Contains(user, planDiagOpen):
		// Pre-execution repair: structured plan diagnostics instead of a
		// traceback — the validation-first signal of the plan IR.
		script := between(user, scriptOpen, scriptClose)
		var diags []plan.Diagnostic
		_ = json.Unmarshal([]byte(between(user, planDiagOpen, planDiagClose)), &diags)
		text = RepairPlan(strings.TrimSpace(script)+"\n", diags, m.P.RepairSkill)
	case strings.Contains(user, scriptOpen) || strings.Contains(sys+user, repairMarker):
		script := between(user, scriptOpen, scriptClose)
		errText := between(user, errorsOpen, errorsClose)
		reports := errext.Extract(errText)
		text = Repair(strings.TrimSpace(script)+"\n", reports, m.P.RepairSkill)
	case strings.Contains(sys, rewriteMarker) && !strings.Contains(sys, exampleMarker):
		// Prompt-generation stage: rewrite the request into steps.
		spec := ParseIntent(user)
		text = RenderStepPrompt(spec)
	default:
		// Script generation. Grounding is op-granular: only the
		// operations the example snippets (or a full API reference)
		// demonstrate are generated with the canonical API.
		spec := ParseIntent(user)
		g := GroundingFromText(sys)
		text = WriteScript(spec, m.P, g)
	}
	return NewResponse(m.P.Name, req, text, start), nil
}

// encodePlanText renders a plan as the JSON payload of a model response.
func encodePlanText(p *plan.Plan) string {
	blob, err := p.Encode()
	if err != nil {
		return "{}"
	}
	return string(blob)
}

func between(s, open, close string) string {
	i := strings.Index(s, open)
	if i < 0 {
		return ""
	}
	s = s[i+len(open):]
	j := strings.Index(s, close)
	if j < 0 {
		return s
	}
	return s[:j]
}

// simProfiles describes the models the paper evaluates, plus an "oracle"
// used for testing and ablations. Competence parameters are calibrated to
// Table II and the per-task failure descriptions in §IV. Each profile is
// registered as a backend in DefaultRegistry.
var simProfiles = map[string]Profile{
	"gpt-4": {
		Name:                    "gpt-4",
		Hallucinates:            true, // when not grounded by examples
		DetailSlips:             true, // exercised under ChatVis grounding
		SetsExplicitCamera:      true,
		OmitsBackgroundOverride: true,
		RepairSkill:             2,
	},
	"gpt-3.5-turbo": {
		Name:         "gpt-3.5-turbo",
		SyntaxDefect: "paren",
		Hallucinates: true,
		RepairSkill:  1,
	},
	"llama3-8b": {
		Name:         "llama3-8b",
		SyntaxDefect: "fence",
		Hallucinates: true,
		RepairSkill:  0,
	},
	"codellama-7b": {
		Name:         "codellama-7b",
		SyntaxDefect: "indent",
		Hallucinates: true,
		RepairSkill:  0,
	},
	"codegemma": {
		Name:         "codegemma",
		SyntaxDefect: "string",
		Hallucinates: true,
		RepairSkill:  0,
	},
	"oracle": {
		Name:        "oracle",
		RepairSkill: 2,
	},
}

// PaperModels lists the unassisted comparison models in the order of the
// paper's Table II columns.
func PaperModels() []string {
	return []string{"gpt-4", "gpt-3.5-turbo", "llama3-8b", "codellama-7b", "codegemma"}
}

// SimProfiles returns the built-in simulated model profiles, sorted by
// name. Test sweeps (e.g. the scenario × profile plan round-trip suite)
// iterate the full competence space through this.
func SimProfiles() []Profile {
	names := make([]string, 0, len(simProfiles))
	for name := range simProfiles {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Profile, 0, len(names))
	for _, name := range names {
		out = append(out, simProfiles[name])
	}
	return out
}
