package llm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory constructs a Client for a registered backend name.
type Factory func() (Client, error)

// Registry maps model names to client factories. It replaces the old
// package-level profiles map: callers can register custom backends (a
// network client, a recorded-transcript replayer, an instrumented stub)
// next to the built-in simulated models. A Registry is safe for
// concurrent use; the name listing is computed once per mutation, not on
// every read.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
	// names caches the sorted name list; rebuilt on Register so Names()
	// is an allocation-free read under RLock.
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: map[string]Factory{}}
}

// Register adds (or replaces) a backend under name.
func (r *Registry) Register(name string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.factories[name]; !exists {
		// Rebuild into a fresh slice: readers may still be iterating the
		// previously returned listing, so never mutate it in place.
		names := make([]string, 0, len(r.names)+1)
		names = append(names, r.names...)
		names = append(names, name)
		sort.Strings(names)
		r.names = names
	}
	r.factories[name] = f
}

// New builds a client for the named backend.
func (r *Registry) New(name string) (Client, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("llm: unknown model %q (have %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return f()
}

// Names lists the registered backends, sorted. The returned slice is the
// registry's cached listing — treat it as read-only.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names
}

// DefaultRegistry holds the built-in simulated models (the paper's five
// evaluation LLMs plus the testing oracle). Custom backends registered
// here become visible to NewModel and the CLIs.
var DefaultRegistry = func() *Registry {
	r := NewRegistry()
	for name, p := range simProfiles {
		p := p
		r.Register(name, func() (Client, error) {
			return &SimModel{P: p}, nil
		})
	}
	return r
}()

// NewModel returns a client for the named backend from DefaultRegistry.
func NewModel(name string) (Client, error) {
	return DefaultRegistry.New(name)
}

// ModelNames lists the backends in DefaultRegistry, sorted. The listing
// is cached by the registry — no per-call sort.
func ModelNames() []string {
	return DefaultRegistry.Names()
}
