package llm

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestRegistryRegisterAndNew(t *testing.T) {
	r := NewRegistry()
	r.Register("custom", func() (Client, error) {
		return &ClientFunc{ModelName: "custom", Fn: func(ctx context.Context, req Request) (Response, error) {
			return Response{Text: "hi", Model: "custom", Attempts: 1}, nil
		}}, nil
	})
	c, err := r.New("custom")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Complete(context.Background(), Request{User: "u"})
	if err != nil || resp.Text != "hi" {
		t.Fatalf("resp = %+v err = %v", resp, err)
	}
	if _, err := r.New("missing"); err == nil {
		t.Error("unknown backend should error")
	}
}

func TestRegistryNamesCachedAndSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Register(n, func() (Client, error) { return nil, nil })
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Errorf("names = %v", names)
	}
	// Re-registering an existing name must not duplicate the listing.
	r.Register("alpha", func() (Client, error) { return nil, nil })
	if got := r.Names(); len(got) != 3 {
		t.Errorf("names after re-register = %v", got)
	}
	// The cached slice is stable across reads (no per-call re-sort
	// allocation).
	a, b := r.Names(), r.Names()
	if &a[0] != &b[0] {
		t.Error("Names should return the cached listing, not a fresh sort")
	}
}

func TestRegistryConcurrentReadersAndWriters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			r.Register(fmt.Sprintf("model-%d", i), func() (Client, error) {
				return &SimModel{P: Profile{Name: "x"}}, nil
			})
		}(i)
		go func(i int) {
			defer wg.Done()
			// Iterate the returned listing: Register must never mutate a
			// slice a reader already holds.
			for _, n := range r.Names() {
				if n == "" {
					t.Error("empty name in listing")
				}
			}
			_, _ = r.New(fmt.Sprintf("model-%d", i))
		}(i)
	}
	wg.Wait()
	if got := len(r.Names()); got != 8 {
		t.Errorf("registered = %d, want 8", got)
	}
}

func TestDefaultRegistryHasSimModels(t *testing.T) {
	for _, name := range PaperModels() {
		c, err := DefaultRegistry.New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("name = %q, want %q", c.Name(), name)
		}
	}
	names := ModelNames()
	if len(names) < 6 {
		t.Errorf("ModelNames = %v", names)
	}
	// Cached listing: two calls return the identical backing array.
	a, b := ModelNames(), ModelNames()
	if &a[0] != &b[0] {
		t.Error("ModelNames should be served from the registry cache")
	}
}
