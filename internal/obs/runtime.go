package obs

import (
	"runtime"
	"runtime/debug"
)

// RuntimeStats is a point-in-time snapshot of the Go runtime for the
// /metrics surface — goroutines, heap, and GC activity.
type RuntimeStats struct {
	Goroutines     int
	HeapAllocBytes uint64
	HeapSysBytes   uint64
	HeapObjects    uint64
	GCCycles       uint32
	GCPauseNsTotal uint64
	NextGCBytes    uint64
}

// ReadRuntimeStats samples the runtime. ReadMemStats briefly
// stops the world; callers scrape it once per /metrics request, which
// is well within budget.
func ReadRuntimeStats() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: m.HeapAlloc,
		HeapSysBytes:   m.HeapSys,
		HeapObjects:    m.HeapObjects,
		GCCycles:       m.NumGC,
		GCPauseNsTotal: m.PauseTotalNs,
		NextGCBytes:    m.NextGC,
	}
}

// BuildInfo identifies the running binary for the
// chatvis_build_info{version,go_version,node_id} gauge.
type BuildInfo struct {
	Version   string
	GoVersion string
}

// ReadBuildInfo resolves the binary's version: an explicit version
// (set via -ldflags "-X main.version=...") wins, else the module
// version embedded by the toolchain, else "devel".
func ReadBuildInfo(explicit string) BuildInfo {
	bi := BuildInfo{Version: explicit, GoVersion: runtime.Version()}
	if bi.Version != "" {
		return bi
	}
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Version != "" && info.Main.Version != "(devel)" {
		bi.Version = info.Main.Version
		return bi
	}
	bi.Version = "devel"
	return bi
}
