package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	h := sc.Traceparent()
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own output", h)
	}
	if got != sc {
		t.Fatalf("round trip mismatch: %+v != %+v", got, sc)
	}
	for _, bad := range []string{
		"", "00-xyz-abc-01", "01-" + sc.TraceID + "-" + sc.SpanID + "-01",
		"00-" + strings.Repeat("0", 32) + "-" + sc.SpanID + "-01",
		"00-" + sc.TraceID + "-" + sc.SpanID, // 3 parts
		"00-" + strings.ToUpper(sc.TraceID) + "-" + sc.SpanID + "-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", bad)
		}
	}
}

func TestStartWithoutTracerIsInert(t *testing.T) {
	ctx, span := Start(context.Background(), "noop")
	if span != nil {
		t.Fatalf("expected nil span without tracer")
	}
	// All nil-span methods must be safe.
	span.SetAttr("k", "v")
	span.SetError(fmt.Errorf("x"))
	span.Fail("y")
	span.End()
	if id := TraceID(ctx); id != "" {
		t.Fatalf("untraced ctx has trace id %q", id)
	}
}

func TestSpanTreeAndRetention(t *testing.T) {
	tr := NewTracer("n0", 8)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root")
	cctx, child := Start(ctx, "child")
	child.SetAttr("model", "oracle")
	child.End()
	_ = cctx
	root.End()

	id := root.Context().TraceID
	td, ok := tr.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(td.Spans))
	}
	if td.Root != "root" {
		t.Fatalf("root span = %q", td.Root)
	}
	var childData SpanData
	for _, s := range td.Spans {
		if s.Name == "child" {
			childData = s
		}
	}
	if childData.ParentID != root.Context().SpanID {
		t.Fatalf("child parent = %q, want %q", childData.ParentID, root.Context().SpanID)
	}
	if childData.Attrs["model"] != "oracle" {
		t.Fatalf("child attrs = %v", childData.Attrs)
	}
	if childData.Node != "n0" {
		t.Fatalf("child node = %q", childData.Node)
	}
}

func TestTracerReopensTraceForAsyncSpans(t *testing.T) {
	tr := NewTracer("n0", 8)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "http POST /v1/jobs")
	detached := Detach(ctx)
	root.End() // HTTP request returns 202 before the job runs

	_, work := Start(detached, "job.execute")
	work.SetError(fmt.Errorf("boom"))
	work.End()

	td, ok := tr.Get(root.Context().TraceID)
	if !ok {
		t.Fatalf("trace missing after async reopen")
	}
	if len(td.Spans) != 2 {
		t.Fatalf("want 2 spans after reopen, got %d", len(td.Spans))
	}
	if !td.Errored {
		t.Fatalf("trace should be errored")
	}
	if tr.Len() != 1 {
		t.Fatalf("trace counted %d times in finished ring", tr.Len())
	}
}

func TestRetentionPrefersSlowAndErrored(t *testing.T) {
	tr := NewTracer("n0", 4)
	ctx := WithTracer(context.Background(), tr)

	mk := func(name string, dur time.Duration, fail bool) string {
		_, sp := Start(ctx, name)
		sp.mu.Lock()
		sp.data.Start = time.Now().Add(-dur) // backdate instead of sleeping
		sp.mu.Unlock()
		if fail {
			sp.Fail("induced")
		}
		sp.End()
		return sp.Context().TraceID
	}

	slow := mk("slow", 5*time.Second, false)
	errored := mk("errored", time.Millisecond, true)
	for i := 0; i < 20; i++ {
		mk("fast", time.Millisecond, false)
	}

	if _, ok := tr.Get(slow); !ok {
		t.Errorf("slow trace evicted before fast ones")
	}
	if _, ok := tr.Get(errored); !ok {
		t.Errorf("errored trace evicted before fast ones")
	}
	if n := tr.Len(); n > 4 {
		t.Errorf("retained %d traces, capacity 4", n)
	}
	sums := tr.List(0, true, 0)
	if len(sums) != 1 || sums[0].TraceID != errored {
		t.Errorf("errors-only list = %+v", sums)
	}
	if got := tr.List(time.Second, false, 0); len(got) != 1 || got[0].TraceID != slow {
		t.Errorf("min-duration list = %+v", got)
	}
}

func TestMiddlewarePropagation(t *testing.T) {
	tr := NewTracer("n1", 8)
	var sawTrace, sawParent string
	h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawTrace = TraceID(r.Context())
		sawParent = Traceparent(r.Context())
		w.WriteHeader(http.StatusTeapot)
	}))

	// Incoming traceparent joins the existing trace.
	up := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	req := httptest.NewRequest("GET", "/v1/jobs/abc", nil)
	req.Header.Set(TraceparentHeader, up.Traceparent())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if sawTrace != up.TraceID {
		t.Fatalf("handler trace %q, want inherited %q", sawTrace, up.TraceID)
	}
	if got := rec.Header().Get(TraceHeader); got != up.TraceID {
		t.Fatalf("%s header = %q, want %q", TraceHeader, got, up.TraceID)
	}
	sc, ok := ParseTraceparent(sawParent)
	if !ok || sc.TraceID != up.TraceID || sc.SpanID == up.SpanID {
		t.Fatalf("handler traceparent %q should be a new span on trace %s", sawParent, up.TraceID)
	}

	td, ok := tr.Get(up.TraceID)
	if !ok || len(td.Spans) != 1 {
		t.Fatalf("server span not recorded: %+v", td)
	}
	if td.Spans[0].Attrs["http.status"] != "418" {
		t.Fatalf("span attrs = %v", td.Spans[0].Attrs)
	}
}

func TestMiddlewareFlusherPassthrough(t *testing.T) {
	tr := NewTracer("n1", 8)
	h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Errorf("middleware writer does not implement http.Flusher; SSE would break")
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/sessions/x/events", nil))
}

func TestGraftPreservesCancellation(t *testing.T) {
	tr := NewTracer("n0", 8)
	src := WithTenant(WithTracer(context.Background(), tr), "acme")
	src, sp := Start(src, "root")
	defer sp.End()

	base, cancel := context.WithCancel(context.Background())
	g := Graft(base, src)
	if TraceID(g) != sp.Context().TraceID {
		t.Fatalf("graft lost trace identity")
	}
	if TenantFrom(g) != "acme" {
		t.Fatalf("graft lost tenant")
	}
	cancel()
	if g.Err() == nil {
		t.Fatalf("grafted ctx must follow dst cancellation")
	}
}

func TestLoggerFields(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "info", "json")
	tr := NewTracer("n2", 8)
	ctx := WithLogger(WithTenant(WithTracer(context.Background(), tr), "acme"), logger)
	ctx, sp := Start(ctx, "op")
	Log(ctx).Info("hello")
	sp.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	if rec["trace_id"] != sp.Context().TraceID || rec["node"] != "n2" || rec["tenant"] != "acme" {
		t.Fatalf("log fields = %v", rec)
	}
	// Debug suppressed at info level.
	buf.Reset()
	Log(ctx).Debug("quiet")
	if buf.Len() != 0 {
		t.Fatalf("debug line emitted at info level: %q", buf.String())
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer("n0", 32)
	root := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx, sp := Start(root, "op")
				_, c := Start(ctx, "child")
				c.SetAttr("i", i)
				c.End()
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	if tr.Len() == 0 || tr.Len() > 32 {
		t.Fatalf("retained %d traces, capacity 32", tr.Len())
	}
}

func TestRuntimeStatsAndBuildInfo(t *testing.T) {
	rs := ReadRuntimeStats()
	if rs.Goroutines <= 0 || rs.HeapAllocBytes == 0 {
		t.Fatalf("implausible runtime stats: %+v", rs)
	}
	bi := ReadBuildInfo("v1.2.3")
	if bi.Version != "v1.2.3" || !strings.HasPrefix(bi.GoVersion, "go") {
		t.Fatalf("build info = %+v", bi)
	}
	if ReadBuildInfo("").Version == "" {
		t.Fatalf("empty fallback version")
	}
}
