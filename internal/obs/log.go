package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"strings"
)

// sLogger wraps the slog logger carried on a context so Graft can
// identify it without colliding with other context values.
type sLogger struct{ l *slog.Logger }

// WithLogger attaches a structured logger to the context; Log below
// this point enriches it with trace/span/tenant fields.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey, &sLogger{l: l})
}

// Log returns the context's logger (slog.Default when none is set)
// annotated with the context's trace_id, span_id, tenant, and the
// tracer's node — the fields that let a log line be joined to its
// trace.
func Log(ctx context.Context) *slog.Logger {
	l := slog.Default()
	if sl, ok := ctx.Value(loggerKey).(*sLogger); ok && sl != nil {
		l = sl.l
	}
	if sc := SpanContextFrom(ctx); sc.Valid() {
		l = l.With("trace_id", sc.TraceID, "span_id", sc.SpanID)
	}
	if t := TracerFrom(ctx); t != nil && t.node != "" {
		l = l.With("node", t.node)
	}
	if tn := TenantFrom(ctx); tn != "" {
		l = l.With("tenant", tn)
	}
	return l
}

// ParseLevel maps a -log-level flag value to a slog.Level, defaulting
// to Info on unknown input.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds the daemon's root logger from the -log-level and
// -log-format flags: format "json" selects slog JSON output, anything
// else the text handler. w defaults to stderr.
func NewLogger(w io.Writer, level, format string) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	opts := &slog.HandlerOptions{Level: ParseLevel(level)}
	var h slog.Handler
	if strings.EqualFold(strings.TrimSpace(format), "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}
