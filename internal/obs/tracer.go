package obs

import (
	"sort"
	"sync"
	"time"
)

const (
	// defaultCapacity bounds how many finished traces the tracer keeps.
	defaultCapacity = 512
	// maxSpansPerTrace caps one trace's span count so a runaway loop
	// (a pathological repair cycle, a huge plan) cannot eat the heap.
	maxSpansPerTrace = 512
	// errorRetainBonus is the score bonus an errored trace gets during
	// eviction, making errors effectively always outlive fast successes.
	errorRetainBonus = time.Hour
)

// TraceData is one assembled trace: what GET /v1/traces/{id} serves.
type TraceData struct {
	TraceID string    `json:"trace_id"`
	Node    string    `json:"node,omitempty"`
	Start   time.Time `json:"start"`
	// Duration spans the earliest span start to the latest span end.
	Duration time.Duration `json:"duration_ns"`
	Errored  bool          `json:"errored,omitempty"`
	// Root names the first span recorded, usually the HTTP entry.
	Root  string     `json:"root,omitempty"`
	Spans []SpanData `json:"spans"`
}

// TraceSummary is the list-endpoint projection of a trace.
type TraceSummary struct {
	TraceID  string        `json:"trace_id"`
	Node     string        `json:"node,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Errored  bool          `json:"errored,omitempty"`
	Root     string        `json:"root,omitempty"`
	Spans    int           `json:"spans"`
}

// traceRecord accumulates the spans of one trace while any are open
// and after the trace has retired into the retention ring.
type traceRecord struct {
	id      string
	spans   []SpanData
	open    int // spans started but not yet ended
	dropped int // spans discarded past maxSpansPerTrace
	start   time.Time
	end     time.Time
	errored bool
	// retired is true once the record entered the finished ring; a
	// late span (async work outliving the HTTP root) reopens it.
	retired bool
}

func (r *traceRecord) duration() time.Duration {
	if r.end.IsZero() || r.start.IsZero() {
		return 0
	}
	return r.end.Sub(r.start)
}

// retainScore orders finished traces for eviction: keep slow ones,
// and keep errored ones almost unconditionally.
func (r *traceRecord) retainScore() time.Duration {
	s := r.duration()
	if r.errored {
		s += errorRetainBonus
	}
	return s
}

// Tracer records spans into per-trace buckets and retains a bounded
// set of finished traces, preferring slow and errored ones. All
// methods are safe for concurrent use.
type Tracer struct {
	node string

	mu sync.Mutex
	// active holds every trace with at least one open span plus all
	// retired traces still retained.
	active map[string]*traceRecord
	// finished lists retired trace IDs in retirement order (oldest
	// first); eviction scans its oldest quarter.
	finished []string
	capacity int
}

// NewTracer creates a tracer for one fleet node. capacity bounds the
// retained finished traces (<=0 selects the default).
func NewTracer(node string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	return &Tracer{
		node:     node,
		active:   make(map[string]*traceRecord),
		capacity: capacity,
	}
}

// Node returns the node ID stamped on this tracer's spans.
func (t *Tracer) Node() string { return t.node }

func (t *Tracer) spanStarted(traceID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.active[traceID]
	if r == nil {
		r = &traceRecord{id: traceID}
		t.active[traceID] = r
	}
	if r.retired {
		// Async work (queued job execution) started a span after the
		// HTTP root ended: pull the trace back out of the finished ring
		// so it re-retires with the late spans included.
		r.retired = false
		t.removeFinishedLocked(traceID)
	}
	r.open++
}

func (t *Tracer) spanEnded(d SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.active[d.TraceID]
	if r == nil {
		return
	}
	if len(r.spans) < maxSpansPerTrace {
		r.spans = append(r.spans, d)
	} else {
		r.dropped++
	}
	if r.start.IsZero() || d.Start.Before(r.start) {
		r.start = d.Start
	}
	if end := d.Start.Add(d.Duration); end.After(r.end) {
		r.end = end
	}
	if d.Err != "" {
		r.errored = true
	}
	if r.open > 0 {
		r.open--
	}
	if r.open == 0 {
		t.retireLocked(r)
	}
}

func (t *Tracer) retireLocked(r *traceRecord) {
	r.retired = true
	t.finished = append(t.finished, r.id)
	if len(t.finished) <= t.capacity {
		return
	}
	// Over capacity: evict the least interesting trace among the oldest
	// half of the ring (at least 4 deep), so slow/errored traces survive
	// churn from fast healthy traffic while recent traces are never
	// evicted out from under a client that just got handed their ID.
	window := len(t.finished) / 2
	if window < 4 {
		window = 4
	}
	if window > len(t.finished) {
		window = len(t.finished)
	}
	victim := -1
	var victimScore time.Duration
	for i := 0; i < window; i++ {
		rec := t.active[t.finished[i]]
		if rec == nil {
			victim = i
			break
		}
		if s := rec.retainScore(); victim == -1 || s < victimScore {
			victim, victimScore = i, s
		}
	}
	id := t.finished[victim]
	t.finished = append(t.finished[:victim], t.finished[victim+1:]...)
	delete(t.active, id)
}

func (t *Tracer) removeFinishedLocked(traceID string) {
	for i, id := range t.finished {
		if id == traceID {
			t.finished = append(t.finished[:i], t.finished[i+1:]...)
			return
		}
	}
}

// Get returns the assembled trace (spans in start order) or false.
// In-flight traces are returned with the spans finished so far.
func (t *Tracer) Get(traceID string) (TraceData, bool) {
	t.mu.Lock()
	r := t.active[traceID]
	if r == nil {
		t.mu.Unlock()
		return TraceData{}, false
	}
	td := t.assembleLocked(r)
	t.mu.Unlock()
	return td, true
}

func (t *Tracer) assembleLocked(r *traceRecord) TraceData {
	spans := make([]SpanData, len(r.spans))
	copy(spans, r.spans)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	td := TraceData{
		TraceID:  r.id,
		Node:     t.node,
		Start:    r.start,
		Duration: r.duration(),
		Errored:  r.errored,
		Spans:    spans,
	}
	if len(spans) > 0 {
		td.Root = spans[0].Name
	}
	return td
}

// List returns summaries of retained finished traces, newest first,
// filtered to duration >= minDur and (when errorsOnly) errored traces.
// limit <= 0 means no limit.
func (t *Tracer) List(minDur time.Duration, errorsOnly bool, limit int) []TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSummary, 0, len(t.finished))
	for i := len(t.finished) - 1; i >= 0; i-- {
		r := t.active[t.finished[i]]
		if r == nil {
			continue
		}
		if r.duration() < minDur || (errorsOnly && !r.errored) {
			continue
		}
		ts := TraceSummary{
			TraceID:  r.id,
			Node:     t.node,
			Start:    r.start,
			Duration: r.duration(),
			Errored:  r.errored,
			Spans:    len(r.spans),
		}
		if len(r.spans) > 0 {
			ts.Root = r.spans[0].Name
		}
		out = append(out, ts)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Len reports how many finished traces are currently retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.finished)
}
