// Package obs is the zero-dependency observability spine of the
// chatvisd fleet: distributed tracing with W3C-style traceparent
// propagation over context.Context, a bounded in-process trace store
// that preferentially retains slow and errored traces, structured
// logging helpers over log/slog, and runtime/build-info snapshots for
// the /metrics surface.
//
// The design is context-first: a *Tracer is placed on a context once
// (by the HTTP middleware at the front door, or by whoever owns the
// request), and every layer below simply calls
//
//	ctx, span := obs.Start(ctx, "llm.generate")
//	defer span.End()
//
// A context without a tracer produces inert spans, so libraries
// instrumented with obs cost one context lookup when tracing is off —
// the eval harness and CLI paths run untraced for free.
//
// Spans cross process boundaries as `traceparent` headers
// (00-<trace>-<span>-01): the HTTP middleware extracts an incoming
// parent, and the cluster relay/remote-lookup clients inject the
// current one, so one trace ID stitches a request across every node
// it touches.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// TraceparentHeader is the W3C trace-context header carrying
// "00-<trace-id>-<span-id>-<flags>" across HTTP hops.
const TraceparentHeader = "Traceparent"

// TraceHeader is the response header naming the trace a request was
// recorded under, so clients (and error reports) can quote it.
const TraceHeader = "X-ChatVis-Trace"

// SpanContext is the propagated identity of a span: what travels in a
// traceparent header and what child spans parent under.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// Traceparent renders the W3C header value ("" when invalid).
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent reads a W3C traceparent header value. Only version
// 00 with well-formed lowercase-hex IDs is accepted.
func ParseTraceparent(h string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return SpanContext{}, false
	}
	trace, span := parts[1], parts[2]
	if !isHex(trace, 32) || !isHex(span, 16) || trace == strings.Repeat("0", 32) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: trace, SpanID: span}, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// newID returns n random bytes as lowercase hex.
func newID(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// timestamp so tracing degrades instead of panicking.
		return fmt.Sprintf("%0*x", 2*n, uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b)
}

// NewTraceID mints a 16-byte trace ID.
func NewTraceID() string { return newID(16) }

// NewSpanID mints an 8-byte span ID.
func NewSpanID() string { return newID(8) }

// --- context plumbing --------------------------------------------------------

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	loggerKey
	tenantKey
)

// WithTracer attaches a tracer to the context; Start below this point
// records real spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer (nil when untraced).
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithSpanContext places a remote parent on the context: the next
// Start becomes a child of it (the HTTP middleware uses this for
// incoming traceparent headers).
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanKey, sc)
}

// SpanContextFrom returns the current span identity on the context.
func SpanContextFrom(ctx context.Context) SpanContext {
	switch v := ctx.Value(spanKey).(type) {
	case *Span:
		if v != nil {
			return v.sc
		}
	case SpanContext:
		return v
	}
	return SpanContext{}
}

// TraceID returns the context's trace ID ("" when untraced).
func TraceID(ctx context.Context) string { return SpanContextFrom(ctx).TraceID }

// Traceparent renders the context's current span as a traceparent
// header value ("" when untraced) — what outbound cluster hops inject.
func Traceparent(ctx context.Context) string { return SpanContextFrom(ctx).Traceparent() }

// Detach returns a fresh context carrying only the observability state
// of ctx (tracer, span identity, logger, tenant) — no deadline and no
// cancellation. This is how async work (a queued job, a turn executing
// after the HTTP request returned 202) keeps its trace without
// inheriting the front door's cancellation.
func Detach(ctx context.Context) context.Context {
	return Graft(context.Background(), ctx)
}

// Graft copies the observability state (tracer, span identity, logger,
// tenant) of src onto dst, preserving dst's cancellation and deadline.
// Workers use it to run under their own lifecycle context while spans
// still land in the submitting request's trace.
func Graft(dst, src context.Context) context.Context {
	if t := TracerFrom(src); t != nil {
		dst = WithTracer(dst, t)
	}
	if sc := SpanContextFrom(src); sc.Valid() {
		dst = WithSpanContext(dst, sc)
	}
	if l, ok := src.Value(loggerKey).(*sLogger); ok && l != nil {
		dst = context.WithValue(dst, loggerKey, l)
	}
	if tn, ok := src.Value(tenantKey).(string); ok && tn != "" {
		dst = WithTenant(dst, tn)
	}
	return dst
}

// WithTenant records the tenant a request bills to, for log fields.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey, tenant)
}

// TenantFrom returns the context's tenant ("" when unset).
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey).(string)
	return t
}

// --- spans -------------------------------------------------------------------

// SpanData is the recorded form of one span: what the trace API serves
// and what crosses nodes when traces are merged.
type SpanData struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Name identifies the operation ("http POST /v1/jobs", "llm.generate",
	// "plan.stage", ...).
	Name string `json:"name"`
	// Node is the fleet member that recorded the span.
	Node  string    `json:"node,omitempty"`
	Start time.Time `json:"start"`
	// Duration is the span's wall-clock time (nanoseconds in JSON,
	// matching the chatvis.Trace convention).
	Duration time.Duration `json:"duration_ns"`
	// Err is the failure message ("" on success).
	Err string `json:"error,omitempty"`
	// Attrs carry low-cardinality facts: model, token counts, cache/retry
	// provenance, stage class, peer node, HTTP status.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is one in-flight timed operation. A nil *Span is inert: every
// method no-ops, so instrumented code never branches on "is tracing
// on".
type Span struct {
	tracer *Tracer
	sc     SpanContext

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Start begins a span named name as a child of the context's current
// span (or a new trace root when there is none) and returns a context
// carrying it. Without a tracer on the context it returns ctx and a
// nil, inert span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := SpanContextFrom(ctx)
	sc := SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID()}
	if sc.TraceID == "" {
		sc.TraceID = NewTraceID()
	}
	sp := &Span{
		tracer: t,
		sc:     sc,
		data: SpanData{
			TraceID:  sc.TraceID,
			SpanID:   sc.SpanID,
			ParentID: parent.SpanID,
			Name:     name,
			Node:     t.node,
			Start:    time.Now(),
		},
	}
	t.spanStarted(sc.TraceID)
	return context.WithValue(ctx, spanKey, sp), sp
}

// Context returns the span's propagated identity (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr records one key/value attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = map[string]string{}
	}
	s.data.Attrs[key] = fmt.Sprint(value)
}

// SetError marks the span failed with err's message (nil err no-ops).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.data.Err = err.Error()
	}
}

// Fail marks the span failed with a formatted message.
func (s *Span) Fail(format string, args ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.data.Err = fmt.Sprintf(format, args...)
	}
}

// End finishes the span and hands it to the tracer. Safe to call more
// than once; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Duration = time.Since(s.data.Start)
	data := s.data
	s.mu.Unlock()
	s.tracer.spanEnded(data)
}
