package obs

import (
	"net/http"
	"strconv"
	"time"
)

// statusWriter records the status code while delegating to the real
// ResponseWriter. It forwards Flush so SSE handlers behind the
// middleware keep streaming.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it streams; the SSE
// session-events handler requires this.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps an HTTP handler with the observability front door:
// it extracts an incoming traceparent (so cluster-forwarded requests
// join the originating trace), starts a server span, stamps
// X-ChatVis-Trace on the response, and emits one structured access-log
// line per request. A nil tracer passes requests through untouched.
func Middleware(t *Tracer, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := WithTracer(r.Context(), t)
		if sc, ok := ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
			ctx = WithSpanContext(ctx, sc)
		}
		ctx, span := Start(ctx, "http "+r.Method+" "+r.URL.Path)
		span.SetAttr("http.method", r.Method)
		span.SetAttr("http.path", r.URL.Path)

		// Stamp the trace on the response up front so even handlers
		// that write errors (or stream forever) carry it.
		w.Header().Set(TraceHeader, span.Context().TraceID)
		sw := &statusWriter{ResponseWriter: w}

		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		span.SetAttr("http.status", strconv.Itoa(status))
		if status >= 500 {
			span.Fail("http %d", status)
		}
		span.End()

		Log(ctx).Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
			"tenant", TenantFrom(ctx),
			"remote", r.RemoteAddr,
		)
	})
}
