// Package benchkernels holds the substrate micro-benchmark kernels —
// the single definition shared by the root BenchmarkSubstrate_* suite
// (bench_test.go) and cmd/benchcore, so the BENCH_substrate.json perf
// trajectory always measures exactly the workload `go test -bench
// BenchmarkSubstrate_` runs. Tune a kernel here and both stay in sync.
package benchkernels

import (
	"testing"

	"chatvis/internal/datagen"
	"chatvis/internal/filters"
	"chatvis/internal/render"
	"chatvis/internal/vmath"
)

// Order fixes the reporting order of the shared kernels.
var Order = []string{
	"Substrate_Isosurface64",
	"Substrate_StreamTracer",
	"Substrate_SurfaceRender",
	"Substrate_VolumeRayCast",
	"Substrate_ClipPolyData",
}

// Substrate maps kernel name to benchmark body. Bodies do their setup
// before b.ResetTimer so only the kernel under test is measured.
var Substrate = map[string]func(b *testing.B){
	"Substrate_Isosurface64": func(b *testing.B) {
		vol := datagen.MarschnerLobb(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := filters.Contour(vol, "var0", 0.5); err != nil {
				b.Fatal(err)
			}
		}
	},
	"Substrate_StreamTracer": func(b *testing.B) {
		disk := datagen.DiskFlow(8, 32, 8)
		sampler, err := filters.NewGridSampler(disk, "V")
		if err != nil {
			b.Fatal(err)
		}
		seeds := filters.DefaultPointCloudSeeds(disk.Bounds(), 50)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			filters.StreamTracer(sampler, seeds, filters.StreamTracerOptions{})
		}
	},
	"Substrate_SurfaceRender": func(b *testing.B) {
		vol := datagen.MarschnerLobb(48)
		surf, err := filters.Contour(vol, "var0", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		filters.ComputePointNormals(surf)
		r := render.NewRenderer()
		r.AddActor(render.NewActor(surf))
		r.ResetCamera()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Render(640, 360)
		}
	},
	"Substrate_VolumeRayCast": func(b *testing.B) {
		vol := datagen.MarschnerLobb(48)
		r := render.NewRenderer()
		r.AddVolume(render.NewVolumeActor(vol, "var0"))
		r.ResetCamera()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Render(320, 180)
		}
	},
	"Substrate_ClipPolyData": func(b *testing.B) {
		vol := datagen.MarschnerLobb(48)
		surf, err := filters.Contour(vol, "var0", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		plane := vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(-1, 0, 0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			filters.ClipPolyData(surf, plane)
		}
	},
}
