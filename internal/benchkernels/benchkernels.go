// Package benchkernels holds the substrate micro-benchmark kernels —
// the single definition shared by the root BenchmarkSubstrate_* suite
// (bench_test.go) and cmd/benchcore, so the BENCH_substrate.json perf
// trajectory always measures exactly the workload `go test -bench
// BenchmarkSubstrate_` runs. Tune a kernel here and both stay in sync.
package benchkernels

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"chatvis/internal/chatvis"
	"chatvis/internal/datagen"
	"chatvis/internal/filters"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
	"chatvis/internal/render"
	"chatvis/internal/vmath"
	"chatvis/internal/vtkio"
)

// Order fixes the reporting order of the shared kernels.
var Order = []string{
	"Substrate_Isosurface64",
	"Substrate_StreamTracer",
	"Substrate_SurfaceRender",
	"Substrate_VolumeRayCast",
	"Substrate_ClipPolyData",
	"Substrate_SessionEditTurn",
}

// Substrate maps kernel name to benchmark body. Bodies do their setup
// before b.ResetTimer so only the kernel under test is measured.
var Substrate = map[string]func(b *testing.B){
	"Substrate_Isosurface64": func(b *testing.B) {
		vol := datagen.MarschnerLobb(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := filters.Contour(vol, "var0", 0.5); err != nil {
				b.Fatal(err)
			}
		}
	},
	"Substrate_StreamTracer": func(b *testing.B) {
		disk := datagen.DiskFlow(8, 32, 8)
		sampler, err := filters.NewGridSampler(disk, "V")
		if err != nil {
			b.Fatal(err)
		}
		seeds := filters.DefaultPointCloudSeeds(disk.Bounds(), 50)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			filters.StreamTracer(sampler, seeds, filters.StreamTracerOptions{})
		}
	},
	"Substrate_SurfaceRender": func(b *testing.B) {
		vol := datagen.MarschnerLobb(48)
		surf, err := filters.Contour(vol, "var0", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		filters.ComputePointNormals(surf)
		r := render.NewRenderer()
		r.AddActor(render.NewActor(surf))
		r.ResetCamera()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Render(640, 360)
		}
	},
	"Substrate_VolumeRayCast": func(b *testing.B) {
		vol := datagen.MarschnerLobb(48)
		r := render.NewRenderer()
		r.AddVolume(render.NewVolumeActor(vol, "var0"))
		r.ResetCamera()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Render(320, 180)
		}
	},
	"Substrate_ClipPolyData": func(b *testing.B) {
		vol := datagen.MarschnerLobb(48)
		surf, err := filters.Contour(vol, "var0", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		plane := vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(-1, 0, 0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			filters.ClipPolyData(surf, plane)
		}
	},
	// Substrate_SessionEditTurn measures one conversational edit turn on
	// a warm session: PlanDelta + validation + incremental ExecPlan. The
	// pipeline is reader → contour (the expensive stage, on a 48³
	// volume) → clip; the edit alternates the clip plane, so every turn
	// genuinely recomputes one stage (never a no-op) while the session
	// engine answers the isosurfacing upstream of it from its memo —
	// the steady-state cost of "the user nudges a parameter".
	"Substrate_SessionEditTurn": func(b *testing.B) {
		sess := NewWarmSession(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			turn, err := sess.Turn(context.Background(),
				fmt.Sprintf("Move the clip to x=0.%d.", 1+(i%2)))
			if err != nil {
				b.Fatal(err)
			}
			if !turn.Artifact.Success {
				b.Fatalf("edit turn failed: %s", turn.Artifact.Iterations[0].Output)
			}
		}
	},
}

// SessionEditBenchPrompt renders the request the session benchmarks
// build from (oracle model: the measured cost is the machinery, not the
// model). The clip offset is the knob the edit turns nudge.
func SessionEditBenchPrompt(clipX string) string {
	return fmt.Sprintf("Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Clip the data with a y-z plane at x=%s, keeping the -x half of the data and removing the +x half. Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 160 x 90 pixels.", clipX)
}

// SessionFirstPrompt is the turn-1 request of the session benchmarks.
var SessionFirstPrompt = SessionEditBenchPrompt("0")

// SessionBenchRunner writes the benchmark volume (48³, so the contour
// stage genuinely costs something) and returns a runner over it, shared
// by the session kernel and the root session benchmarks.
func SessionBenchRunner(b *testing.B) *pvpython.Runner {
	b.Helper()
	dataDir := b.TempDir()
	if err := vtkio.SaveLegacyVTK(filepath.Join(dataDir, "ml-100.vtk"),
		datagen.MarschnerLobb(48), "ml"); err != nil {
		b.Fatal(err)
	}
	return &pvpython.Runner{DataDir: dataDir, OutDir: b.TempDir()}
}

// NewWarmSession builds a session and runs its first turn so the
// engine memo is primed; callers then measure edit turns.
func NewWarmSession(b *testing.B) *chatvis.Session {
	b.Helper()
	model, err := llm.NewModel("oracle")
	if err != nil {
		b.Fatal(err)
	}
	sess, err := chatvis.NewSession(model, SessionBenchRunner(b))
	if err != nil {
		b.Fatal(err)
	}
	turn, err := sess.Turn(context.Background(), SessionFirstPrompt)
	if err != nil {
		b.Fatal(err)
	}
	if !turn.Artifact.Success {
		b.Fatalf("first turn failed:\n%s", turn.Artifact.Iterations[len(turn.Artifact.Iterations)-1].Output)
	}
	return sess
}
