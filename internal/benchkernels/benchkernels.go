// Package benchkernels holds the substrate micro-benchmark kernels —
// the single definition shared by the root BenchmarkSubstrate_* suite
// (bench_test.go), the bench-smoke allocation gate and cmd/benchcore,
// so the BENCH_substrate.json perf trajectory always measures exactly
// the workload `go test -bench BenchmarkSubstrate_` runs. Tune a
// kernel here and all three stay in sync.
package benchkernels

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"chatvis/internal/chatvis"
	"chatvis/internal/datagen"
	"chatvis/internal/filters"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
	"chatvis/internal/render"
	"chatvis/internal/vmath"
	"chatvis/internal/vtkio"
)

// Order fixes the reporting order of the shared kernels.
// SparseContour64 and SkewedClip are the deliberately imbalanced pair:
// their work is concentrated in a sliver of the sweep's index space, so
// they expose the static-vs-adaptive scheduler gap that the uniform
// kernels cannot (benchcore's A/B column reads them directly).
var Order = []string{
	"Substrate_Isosurface64",
	"Substrate_StreamTracer",
	"Substrate_SurfaceRender",
	"Substrate_VolumeRayCast",
	"Substrate_ClipPolyData",
	"Substrate_SparseContour64",
	"Substrate_SkewedClip",
	"Substrate_SessionEditTurn",
}

// ComputeOrder is Order restricted to the pure compute kernels — the
// ones bench-smoke measures (the session kernel drags in temp dirs and
// the whole session engine, which is not an allocation story).
var ComputeOrder = Order[:7]

// Kernel is one substrate micro-benchmark: Setup builds the input
// state (outside any timing) and returns the op to measure.
type Kernel struct {
	Setup func(tb testing.TB) func()
}

// Bench runs a kernel as a standard Go benchmark body: setup, reset
// the timer, then b.N ops.
func Bench(b *testing.B, name string) {
	k, ok := Substrate[name]
	if !ok {
		b.Fatalf("unknown substrate kernel %q", name)
	}
	op := k.Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}

// MeasureOnce runs a kernel's setup, one warm-up op (so arenas and
// free lists reach steady state — the regime the benchmarks report),
// then measures a single op with runtime.MemStats. It is the cheap
// path for smoke-testing allocation ceilings without the iteration
// count of testing.Benchmark.
func MeasureOnce(tb testing.TB, name string) (allocs, bytes uint64) {
	k, ok := Substrate[name]
	if !ok {
		tb.Fatalf("unknown substrate kernel %q", name)
	}
	op := k.Setup(tb)
	op() // warm-up: populate arenas, grow scratch to workload size
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	op()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// Substrate maps kernel name to its definition.
var Substrate = map[string]Kernel{
	"Substrate_Isosurface64": {
		Setup: func(tb testing.TB) func() {
			vol := datagen.MarschnerLobb(64)
			return func() {
				if _, err := filters.Contour(vol, "var0", 0.5); err != nil {
					tb.Fatal(err)
				}
			}
		},
	},
	"Substrate_StreamTracer": {
		Setup: func(tb testing.TB) func() {
			disk := datagen.DiskFlow(8, 32, 8)
			sampler, err := filters.NewGridSampler(disk, "V")
			if err != nil {
				tb.Fatal(err)
			}
			seeds := filters.DefaultPointCloudSeeds(disk.Bounds(), 50)
			return func() {
				filters.StreamTracer(sampler, seeds, filters.StreamTracerOptions{})
			}
		},
	},
	"Substrate_SurfaceRender": {
		Setup: func(tb testing.TB) func() {
			vol := datagen.MarschnerLobb(48)
			surf, err := filters.Contour(vol, "var0", 0.5)
			if err != nil {
				tb.Fatal(err)
			}
			filters.ComputePointNormals(surf)
			r := render.NewRenderer()
			r.AddActor(render.NewActor(surf))
			r.ResetCamera()
			return func() {
				r.Render(640, 360)
			}
		},
	},
	"Substrate_VolumeRayCast": {
		Setup: func(tb testing.TB) func() {
			vol := datagen.MarschnerLobb(48)
			r := render.NewRenderer()
			r.AddVolume(render.NewVolumeActor(vol, "var0"))
			r.ResetCamera()
			return func() {
				r.Render(320, 180)
			}
		},
	},
	"Substrate_ClipPolyData": {
		Setup: func(tb testing.TB) func() {
			vol := datagen.MarschnerLobb(48)
			surf, err := filters.Contour(vol, "var0", 0.5)
			if err != nil {
				tb.Fatal(err)
			}
			plane := vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(-1, 0, 0))
			return func() {
				filters.ClipPolyData(surf, plane)
			}
		},
	},
	// Substrate_SparseContour64 marches a volume whose only isosurface
	// crossings sit in the tail of the cell sweep (a corner blob): ~90%
	// of chunks are empty classification passes and the last stretch
	// does all the vertex interpolation — the straggler shape static
	// chunking loses to.
	"Substrate_SparseContour64": {
		Setup: func(tb testing.TB) func() {
			vol := datagen.SparseBlob(64)
			return func() {
				if _, err := filters.Contour(vol, "var0", 0.5); err != nil {
					tb.Fatal(err)
				}
			}
		},
	},
	// Substrate_SkewedClip clips a surface with a plane that discards
	// everything except a thin z-tail: polygons that survive (and pay
	// for Sutherland–Hodgman + point interpolation) are concentrated at
	// the end of the polygon sweep, exercising the clip cost hints.
	"Substrate_SkewedClip": {
		Setup: func(tb testing.TB) func() {
			vol := datagen.MarschnerLobb(48)
			surf, err := filters.Contour(vol, "var0", 0.5)
			if err != nil {
				tb.Fatal(err)
			}
			plane := vmath.NewPlane(vmath.V(0, 0, 0.6), vmath.V(0, 0, 1))
			return func() {
				filters.ClipPolyData(surf, plane)
			}
		},
	},
	// Substrate_SessionEditTurn measures one conversational edit turn on
	// a warm session: PlanDelta + validation + incremental ExecPlan. The
	// pipeline is reader → contour (the expensive stage, on a 48³
	// volume) → clip; the edit alternates the clip plane, so every turn
	// genuinely recomputes one stage (never a no-op) while the session
	// engine answers the isosurfacing upstream of it from its memo —
	// the steady-state cost of "the user nudges a parameter".
	"Substrate_SessionEditTurn": {
		Setup: func(tb testing.TB) func() {
			sess := NewWarmSession(tb)
			i := 0
			return func() {
				turn, err := sess.Turn(context.Background(),
					fmt.Sprintf("Move the clip to x=0.%d.", 1+(i%2)))
				i++
				if err != nil {
					tb.Fatal(err)
				}
				if !turn.Artifact.Success {
					tb.Fatalf("edit turn failed: %s", turn.Artifact.Iterations[0].Output)
				}
			}
		},
	},
}

// SessionEditBenchPrompt renders the request the session benchmarks
// build from (oracle model: the measured cost is the machinery, not the
// model). The clip offset is the knob the edit turns nudge.
func SessionEditBenchPrompt(clipX string) string {
	return fmt.Sprintf("Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Clip the data with a y-z plane at x=%s, keeping the -x half of the data and removing the +x half. Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 160 x 90 pixels.", clipX)
}

// SessionFirstPrompt is the turn-1 request of the session benchmarks.
var SessionFirstPrompt = SessionEditBenchPrompt("0")

// SessionBenchRunner writes the benchmark volume (48³, so the contour
// stage genuinely costs something) and returns a runner over it, shared
// by the session kernel and the root session benchmarks.
func SessionBenchRunner(tb testing.TB) *pvpython.Runner {
	tb.Helper()
	dataDir := tb.TempDir()
	if err := vtkio.SaveLegacyVTK(filepath.Join(dataDir, "ml-100.vtk"),
		datagen.MarschnerLobb(48), "ml"); err != nil {
		tb.Fatal(err)
	}
	return &pvpython.Runner{DataDir: dataDir, OutDir: tb.TempDir()}
}

// NewWarmSession builds a session and runs its first turn so the
// engine memo is primed; callers then measure edit turns.
func NewWarmSession(tb testing.TB) *chatvis.Session {
	tb.Helper()
	model, err := llm.NewModel("oracle")
	if err != nil {
		tb.Fatal(err)
	}
	sess, err := chatvis.NewSession(model, SessionBenchRunner(tb))
	if err != nil {
		tb.Fatal(err)
	}
	turn, err := sess.Turn(context.Background(), SessionFirstPrompt)
	if err != nil {
		tb.Fatal(err)
	}
	if !turn.Artifact.Success {
		tb.Fatalf("first turn failed:\n%s", turn.Artifact.Iterations[len(turn.Artifact.Iterations)-1].Output)
	}
	return sess
}
