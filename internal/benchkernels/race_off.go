//go:build !race

package benchkernels

// RaceEnabled reports whether the binary was built with -race; the
// allocation smoke gate skips itself then, since the race runtime's
// shadow allocations would make the ceilings meaningless.
const RaceEnabled = false
