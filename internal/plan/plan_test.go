package plan_test

import (
	"encoding/json"
	"strings"
	"testing"

	"chatvis/internal/plan"
	"chatvis/internal/pvsim"
)

const isoScript = `from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

contour1 = Contour(registrationName='Contour1', Input=ml100vtk)
contour1.ContourBy = ['POINTS', 'var0']
contour1.Isosurfaces = [0.5]

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [480, 270]

contour1Display = Show(contour1, renderView1)
renderView1.ResetCamera()

SaveScreenshot('ml-iso-screenshot.png', renderView1,
    ImageResolution=[480, 270],
    OverrideColorPalette='WhiteBackground')
`

func mustCompile(t *testing.T, script string) *plan.Compiled {
	t.Helper()
	c, err := plan.Compile(script, pvsim.PlanSchema())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestCompileExtractsPipeline(t *testing.T) {
	c := mustCompile(t, isoScript)
	if plan.HasErrors(c.Diags) {
		t.Fatalf("clean script has error diagnostics:\n%s", plan.FormatDiagnostics(c.Diags))
	}
	p := c.Plan
	classes := []string{}
	for _, st := range p.Stages {
		classes = append(classes, st.Class)
	}
	joined := strings.Join(classes, ",")
	for _, want := range []string{"LegacyVTKReader", "Contour", "RenderView", plan.DisplayClass, plan.ScreenshotClass} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing stage class %s in %v", want, classes)
		}
	}
	edges := p.PipelineEdges()
	if len(edges) != 1 || edges[0] != "LegacyVTKReader->Contour" {
		t.Errorf("edges = %v", edges)
	}
	if c.VarClass["contour1"] != "Contour" || c.VarClass["renderView1"] != "RenderView" ||
		c.VarClass["contour1Display"] != plan.DisplayClass {
		t.Errorf("var classes = %v", c.VarClass)
	}
	ci := p.FindClass("Contour")
	if v, ok := p.Stages[ci].Props["Isosurfaces"]; !ok || v.Kind != plan.KindList || v.List[0].Num != 0.5 {
		t.Errorf("contour props = %#v", p.Stages[ci].Props)
	}
}

func TestValidationCatchesPaperFailures(t *testing.T) {
	cases := []struct {
		name    string
		snippet string
		class   string
		prop    string
	}{
		{"clip-insideout", "clip1 = Clip(registrationName='C', ClipType='Plane')\nclip1.InsideOut = 1\n", "Clip", "InsideOut"},
		{"view-viewup", "renderView1 = GetActiveViewOrCreate('RenderView')\nrenderView1.ViewUp = [0.0, 1.0, 0.0]\n", "RenderView", "ViewUp"},
		{"tube-sides", "tube = Tube(registrationName='T')\ntube.NumberOfSides = 12\n", "Tube", "NumberOfSides"},
		{"threshold-range", "t1 = Threshold(registrationName='T')\nt1.ThresholdRange = [500, 900]\n", "Threshold", "ThresholdRange"},
		{"glyph-scalars", "g = Glyph(registrationName='G')\ng.Scalars = ['POINTS', 'Temp']\n", "Glyph", "Scalars"},
		{"display-setrep", "d = Show(c1, renderView1)\nd.SetRepresentation('Volume')\n", plan.DisplayClass, "SetRepresentation"},
		{"view-isometric-method", "renderView1 = GetActiveViewOrCreate('RenderView')\nrenderView1.ResetActiveCameraToIsometric()\n", "RenderView", "ResetActiveCameraToIsometric"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			script := "from paraview.simple import *\nc1 = Contour(registrationName='c1')\nrenderView1 = GetActiveViewOrCreate('RenderView')\n" + tc.snippet
			c := mustCompile(t, script)
			found := false
			for _, d := range plan.Errors(c.Diags) {
				if d.Class == tc.class && d.Property == tc.prop {
					found = true
					if d.Line == 0 && d.Kind != plan.DiagUnknownMethod {
						t.Errorf("diagnostic carries no line: %+v", d)
					}
				}
			}
			if !found {
				t.Errorf("missing diagnostic for %s.%s in:\n%s", tc.class, tc.prop, plan.FormatDiagnostics(c.Diags))
			}
		})
	}
}

func TestValidationCatchesTypeMismatch(t *testing.T) {
	script := "from paraview.simple import *\nc1 = Contour(registrationName='c1')\nc1.Isosurfaces = 'not-a-number'\n"
	c := mustCompile(t, script)
	found := false
	for _, d := range plan.Errors(c.Diags) {
		if d.Kind == plan.DiagTypeMismatch && d.Property == "Isosurfaces" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing type-mismatch diagnostic:\n%s", plan.FormatDiagnostics(c.Diags))
	}
}

func TestViewByNameDiagnostic(t *testing.T) {
	script := `from paraview.simple import *
t = Tube(registrationName='T')
tDisplay = Show(t, 'RenderView1')
renderView1 = GetActiveViewOrCreate('RenderView')
`
	c := mustCompile(t, script)
	found := false
	for _, d := range plan.Errors(c.Diags) {
		if d.Kind == plan.DiagViewByName {
			found = true
		}
	}
	if !found {
		t.Errorf("missing view-by-name diagnostic:\n%s", plan.FormatDiagnostics(c.Diags))
	}
}

// TestNormalizeCanonicalizesEquivalentScripts: reordered construction,
// different variable names, explicitly spelled defaults and int/float
// literal differences all normalize to byte-equal plans.
func TestNormalizeCanonicalizesEquivalentScripts(t *testing.T) {
	variant := `from paraview.simple import *
r = LegacyVTKReader(FileNames=['ml-100.vtk'])
myContour = Contour(Input=r)
myContour.Isosurfaces = [0.5]
myContour.ContourBy = ['POINTS', 'var0']
myContour.ComputeNormals = 1
view = GetActiveViewOrCreate('RenderView')
view.ViewSize = [480.0, 270.0]
d = Show(myContour, view)
view.ResetCamera()
SaveScreenshot('ml-iso-screenshot.png', view,
    ImageResolution=[480, 270],
    OverrideColorPalette='WhiteBackground')
`
	s := pvsim.PlanSchema()
	a := plan.Normalize(mustCompile(t, isoScript).Plan, s)
	b := plan.Normalize(mustCompile(t, variant).Plan, s)
	if !a.Equal(b) {
		ab, _ := a.Encode()
		bb, _ := b.Encode()
		t.Errorf("equivalent scripts normalize differently:\n--- a ---\n%s\n--- b ---\n%s", ab, bb)
	}
}

func TestNormalizeDropsDeadStages(t *testing.T) {
	dead := strings.Replace(isoScript,
		"renderView1 = GetActiveViewOrCreate('RenderView')",
		"deadClip = Clip(registrationName='Dead', Input=ml100vtk, ClipType='Plane')\nrenderView1 = GetActiveViewOrCreate('RenderView')", 1)
	s := pvsim.PlanSchema()
	a := plan.Normalize(mustCompile(t, isoScript).Plan, s)
	b := plan.Normalize(mustCompile(t, dead).Plan, s)
	if !a.Equal(b) {
		t.Error("unshown dangling filter should be eliminated by normalization")
	}
}

// TestScriptRoundTrip: render(normalize(compile(s))) recompiles to the
// identical normalized plan — the fixpoint the repair loop and the
// golden fixtures rely on.
func TestScriptRoundTrip(t *testing.T) {
	s := pvsim.PlanSchema()
	p1 := plan.Normalize(mustCompile(t, isoScript).Plan, s)
	script2 := p1.Script()
	c2, err := plan.Compile(script2, s)
	if err != nil {
		t.Fatalf("rendered script does not parse: %v\n%s", err, script2)
	}
	p2 := plan.Normalize(c2.Plan, s)
	if !p1.Equal(p2) {
		b1, _ := p1.Encode()
		b2, _ := p2.Encode()
		t.Errorf("round trip diverges:\n--- p1 ---\n%s\n--- p2 ---\n%s\n--- script ---\n%s", b1, b2, script2)
	}
}

// TestRoundTripPreservesHallucinations: unknown properties survive
// normalize+render so defective plans stay defective (and diagnosable).
func TestRoundTripPreservesHallucinations(t *testing.T) {
	script := `from paraview.simple import *
g = Glyph(registrationName='G')
g.Scalars = ['POINTS', 'Temp']
view = GetActiveViewOrCreate('RenderView')
d = Show(g, view)
SaveScreenshot('x.png', view, ImageResolution=[100, 100])
`
	s := pvsim.PlanSchema()
	p1 := plan.Normalize(mustCompile(t, script).Plan, s)
	c2, err := plan.Compile(p1.Script(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.HasErrors(c2.Diags) {
		t.Error("hallucinated property lost in round trip")
	}
	if !p1.Equal(plan.Normalize(c2.Plan, s)) {
		t.Error("defective plan does not round-trip")
	}
}

func TestChangedStages(t *testing.T) {
	s := pvsim.PlanSchema()
	p1 := plan.Normalize(mustCompile(t, isoScript).Plan, s)
	p2 := plan.Normalize(mustCompile(t, strings.Replace(isoScript, "[0.5]", "[0.7]", 1)).Plan, s)
	changed := plan.ChangedStages(p1, p2)
	// The contour changed, and with it its display (whose subtree
	// contains the contour); the reader, view and screenshot did not.
	want := map[string]bool{"contour1": true, "contour1Display": true}
	if len(changed) != len(want) {
		t.Fatalf("changed = %v", changed)
	}
	for _, id := range changed {
		if !want[id] {
			t.Errorf("unexpected changed stage %s", id)
		}
	}
	if got := plan.ChangedStages(p1, p1); len(got) != 0 {
		t.Errorf("identical plans report changes: %v", got)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	s := pvsim.PlanSchema()
	p1 := plan.Normalize(mustCompile(t, isoScript).Plan, s)
	blob, err := p1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plan.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(p2) {
		t.Error("JSON round trip diverges")
	}
	if p1.Hash() != p2.Hash() {
		t.Error("hash changes across serialization")
	}
}

// TestDecodeRejectsCycles: hashing and execution recurse over Inputs,
// so corrupted plan bytes with a cycle must fail decoding instead of
// overflowing the stack later.
func TestDecodeRejectsCycles(t *testing.T) {
	selfLoop := []byte(`{"version":1,"stages":[{"id":"a","kind":"filter","class":"Contour","inputs":[0]}]}`)
	if _, err := plan.Decode(selfLoop); err == nil {
		t.Error("self-loop should fail to decode")
	}
	twoCycle := []byte(`{"version":1,"stages":[
		{"id":"a","kind":"filter","class":"Contour","inputs":[1]},
		{"id":"b","kind":"filter","class":"Slice","inputs":[0]}]}`)
	if _, err := plan.Decode(twoCycle); err == nil {
		t.Error("two-stage cycle should fail to decode")
	}
	outOfRange := []byte(`{"version":1,"stages":[{"id":"a","kind":"filter","class":"Contour","inputs":[5]}]}`)
	if _, err := plan.Decode(outOfRange); err == nil {
		t.Error("out-of-range input should fail to decode")
	}
}

func TestValueJSON(t *testing.T) {
	vals := []plan.Value{
		plan.NoneV(), plan.StrV("x"), plan.IntV(3), plan.NumV(0.5),
		plan.BoolV(true), plan.NumsV(1, 2.5),
		plan.HelperV("Plane").WithObj("Origin", plan.NumsV(0, 0, 1)),
	}
	for _, v := range vals {
		blob, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var w plan.Value
		if err := json.Unmarshal(blob, &w); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		if !v.Equal(w) {
			t.Errorf("value %s round trips to %#v", blob, w)
		}
	}
}

func TestSimilarityScoring(t *testing.T) {
	s := pvsim.PlanSchema()
	p1 := plan.Normalize(mustCompile(t, isoScript).Plan, s)
	same := plan.Similarity(p1, p1)
	if same.Overall < 0.999 {
		t.Errorf("identical plans score %v", same)
	}
	p2 := plan.Normalize(mustCompile(t, strings.Replace(isoScript, "[0.5]", "[0.9]", 1)).Plan, s)
	diff := plan.Similarity(p2, p1)
	if diff.PropF1 >= 1 {
		t.Errorf("changed isovalue should lower PropF1: %v", diff)
	}
	if diff.StageF1 != 1 || diff.EdgeF1 != 1 {
		t.Errorf("structure unchanged, got %v", diff)
	}
	empty := plan.New()
	if z := plan.Similarity(empty, p1); z.Overall != 0 {
		t.Errorf("empty vs real should be 0: %v", z)
	}
}
