package plan

import (
	"fmt"
	"sort"
)

// Normalize converts a plan to canonical form so that semantically equal
// scripts produce byte-equal plans. The passes, in order:
//
//  1. value canonicalization — 1.0 and 1 serialize identically;
//  2. property folding — properties equal to their schema defaults are
//     dropped (including nested helper properties, and helpers that fold
//     to the constructor-implied default);
//  3. dead-stage elimination — pipeline stages that feed no display and
//     views that host nothing are removed (skipped for plans with no
//     display/screenshot at all, which are fragments, not pipelines);
//  4. canonical stage ordering — a deterministic topological order
//     (pipeline, then views, then displays, then screenshots; ties
//     broken by class and subtree hash), which subsumes intent-level
//     reorderings such as the clip-before-slice rule: however the script
//     ordered independent construction, equal DAGs order equally;
//  5. canonical IDs — stages are renamed class-stem+ordinal, so variable
//     naming cannot leak into the serialized form.
//
// The input plan is not modified. A nil schema skips default folding.
func Normalize(p *Plan, s *Schema) *Plan {
	q := p.Clone()

	// Pass 1+2: canonicalize values, fold defaults.
	for _, st := range q.Stages {
		cls := s.Class(st.Class)
		for name, v := range st.Props {
			v = v.canonical()
			if v.Kind == KindHelper {
				v = foldHelper(v, s)
			}
			st.Props[name] = v
			if cls == nil {
				continue
			}
			if prop, ok := cls.Props[name]; ok && prop.Default != nil && v.Equal(prop.Default.canonical()) {
				delete(st.Props, name)
				continue
			}
			// A helper folded down to the constructor default vanishes.
			if v.Kind == KindHelper && len(v.Obj) == 0 && helperDefaults[st.Class][name] == v.Class {
				delete(st.Props, name)
			}
		}
		if st.Kind == StageDisplay {
			if v, ok := st.Props[PropRescaleTF]; ok && v.Kind == KindBool && !v.Bool {
				delete(st.Props, PropRescaleTF)
			}
		}
		if len(st.Props) == 0 {
			st.Props = nil
		}
	}

	// Pass 3: dead-stage elimination.
	q = dropDeadStages(q)

	// Pass 4: canonical topological order.
	q = reorder(q)

	// Pass 5: canonical IDs.
	assignIDs(q)
	return q
}

// foldHelper canonicalizes a helper value and drops obj entries equal to
// the helper class defaults.
func foldHelper(v Value, s *Schema) Value {
	hcls := s.Class(v.Class)
	for name, pv := range v.Obj {
		if hcls == nil {
			break
		}
		if prop, ok := hcls.Props[name]; ok && prop.Default != nil && pv.Equal(prop.Default.canonical()) {
			delete(v.Obj, name)
		}
	}
	return v
}

// dropDeadStages removes pipeline stages not feeding any display and
// views hosting neither a display nor a screenshot. Plans without any
// display or screenshot are fragments and are left whole.
func dropDeadStages(p *Plan) *Plan {
	hasSink := false
	for _, st := range p.Stages {
		if st.Kind == StageDisplay || st.Kind == StageScreenshot {
			hasSink = true
			break
		}
	}
	if !hasSink {
		return p
	}
	live := make([]bool, len(p.Stages))
	var mark func(i int)
	mark = func(i int) {
		if i < 0 || i >= len(p.Stages) || live[i] {
			return
		}
		live[i] = true
		for _, in := range p.Stages[i].Inputs {
			mark(in)
		}
	}
	for i, st := range p.Stages {
		if st.Kind == StageDisplay || st.Kind == StageScreenshot {
			mark(i)
		}
	}
	remap := make([]int, len(p.Stages))
	q := &Plan{Version: p.Version}
	for i, st := range p.Stages {
		if !live[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(q.Stages)
		q.Stages = append(q.Stages, st)
	}
	for _, st := range q.Stages {
		ins := st.Inputs[:0]
		for _, in := range st.Inputs {
			if remap[in] >= 0 {
				ins = append(ins, remap[in])
			}
		}
		st.Inputs = ins
		if len(st.Inputs) == 0 {
			st.Inputs = nil
		}
	}
	return q
}

// kindRank orders stage kinds in the canonical layout.
func kindRank(kind string) int {
	switch kind {
	case StageSource, StageFilter:
		return 0
	case StageView:
		return 1
	case StageDisplay:
		return 2
	case StageScreenshot:
		return 3
	}
	return 4
}

// reorder emits the stages in deterministic topological order.
func reorder(p *Plan) *Plan {
	n := len(p.Stages)
	hashes := p.StageHashes()
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, st := range p.Stages {
		for _, in := range st.Inputs {
			indeg[i]++
			dependents[in] = append(dependents[in], i)
		}
	}
	ready := []int{}
	for i := range p.Stages {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	less := func(a, b int) bool {
		sa, sb := p.Stages[a], p.Stages[b]
		if ra, rb := kindRank(sa.Kind), kindRank(sb.Kind); ra != rb {
			return ra < rb
		}
		if sa.Class != sb.Class {
			return sa.Class < sb.Class
		}
		if hashes[a] != hashes[b] {
			return hashes[a] < hashes[b]
		}
		return a < b
	}
	var order []int
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
		next := ready[0]
		ready = ready[1:]
		order = append(order, next)
		for _, d := range dependents[next] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(order) != n {
		// A cycle cannot arise from compilation; keep the original order
		// defensively.
		return p
	}
	remap := make([]int, n)
	q := &Plan{Version: p.Version, Stages: make([]*Stage, 0, n)}
	for newIdx, oldIdx := range order {
		remap[oldIdx] = newIdx
		q.Stages = append(q.Stages, p.Stages[oldIdx])
	}
	for _, st := range q.Stages {
		for i, in := range st.Inputs {
			st.Inputs[i] = remap[in]
		}
	}
	return q
}

// idStems maps classes to canonical variable stems for regenerated IDs.
var idStems = map[string]string{
	"LegacyVTKReader": "reader",
	"ExodusIIReader":  "reader",
	"Contour":         "contour",
	"Slice":           "slice",
	"Clip":            "clip",
	"Delaunay3D":      "delaunay3D",
	"StreamTracer":    "streamTracer",
	"Tube":            "tube",
	"Glyph":           "glyph",
	"ExtractSurface":  "extractSurface",
	"Threshold":       "threshold",
	"Transform":       "transform",
	ViewClass:         "renderView",
	ScreenshotClass:   "screenshot",
}

// assignIDs renames every stage to its canonical class-stem + ordinal;
// displays take their source stage's ID plus a "Display" suffix.
func assignIDs(p *Plan) {
	counts := map[string]int{}
	for _, st := range p.Stages {
		if st.Kind == StageDisplay {
			continue
		}
		stem, ok := idStems[st.Class]
		if !ok {
			stem = "stage"
		}
		counts[stem]++
		st.ID = fmt.Sprintf("%s%d", stem, counts[stem])
	}
	for _, st := range p.Stages {
		if st.Kind != StageDisplay {
			continue
		}
		base := "display"
		if len(st.Inputs) > 0 {
			base = p.Stages[st.Inputs[0]].ID + "Display"
		}
		counts[base]++
		if counts[base] > 1 {
			st.ID = fmt.Sprintf("%s%d", base, counts[base])
		} else {
			st.ID = base
		}
	}
}
