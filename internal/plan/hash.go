package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// stageKey renders the canonical, order-independent content encoding of
// one stage (excluding its inputs): kind, class, sorted properties and
// the camera-operation sequence. IDs are deliberately excluded so
// renamed-but-equal stages hash identically.
func (st *Stage) stageKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%s;c=%s;", st.Kind, st.Class)
	names := make([]string, 0, len(st.Props))
	for name := range st.Props {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteString(name + "=")
		st.Props[name].writeKey(&b)
		b.WriteString(";")
	}
	if len(st.Camera) > 0 {
		b.WriteString("cam=" + strings.Join(st.Camera, ",") + ";")
	}
	return b.String()
}

// StageHashes returns the canonical subtree hash of every stage: a
// sha256 over the stage's own content plus the subtree hashes of its
// inputs, in input order. Two stages with equal subtree hashes denote
// the same computation — the invariant incremental execution and the
// PR-3 dataset-cache keys both rely on.
func (p *Plan) StageHashes() []string {
	hashes := make([]string, len(p.Stages))
	var rec func(i int) string
	rec = func(i int) string {
		if hashes[i] != "" {
			return hashes[i]
		}
		h := sha256.New()
		fmt.Fprintf(h, "%s|in:", p.Stages[i].stageKey())
		for _, in := range p.Stages[i].Inputs {
			if in >= 0 && in < len(p.Stages) {
				fmt.Fprintf(h, "{%s}", rec(in))
			}
		}
		hashes[i] = hex.EncodeToString(h.Sum(nil))
		return hashes[i]
	}
	for i := range p.Stages {
		rec(i)
	}
	return hashes
}

// Hash returns the canonical content hash of the whole plan. It is
// computed over the multiset of stage subtree hashes, so any two plans
// that normalize identically share a hash regardless of stage order.
func (p *Plan) Hash() string {
	hashes := p.StageHashes()
	sorted := append([]string(nil), hashes...)
	sort.Strings(sorted)
	h := sha256.New()
	fmt.Fprintf(h, "plan-v%d;", p.Version)
	for _, s := range sorted {
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ChangedStages compares two plans by subtree hash and returns the IDs
// of the stages in next that have no hash-equal counterpart in prev —
// the set an incremental executor must recompute after a repair
// iteration.
func ChangedStages(prev, next *Plan) []string {
	seen := map[string]int{}
	if prev != nil {
		for _, h := range prev.StageHashes() {
			seen[h]++
		}
	}
	var changed []string
	hashes := next.StageHashes()
	for i, st := range next.Stages {
		if seen[hashes[i]] > 0 {
			seen[hashes[i]]--
			continue
		}
		changed = append(changed, st.ID)
	}
	return changed
}
