package plan

import (
	"fmt"
	"sort"
	"strings"
)

// DiffSummary renders a short human-readable description of how next
// differs from prev — the per-turn delta provenance a conversational
// session records alongside the machine-checkable ChangedStages list.
//
// Stages are matched by subtree hash (the same notion of identity the
// incremental executor uses); class-count deltas split the unmatched
// stages into added/removed vs modified.
func DiffSummary(prev, next *Plan) string {
	if next == nil {
		return ""
	}
	if prev == nil {
		return fmt.Sprintf("built %d stage(s)", len(next.Stages))
	}
	fwd := ChangedStages(prev, next)  // changed-or-added, IDs in next
	back := ChangedStages(next, prev) // changed-or-removed, IDs in prev
	if len(fwd) == 0 && len(back) == 0 {
		return "no changes"
	}

	classCount := func(p *Plan) map[string]int {
		m := map[string]int{}
		for _, st := range p.Stages {
			m[st.Class]++
		}
		return m
	}
	prevCount, nextCount := classCount(prev), classCount(next)
	classOf := func(p *Plan, id string) string {
		for _, st := range p.Stages {
			if st.ID == id {
				return st.Class
			}
		}
		return ""
	}

	// A class with more instances in next than prev contributes that many
	// "added" slots; unmatched next-side stages beyond the quota are
	// modifications of existing ones. Symmetrically for removals.
	addQuota, removeQuota := map[string]int{}, map[string]int{}
	for cls, n := range nextCount {
		if extra := n - prevCount[cls]; extra > 0 {
			addQuota[cls] = extra
		}
	}
	for cls, n := range prevCount {
		if extra := n - nextCount[cls]; extra > 0 {
			removeQuota[cls] = extra
		}
	}

	var added, changed, removed []string
	for _, id := range fwd {
		cls := classOf(next, id)
		if addQuota[cls] > 0 {
			addQuota[cls]--
			added = append(added, cls)
			continue
		}
		changed = append(changed, id)
	}
	for _, id := range back {
		cls := classOf(prev, id)
		if removeQuota[cls] > 0 {
			removeQuota[cls]--
			removed = append(removed, cls)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)

	var parts []string
	if len(added) > 0 {
		parts = append(parts, "added "+strings.Join(added, ", "))
	}
	if len(changed) > 0 {
		parts = append(parts, "changed "+strings.Join(changed, ", "))
	}
	if len(removed) > 0 {
		parts = append(parts, "removed "+strings.Join(removed, ", "))
	}
	if len(parts) == 0 {
		return "no changes"
	}
	return strings.Join(parts, "; ")
}
