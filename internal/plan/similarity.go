package plan

import (
	"fmt"
	"strings"
)

// Score is the plan-graph similarity result: how closely one pipeline
// DAG matches another, scored over typed structure instead of script
// text — the evaluation the paper's §V proposes, lifted from heuristic
// fact strings onto the IR.
type Score struct {
	// StageF1 compares the multiset of stage classes.
	StageF1 float64
	// EdgeF1 compares dataflow and attachment edges.
	EdgeF1 float64
	// PropF1 compares typed property assignments (and camera operations).
	PropF1 float64
	// Overall is the weighted combination used for ranking.
	Overall float64
}

// String renders the score compactly.
func (s Score) String() string {
	return fmt.Sprintf("stage=%.2f edge=%.2f prop=%.2f overall=%.2f",
		s.StageF1, s.EdgeF1, s.PropF1, s.Overall)
}

// Similarity scores got against want. Compare normalized plans: the
// score then reflects semantic differences only, not construction order
// or variable naming.
func Similarity(got, want *Plan) Score {
	var s Score
	s.StageF1 = multisetF1(stageClasses(got), stageClasses(want))
	s.EdgeF1 = multisetF1(edges(got), edges(want))
	s.PropF1 = multisetF1(propFacts(got), propFacts(want))
	s.Overall = 0.4*s.StageF1 + 0.25*s.EdgeF1 + 0.35*s.PropF1
	return s
}

func stageClasses(p *Plan) []string {
	out := make([]string, 0, len(p.Stages))
	for _, st := range p.Stages {
		out = append(out, st.Class)
	}
	return out
}

// edges lists dataflow edges plus display/screenshot attachments.
func edges(p *Plan) []string {
	var out []string
	for _, st := range p.Stages {
		for _, in := range st.Inputs {
			up := p.Stage(in)
			if up == nil {
				continue
			}
			out = append(out, up.Class+"->"+st.Class)
		}
	}
	return out
}

// propFacts renders every property (and camera op) as "Class.Prop=key".
func propFacts(p *Plan) []string {
	var out []string
	for _, st := range p.Stages {
		for name, v := range st.Props {
			if v.Kind == KindHelper {
				for oname, ov := range v.Obj {
					var b strings.Builder
					ov.writeKey(&b)
					out = append(out, st.Class+"."+name+"."+oname+"="+b.String())
				}
				continue
			}
			var b strings.Builder
			v.writeKey(&b)
			out = append(out, st.Class+"."+name+"="+b.String())
		}
		for _, op := range st.Camera {
			out = append(out, st.Class+"."+op+"()")
		}
	}
	return out
}

// multisetF1 computes the F1 overlap of two string multisets.
func multisetF1(got, want []string) float64 {
	if len(got) == 0 && len(want) == 0 {
		return 1
	}
	if len(got) == 0 || len(want) == 0 {
		return 0
	}
	count := map[string]int{}
	for _, w := range want {
		count[w]++
	}
	match := 0
	for _, g := range got {
		if count[g] > 0 {
			count[g]--
			match++
		}
	}
	precision := float64(match) / float64(len(got))
	recall := float64(match) / float64(len(want))
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}
