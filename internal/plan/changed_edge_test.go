package plan

import (
	"strings"
	"testing"
)

// Edge-case coverage for ChangedStages / Similarity / DiffSummary — the
// comparisons every conversational turn leans on.

func edgeIsoPlan(id string) *Plan {
	p := New()
	reader := &Stage{Kind: StageSource, ID: id + "Reader", Class: "LegacyVTKReader"}
	reader.SetProp("FileNames", ListV(StrV("ml-100.vtk")), 0)
	ri := p.Add(reader)
	contour := &Stage{Kind: StageFilter, ID: id + "Contour", Class: "Contour", Inputs: []int{ri}}
	contour.SetProp("ContourBy", AssocV("POINTS", "var0"), 0)
	contour.SetProp("Isosurfaces", NumsV(0.5), 0)
	ci := p.Add(contour)
	view := &Stage{Kind: StageView, ID: id + "View", Class: ViewClass, Camera: []string{"ResetCamera"}}
	view.SetProp("ViewSize", NumsV(480, 270), 0)
	vi := p.Add(view)
	p.Add(&Stage{Kind: StageDisplay, ID: id + "Display", Class: DisplayClass, Inputs: []int{ci, vi}})
	ss := &Stage{Kind: StageScreenshot, ID: id + "Shot", Class: ScreenshotClass, Inputs: []int{vi}}
	ss.SetProp(PropFilename, StrV("iso.png"), 0)
	p.Add(ss)
	return p
}

func TestChangedStagesEmptyVsNonEmpty(t *testing.T) {
	p := edgeIsoPlan("a")
	// nil previous plan: everything is new.
	if got := ChangedStages(nil, p); len(got) != len(p.Stages) {
		t.Errorf("nil prev: %d changed, want %d", len(got), len(p.Stages))
	}
	// Empty (but non-nil) previous plan behaves the same.
	if got := ChangedStages(New(), p); len(got) != len(p.Stages) {
		t.Errorf("empty prev: %d changed, want %d", len(got), len(p.Stages))
	}
	// Shrinking to an empty plan changes nothing on the next side.
	if got := ChangedStages(p, New()); len(got) != 0 {
		t.Errorf("empty next reports changes: %v", got)
	}
	// Identical plans: no changes.
	if got := ChangedStages(p, edgeIsoPlan("a")); len(got) != 0 {
		t.Errorf("identical plans report changes: %v", got)
	}
}

func TestChangedStagesScreenshotOnlyEdit(t *testing.T) {
	prev := edgeIsoPlan("a")
	next := edgeIsoPlan("a")
	for _, st := range next.Stages {
		if st.Kind == StageScreenshot {
			st.SetProp(PropFilename, StrV("renamed.png"), 0)
		}
	}
	got := ChangedStages(prev, next)
	if len(got) != 1 || !strings.HasSuffix(got[0], "Shot") {
		t.Errorf("screenshot-only edit changed %v, want just the screenshot stage", got)
	}
	// No pipeline stage changed: an incremental executor recomputes no
	// filter for a rename.
	for _, id := range got {
		if strings.Contains(id, "Contour") || strings.Contains(id, "Reader") {
			t.Errorf("pipeline stage %s flagged by a screenshot rename", id)
		}
	}
}

func TestChangedStagesPropertyOnlyEdit(t *testing.T) {
	prev := edgeIsoPlan("a")
	next := edgeIsoPlan("a")
	next.Stages[1].SetProp("Isosurfaces", NumsV(0.7), 0)
	got := ChangedStages(prev, next)
	// The contour changed, and its dependent display inherits the change
	// through its subtree hash; reader, view and screenshot do not.
	want := map[string]bool{"aContour": true, "aDisplay": true}
	if len(got) != len(want) {
		t.Fatalf("changed = %v, want %v", got, want)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected changed stage %s", id)
		}
	}
}

func TestChangedStagesRenamedVariableSameStructure(t *testing.T) {
	// Stage IDs are naming, not meaning: a plan rebuilt with different
	// variable names has equal subtree hashes everywhere.
	prev := edgeIsoPlan("a")
	next := edgeIsoPlan("completelyDifferentName")
	if got := ChangedStages(prev, next); len(got) != 0 {
		t.Errorf("renamed-but-identical plan reports changes: %v", got)
	}
	if prev.Hash() != next.Hash() {
		t.Error("renamed-but-identical plans hash differently")
	}
}

func TestSimilarityEmptyAndRenamedEdges(t *testing.T) {
	p := edgeIsoPlan("a")
	empty := New()
	if s := Similarity(empty, empty); s.Overall != 1 {
		t.Errorf("empty vs empty = %v, want all-1", s)
	}
	if s := Similarity(empty, p); s.Overall != 0 {
		t.Errorf("empty vs full = %v, want 0", s)
	}
	if s := Similarity(p, empty); s.Overall != 0 {
		t.Errorf("full vs empty = %v, want 0", s)
	}
	if s := Similarity(p, edgeIsoPlan("z")); s.Overall != 1 {
		t.Errorf("renamed-identical similarity = %v, want 1", s)
	}
	// A property-only edit dents PropF1 but not stage/edge structure.
	edited := edgeIsoPlan("a")
	edited.Stages[1].SetProp("Isosurfaces", NumsV(0.9), 0)
	s := Similarity(edited, p)
	if s.StageF1 != 1 || s.EdgeF1 != 1 {
		t.Errorf("structure scores changed on a property edit: %v", s)
	}
	if s.PropF1 >= 1 {
		t.Errorf("PropF1 = %v, want < 1 after a property edit", s.PropF1)
	}
}

func TestDiffSummaryShapes(t *testing.T) {
	p := edgeIsoPlan("a")
	if got := DiffSummary(nil, p); !strings.Contains(got, "built") {
		t.Errorf("first-turn summary = %q", got)
	}
	if got := DiffSummary(p, edgeIsoPlan("z")); got != "no changes" {
		t.Errorf("identical summary = %q", got)
	}
	edited := edgeIsoPlan("a")
	edited.Stages[1].SetProp("Isosurfaces", NumsV(0.7), 0)
	if got := DiffSummary(p, edited); !strings.Contains(got, "changed") {
		t.Errorf("property-edit summary = %q", got)
	}
	// Add a clip between contour and display.
	added := edgeIsoPlan("a")
	clip := &Stage{Kind: StageFilter, ID: "clip1", Class: "Clip", Inputs: []int{1}}
	ci := added.Add(clip)
	for _, st := range added.Stages {
		if st.Kind == StageDisplay {
			st.Inputs[0] = ci
		}
	}
	got := DiffSummary(p, added)
	if !strings.Contains(got, "added Clip") {
		t.Errorf("added-stage summary = %q", got)
	}
	if back := DiffSummary(added, p); !strings.Contains(back, "removed Clip") {
		t.Errorf("removed-stage summary = %q", back)
	}
}
