package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Diagnostic severities.
const (
	SevError   = "error"
	SevWarning = "warning"
)

// Diagnostic kinds.
const (
	DiagUnknownClass    = "unknown-class"
	DiagUnknownProperty = "unknown-property"
	DiagUnknownMethod   = "unknown-method"
	DiagUnknownFunction = "unknown-function"
	DiagTypeMismatch    = "type-mismatch"
	DiagViewByName      = "view-by-name"
	DiagBadInput        = "bad-input"
)

// Diagnostic is one structured pre-execution finding: what is wrong,
// where (stage + source line), and on which class/property — everything
// a repair pass needs to fix the script without paying for an engine
// run first.
type Diagnostic struct {
	Kind     string `json:"kind"`
	Severity string `json:"severity"`
	Stage    string `json:"stage,omitempty"`
	Class    string `json:"class,omitempty"`
	Property string `json:"property,omitempty"`
	Line     int    `json:"line,omitempty"`
	Message  string `json:"message"`
}

// String renders one diagnostic compactly.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]", d.Severity, d.Kind)
	if d.Line > 0 {
		fmt.Fprintf(&b, " line %d", d.Line)
	}
	if d.Stage != "" {
		fmt.Fprintf(&b, " stage %s", d.Stage)
	}
	b.WriteString(": " + d.Message)
	return b.String()
}

// Errors filters the diagnostics down to error severity.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(diags []Diagnostic) bool { return len(Errors(diags)) > 0 }

// FormatDiagnostics renders diagnostics one per line, sorted by source
// line, for prompts and CLI output.
func FormatDiagnostics(diags []Diagnostic) string {
	sorted := append([]Diagnostic(nil), diags...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Line < sorted[j].Line })
	var b strings.Builder
	for _, d := range sorted {
		b.WriteString(d.String() + "\n")
	}
	return b.String()
}

// Validate checks a plan against the schema and returns structured
// diagnostics: unknown classes, unknown (hallucinated) properties, type
// mismatches, invalid helper members, unknown camera operations, and
// view-by-name display attachments. It works on any plan — compiled
// from a script (with source positions) or built programmatically.
func Validate(p *Plan, s *Schema) []Diagnostic {
	var diags []Diagnostic
	add := func(d Diagnostic) { diags = append(diags, d) }

	for _, st := range p.Stages {
		switch st.Kind {
		case StageScreenshot:
			for name := range st.Props {
				if !screenshotProps[name] {
					add(Diagnostic{
						Kind: DiagUnknownProperty, Severity: SevWarning,
						Stage: st.ID, Class: ScreenshotClass, Property: name,
						Line:    st.propLine(name),
						Message: fmt.Sprintf("SaveScreenshot() ignores unknown option %q", name),
					})
				}
			}
			continue
		case StageView, StageDisplay, StageSource, StageFilter:
		default:
			add(Diagnostic{
				Kind: DiagUnknownClass, Severity: SevError, Stage: st.ID,
				Line:    st.Line,
				Message: fmt.Sprintf("unknown stage kind %q", st.Kind),
			})
			continue
		}

		cls := s.Class(st.Class)
		if cls == nil {
			add(Diagnostic{
				Kind: DiagUnknownClass, Severity: SevError, Stage: st.ID,
				Class: st.Class, Line: st.Line,
				Message: fmt.Sprintf("name '%s' is not defined", st.Class),
			})
			continue
		}

		for name, v := range st.Props {
			if st.Kind == StageDisplay && name == PropViewName {
				add(Diagnostic{
					Kind: DiagViewByName, Severity: SevError, Stage: st.ID,
					Class: ViewClass, Property: name, Line: st.propLine(name),
					Message: fmt.Sprintf("view referenced by name %q before a view proxy exists — pass the GetActiveViewOrCreate result instead", v.Str),
				})
				continue
			}
			if !cls.HasMember(name) {
				add(Diagnostic{
					Kind: DiagUnknownProperty, Severity: SevError, Stage: st.ID,
					Class: st.Class, Property: name, Line: st.propLine(name),
					Message: fmt.Sprintf("'%s' object has no attribute '%s'", st.Class, name),
				})
				continue
			}
			if prop, ok := cls.Props[name]; ok && !TypeAccepts(prop.Type, v) {
				add(Diagnostic{
					Kind: DiagTypeMismatch, Severity: SevError, Stage: st.ID,
					Class: st.Class, Property: name, Line: st.propLine(name),
					Message: fmt.Sprintf("%s.%s expects %s, got %s", st.Class, name, prop.Type, v.PyLit()),
				})
				continue
			}
			if v.Kind == KindHelper {
				diags = append(diags, validateHelper(s, st, name, v)...)
			}
		}

		for _, op := range st.Camera {
			if cls.Methods[op] || s.Functions[op] {
				continue
			}
			add(Diagnostic{
				Kind: DiagUnknownMethod, Severity: SevError, Stage: st.ID,
				Class: st.Class, Property: op, Line: st.Line,
				Message: fmt.Sprintf("'%s' object has no attribute '%s'", st.Class, op),
			})
		}
	}
	return diags
}

// validateHelper checks a nested helper value's class and properties.
func validateHelper(s *Schema, st *Stage, propName string, v Value) []Diagnostic {
	var diags []Diagnostic
	hcls := s.Class(v.Class)
	if hcls == nil || hcls.Kind != "helper" {
		return []Diagnostic{{
			Kind: DiagUnknownClass, Severity: SevError, Stage: st.ID,
			Class: st.Class, Property: propName, Line: st.propLine(propName),
			Message: fmt.Sprintf("unknown %s '%s'", propName, v.Class),
		}}
	}
	for name, pv := range v.Obj {
		line := st.propLine(propName + "." + name)
		if !hcls.HasMember(name) {
			diags = append(diags, Diagnostic{
				Kind: DiagUnknownProperty, Severity: SevError, Stage: st.ID,
				Class: v.Class, Property: name, Line: line,
				Message: fmt.Sprintf("'%s' object has no attribute '%s'", v.Class, name),
			})
			continue
		}
		if prop, ok := hcls.Props[name]; ok && !TypeAccepts(prop.Type, pv) {
			diags = append(diags, Diagnostic{
				Kind: DiagTypeMismatch, Severity: SevError, Stage: st.ID,
				Class: v.Class, Property: name, Line: line,
				Message: fmt.Sprintf("%s.%s expects %s, got %s", v.Class, name, prop.Type, pv.PyLit()),
			})
		}
	}
	return diags
}
