package plan

import (
	"fmt"
	"path/filepath"
	"strings"

	"chatvis/internal/pypy"
)

// Compiled is the result of compiling script text to the IR.
type Compiled struct {
	// Plan is the extracted pipeline DAG, in construction order (not yet
	// normalized).
	Plan *Plan
	// Diags are the structured pre-execution findings: compile-shaped
	// ones (unknown functions/methods, ColorBy on a pipeline proxy) plus
	// the full schema validation of the extracted plan.
	Diags []Diagnostic
	// VarClass maps every script variable the compiler resolved to the
	// proxy class it holds — the authoritative replacement for
	// name-pattern guessing in scriptcmp.
	VarClass map[string]string
}

// HasErrors reports whether any diagnostic is an error.
func (c *Compiled) HasErrors() bool { return HasErrors(c.Diags) }

// Compile statically compiles ParaView Python script text into a plan.
// It returns an error only when the script does not parse; semantic
// problems (hallucinated properties, view-by-name, type mismatches)
// become Diagnostics, and the offending constructs are still recorded in
// the plan so that rendering a compiled plan back to a script reproduces
// them — plans round-trip even for defective scripts.
func Compile(script string, s *Schema) (*Compiled, error) {
	mod, err := pypy.Parse("script.py", script)
	if err != nil {
		return nil, err
	}
	return CompileModule(mod, s), nil
}

// CompileModule compiles an already-parsed module — for callers (like
// scriptcmp) that walk the same AST themselves and should not pay for a
// second parse.
func CompileModule(mod *pypy.Module, s *Schema) *Compiled {
	if s == nil {
		// Schema-less compilation: parse-only extraction, every member
		// check reports unknown (callers use pvsim.PlanSchema normally).
		s = &Schema{Classes: map[string]*Class{}}
	}
	c := &compiler{
		schema:     s,
		plan:       New(),
		vars:       map[string]int{},
		varClass:   map[string]string{},
		active:     -1,
		activeView: -1,
	}
	c.stmts(mod.Body)
	diags := append(c.diags, Validate(c.plan, s)...)
	return &Compiled{Plan: c.plan, Diags: diags, VarClass: c.varClass}
}

type compiler struct {
	schema   *Schema
	plan     *Plan
	vars     map[string]int    // variable -> stage index
	varClass map[string]string // variable -> proxy class (incl. validate-only vars)
	diags    []Diagnostic

	active     int // last pipeline stage (implicit filter input)
	activeView int // last view stage
}

func (c *compiler) diag(d Diagnostic) { c.diags = append(c.diags, d) }

func (c *compiler) stmts(body []pypy.Stmt) {
	for _, st := range body {
		switch s := st.(type) {
		case *pypy.Assign:
			if call, ok := s.Value.(*pypy.Call); ok {
				c.call(call, targetNames(s.Targets), s.Line())
				continue
			}
			for _, tgt := range s.Targets {
				if attr, ok := tgt.(*pypy.Attribute); ok {
					c.setAttr(attr, s.Value, s.Line())
				}
			}
		case *pypy.ExprStmt:
			if call, ok := s.X.(*pypy.Call); ok {
				c.call(call, nil, s.Line())
			}
		case *pypy.If:
			c.stmts(s.Body)
			c.stmts(s.Else)
		case *pypy.For:
			c.stmts(s.Body)
		case *pypy.While:
			c.stmts(s.Body)
		}
	}
}

func targetNames(ts []pypy.Expr) []string {
	var out []string
	for _, t := range ts {
		if n, ok := t.(*pypy.Name); ok {
			out = append(out, n.ID)
		}
	}
	return out
}

// bind associates assignment targets with a stage.
func (c *compiler) bind(targets []string, idx int) {
	for _, t := range targets {
		c.vars[t] = idx
		c.varClass[t] = c.plan.Stages[idx].Class
	}
}

// bindClass records a validate-only variable (transfer functions,
// cameras): no stage, but member accesses are still checked.
func (c *compiler) bindClass(targets []string, class string) {
	for _, t := range targets {
		delete(c.vars, t)
		c.varClass[t] = class
	}
}

// exprValue lowers a literal expression to a Value. Non-literal
// expressions (names, arithmetic) report ok=false.
func exprValue(e pypy.Expr) (Value, bool) {
	switch v := e.(type) {
	case *pypy.NumLit:
		if v.IsInt {
			return IntV(v.Int), true
		}
		return NumV(v.Float), true
	case *pypy.StrLit:
		return StrV(v.Value), true
	case *pypy.BoolLit:
		return BoolV(v.Value), true
	case *pypy.NoneLit:
		return NoneV(), true
	case *pypy.ListLit:
		return seqValue(v.Elts)
	case *pypy.TupleLit:
		return seqValue(v.Elts)
	case *pypy.UnaryOp:
		if inner, ok := exprValue(v.X); ok && inner.Kind == KindNum {
			switch v.Op {
			case "-":
				inner.Num = -inner.Num
				return inner, true
			case "+":
				return inner, true
			}
		}
	}
	return Value{}, false
}

func seqValue(elts []pypy.Expr) (Value, bool) {
	items := make([]Value, len(elts))
	for i, e := range elts {
		v, ok := exprValue(e)
		if !ok {
			return Value{}, false
		}
		items[i] = v
	}
	return Value{Kind: KindList, List: items}, true
}

// moduleCameraOps are the module-level camera functions that act on the
// active view.
var moduleCameraOps = map[string]bool{
	"ResetCamera":                      true,
	"ResetActiveCameraToPositiveX":     true,
	"ResetActiveCameraToNegativeX":     true,
	"ResetActiveCameraToPositiveY":     true,
	"ResetActiveCameraToNegativeY":     true,
	"ResetActiveCameraToPositiveZ":     true,
	"ResetActiveCameraToNegativeZ":     true,
	"ResetActiveCameraToIsometricView": true,
}

// viewCameraOps are the view methods recorded as camera operations.
var viewCameraOps = map[string]bool{
	"ResetCamera":                  true,
	"ApplyIsometricView":           true,
	"ResetActiveCameraToPositiveX": true,
	"ResetActiveCameraToNegativeX": true,
	"ResetActiveCameraToPositiveY": true,
	"ResetActiveCameraToNegativeY": true,
	"ResetActiveCameraToPositiveZ": true,
	"ResetActiveCameraToNegativeZ": true,
}

// pyBuiltins are interpreter builtins calls to which are never
// diagnosed.
var pyBuiltins = map[string]bool{
	"print": true, "len": true, "range": true, "str": true, "int": true,
	"float": true, "abs": true, "min": true, "max": true, "sum": true,
	"sorted": true, "list": true, "tuple": true, "dict": true, "bool": true,
	"enumerate": true, "round": true, "zip": true,
}

func (c *compiler) call(call *pypy.Call, targets []string, line int) {
	switch f := call.Func.(type) {
	case *pypy.Name:
		c.nameCall(f.ID, call, targets, line)
	case *pypy.Attribute:
		c.methodCall(f, call, targets, line)
	}
}

func (c *compiler) nameCall(name string, call *pypy.Call, targets []string, line int) {
	if cls := c.schema.Class(name); cls != nil && (cls.Kind == "source" || cls.Kind == "filter") {
		c.construct(name, cls, call, targets, line)
		return
	}
	switch {
	case name == "OpenDataFile":
		c.openDataFile(call, targets, line)
	case name == "GetActiveViewOrCreate" || name == "GetActiveView":
		idx := c.activeView
		if idx < 0 {
			idx = c.newView(line)
		}
		c.bind(targets, idx)
	case name == "CreateView" || name == "CreateRenderView":
		c.bind(targets, c.newView(line))
	case name == "SetActiveView":
		if len(call.Args) > 0 {
			if n, ok := call.Args[0].(*pypy.Name); ok {
				if idx, ok := c.vars[n.ID]; ok && c.plan.Stages[idx].Kind == StageView {
					c.activeView = idx
				}
			}
		}
	case name == "SetActiveSource":
		if len(call.Args) > 0 {
			if n, ok := call.Args[0].(*pypy.Name); ok {
				if idx, ok := c.vars[n.ID]; ok && c.plan.Stages[idx].IsPipeline() {
					c.active = idx
				}
			}
		}
	case name == "Show":
		c.show(call, targets, line)
	case name == "Hide":
		// Static approximation: hiding is rare in generated scripts and
		// does not change the DAG; ignore.
	case name == "ColorBy":
		c.colorBy(call, line)
	case name == "SaveScreenshot":
		c.screenshot(call, line)
	case name == "GetColorTransferFunction":
		c.bindClass(targets, "PVLookupTable")
	case name == "GetOpacityTransferFunction":
		c.bindClass(targets, "PiecewiseFunction")
	case name == "GetDisplayProperties":
		c.bindClass(targets, DisplayClass)
	case moduleCameraOps[name]:
		// Module-level camera op on the (optionally explicit) view.
		idx := -1
		if len(call.Args) > 0 {
			if n, ok := call.Args[0].(*pypy.Name); ok {
				if i, ok := c.vars[n.ID]; ok && c.plan.Stages[i].Kind == StageView {
					idx = i
				}
			}
		}
		if idx < 0 {
			idx = c.ensureView(line)
		}
		op := name
		if name == "ResetActiveCameraToIsometricView" {
			op = "ApplyIsometricView"
		}
		st := c.plan.Stages[idx]
		st.Camera = append(st.Camera, op)
	case name == "Render", name == "Interact", name == "Delete",
		name == "UpdateScalarBars", name == "HideScalarBarIfNotNeeded",
		name == "GetParaViewVersion", name == "GetLayout", name == "CreateLayout",
		name == "GetActiveSource", name == "_DisableFirstRenderCameraReset":
		// Known module functions with no plan effect.
	default:
		if c.schema.Functions != nil && c.schema.Functions[name] {
			return
		}
		if pyBuiltins[name] {
			return
		}
		c.diag(Diagnostic{
			Kind: DiagUnknownFunction, Severity: SevWarning, Line: line,
			Message: fmt.Sprintf("call to unknown function '%s'", name),
		})
	}
}

// construct compiles a pipeline constructor call into a stage.
func (c *compiler) construct(class string, cls *Class, call *pypy.Call, targets []string, line int) {
	kind := StageFilter
	if cls.Kind == "source" {
		kind = StageSource
	}
	st := &Stage{Kind: kind, Class: class, Line: line}
	if len(targets) > 0 {
		st.ID = targets[0]
	} else {
		st.ID = fmt.Sprintf("%s%d", strings.ToLower(class), len(c.plan.Stages)+1)
	}

	input := -1
	for i, kw := range call.KwNames {
		val := call.KwValues[i]
		switch kw {
		case "registrationName":
			continue
		case "Input":
			if n, ok := val.(*pypy.Name); ok {
				if up, ok := c.vars[n.ID]; ok && c.plan.Stages[up].IsPipeline() {
					input = up
					continue
				}
			}
			c.diag(Diagnostic{
				Kind: DiagBadInput, Severity: SevWarning, Stage: st.ID,
				Class: class, Line: line,
				Message: fmt.Sprintf("%s Input is not a known pipeline proxy", class),
			})
			continue
		}
		if helperClass, isHelper := helperDefaults[class][kw]; isHelper {
			if sl, ok := val.(*pypy.StrLit); ok {
				_ = helperClass
				st.SetProp(kw, HelperV(sl.Value), line)
				continue
			}
		}
		if v, ok := exprValue(val); ok {
			st.SetProp(kw, v, line)
		}
	}
	// Positional input (Contour(reader)).
	if input < 0 && len(call.Args) > 0 {
		if n, ok := call.Args[0].(*pypy.Name); ok {
			if up, ok := c.vars[n.ID]; ok && c.plan.Stages[up].IsPipeline() {
				input = up
			}
		}
	}
	// paraview.simple uses the active source as the implicit input.
	if input < 0 && kind == StageFilter && c.active >= 0 {
		input = c.active
	}
	if input >= 0 {
		st.Inputs = []int{input}
	}
	// The engine attaches helper proxies implicitly at construction.
	for prop, helperClass := range helperDefaults[class] {
		if _, ok := st.Props[prop]; !ok {
			st.SetProp(prop, HelperV(helperClass), 0)
		}
	}

	idx := c.plan.Add(st)
	c.active = idx
	c.bind(targets, idx)
}

// openDataFile compiles OpenDataFile by resolving the reader class from
// the file extension, exactly as the engine does.
func (c *compiler) openDataFile(call *pypy.Call, targets []string, line int) {
	if len(call.Args) == 0 {
		return
	}
	sl, ok := call.Args[0].(*pypy.StrLit)
	if !ok {
		return
	}
	name := sl.Value
	var st *Stage
	switch strings.ToLower(filepath.Ext(name)) {
	case ".vtk":
		st = &Stage{Kind: StageSource, Class: "LegacyVTKReader", Line: line}
		st.SetProp("FileNames", ListV(StrV(name)), line)
	case ".ex2", ".e", ".exo":
		st = &Stage{Kind: StageSource, Class: "ExodusIIReader", Line: line}
		st.SetProp("FileName", StrV(name), line)
	default:
		c.diag(Diagnostic{
			Kind: DiagBadInput, Severity: SevError, Line: line,
			Message: fmt.Sprintf("OpenDataFile: unsupported file type '%s'", name),
		})
		return
	}
	if len(targets) > 0 {
		st.ID = targets[0]
	} else {
		st.ID = "reader"
	}
	idx := c.plan.Add(st)
	c.active = idx
	c.bind(targets, idx)
}

func (c *compiler) newView(line int) int {
	st := &Stage{Kind: StageView, Class: ViewClass, Line: line}
	st.ID = fmt.Sprintf("renderView%d", c.countKind(StageView)+1)
	idx := c.plan.Add(st)
	c.activeView = idx
	return idx
}

func (c *compiler) countKind(kind string) int {
	n := 0
	for _, st := range c.plan.Stages {
		if st.Kind == kind {
			n++
		}
	}
	return n
}

func (c *compiler) ensureView(line int) int {
	if c.activeView >= 0 {
		return c.activeView
	}
	return c.newView(line)
}

// show compiles Show(src[, view[, rep]]) into a display stage.
func (c *compiler) show(call *pypy.Call, targets []string, line int) {
	src := c.active
	if len(call.Args) > 0 {
		src = -1
		if n, ok := call.Args[0].(*pypy.Name); ok {
			if idx, ok := c.vars[n.ID]; ok {
				if c.plan.Stages[idx].IsPipeline() {
					src = idx
				} else {
					c.diag(Diagnostic{
						Kind: DiagTypeMismatch, Severity: SevError, Line: line,
						Class:   c.plan.Stages[idx].Class,
						Message: fmt.Sprintf("Show() argument 1 must be a pipeline proxy, not '%s'", c.plan.Stages[idx].Class),
					})
				}
			}
		}
	}
	if src < 0 {
		return
	}
	st := &Stage{Kind: StageDisplay, Class: DisplayClass, Line: line}
	st.ID = c.plan.Stages[src].ID + "Display"
	st.Inputs = []int{src}
	viewResolved := false
	if len(call.Args) > 1 {
		switch a := call.Args[1].(type) {
		case *pypy.Name:
			if idx, ok := c.vars[a.ID]; ok && c.plan.Stages[idx].Kind == StageView {
				st.Inputs = append(st.Inputs, idx)
				viewResolved = true
			}
		case *pypy.StrLit:
			st.SetProp(PropViewName, StrV(a.Value), line)
			viewResolved = true // resolved to a (broken) reference
		}
	}
	if !viewResolved {
		st.Inputs = append(st.Inputs, c.ensureView(line))
	}
	if len(call.Args) > 2 {
		if sl, ok := call.Args[2].(*pypy.StrLit); ok {
			st.SetProp(PropRepresentation, StrV(sl.Value), line)
		}
	}
	idx := c.plan.Add(st)
	c.bind(targets, idx)
}

// colorBy compiles ColorBy(display, value). Calling it on a pipeline
// proxy — the unassisted-GPT-4 slice-contour failure — is diagnosed with
// the exact attribute the engine's duck-typed check would raise on.
func (c *compiler) colorBy(call *pypy.Call, line int) {
	if len(call.Args) == 0 {
		return
	}
	n, ok := call.Args[0].(*pypy.Name)
	if !ok {
		return
	}
	idx, bound := c.vars[n.ID]
	if !bound {
		return
	}
	st := c.plan.Stages[idx]
	if st.Kind != StageDisplay {
		c.diag(Diagnostic{
			Kind: DiagUnknownProperty, Severity: SevError, Stage: st.ID,
			Class: st.Class, Property: "UseSeparateColorMap", Line: line,
			Message: fmt.Sprintf("ColorBy() argument 1 is the %s pipeline proxy, not its representation: '%s' object has no attribute 'UseSeparateColorMap'", st.Class, st.Class),
		})
		return
	}
	var val Value
	if len(call.Args) > 1 {
		if v, ok := exprValue(call.Args[1]); ok {
			val = v
		}
	}
	switch val.Kind {
	case KindNone:
		st.SetProp(PropColorArray, ListV(StrV("POINTS"), NoneV()), line)
	case KindStr:
		st.SetProp(PropColorArray, AssocV("POINTS", val.Str), line)
	case KindList:
		st.SetProp(PropColorArray, val, line)
	}
}

// screenshot compiles SaveScreenshot into a screenshot stage.
func (c *compiler) screenshot(call *pypy.Call, line int) {
	st := &Stage{Kind: StageScreenshot, Class: ScreenshotClass, Line: line}
	st.ID = fmt.Sprintf("screenshot%d", c.countKind(StageScreenshot)+1)
	if len(call.Args) > 0 {
		if sl, ok := call.Args[0].(*pypy.StrLit); ok {
			st.SetProp(PropFilename, StrV(sl.Value), line)
		}
	}
	viewResolved := false
	if len(call.Args) > 1 {
		switch a := call.Args[1].(type) {
		case *pypy.Name:
			if idx, ok := c.vars[a.ID]; ok && c.plan.Stages[idx].Kind == StageView {
				st.Inputs = []int{idx}
				viewResolved = true
			}
		case *pypy.StrLit:
			st.SetProp(PropViewName, StrV(a.Value), line)
			viewResolved = true
		}
	}
	if !viewResolved {
		st.Inputs = []int{c.ensureView(line)}
	}
	for i, kw := range call.KwNames {
		if v, ok := exprValue(call.KwValues[i]); ok {
			st.SetProp(kw, v, line)
		}
	}
	c.plan.Add(st)
}

// methodCall compiles obj.Method(...) calls.
func (c *compiler) methodCall(f *pypy.Attribute, call *pypy.Call, targets []string, line int) {
	base, ok := f.Value.(*pypy.Name)
	if !ok {
		// Chained attribute receivers (paraview.simple._X()) are module
		// plumbing; ignore.
		return
	}
	if idx, bound := c.vars[base.ID]; bound {
		c.stageMethod(c.plan.Stages[idx], f.Attr, call, targets, line)
		return
	}
	if clsName, known := c.varClass[base.ID]; known {
		if cls := c.schema.Class(clsName); cls != nil && !cls.HasMember(f.Attr) {
			c.diag(Diagnostic{
				Kind: DiagUnknownMethod, Severity: SevError,
				Class: clsName, Property: f.Attr, Line: line,
				Message: fmt.Sprintf("'%s' object has no attribute '%s'", clsName, f.Attr),
			})
		}
	}
	// Unknown receivers (imported modules, loop variables) are ignored.
}

func (c *compiler) stageMethod(st *Stage, name string, call *pypy.Call, targets []string, line int) {
	cls := c.schema.Class(st.Class)
	switch st.Kind {
	case StageView:
		if viewCameraOps[name] {
			st.Camera = append(st.Camera, name)
			return
		}
		if name == "GetActiveCamera" {
			c.bindClass(targets, "Camera")
			return
		}
	case StageDisplay:
		switch name {
		case "SetRepresentationType":
			if len(call.Args) > 0 {
				if sl, ok := call.Args[0].(*pypy.StrLit); ok {
					st.SetProp(PropRepresentation, StrV(sl.Value), line)
				}
			}
			return
		case PropRescaleTF:
			st.SetProp(PropRescaleTF, BoolV(true), line)
			return
		}
	}
	if cls != nil && !cls.HasMember(name) {
		c.diag(Diagnostic{
			Kind: DiagUnknownMethod, Severity: SevError, Stage: st.ID,
			Class: st.Class, Property: name, Line: line,
			Message: fmt.Sprintf("'%s' object has no attribute '%s'", st.Class, name),
		})
	}
}

// setAttr compiles obj.Attr = value and obj.Helper.Attr = value.
func (c *compiler) setAttr(attr *pypy.Attribute, valueExpr pypy.Expr, line int) {
	// Unwind the attribute chain down to the base name.
	var chain []string
	cur := pypy.Expr(attr)
	for {
		at, ok := cur.(*pypy.Attribute)
		if !ok {
			break
		}
		chain = append([]string{at.Attr}, chain...)
		cur = at.Value
	}
	base, ok := cur.(*pypy.Name)
	if !ok || len(chain) == 0 {
		return
	}
	idx, bound := c.vars[base.ID]
	if !bound {
		if clsName, known := c.varClass[base.ID]; known {
			// Validate-only variable: member check without plan capture.
			if cls := c.schema.Class(clsName); cls != nil && !cls.HasMember(chain[0]) {
				c.diag(Diagnostic{
					Kind: DiagUnknownProperty, Severity: SevError,
					Class: clsName, Property: chain[0], Line: line,
					Message: fmt.Sprintf("'%s' object has no attribute '%s'", clsName, chain[0]),
				})
			}
		}
		return
	}
	st := c.plan.Stages[idx]
	val, isLit := exprValue(valueExpr)

	switch len(chain) {
	case 1:
		if !isLit {
			return
		}
		st.SetProp(chain[0], val, line)
	case 2:
		hv, ok := st.Props[chain[0]]
		if !ok || hv.Kind != KindHelper {
			// Assigning through a non-helper property: record the member
			// check via validation by attaching a synthetic helper only
			// when the class declares a helper there.
			if helperClass, isHelper := helperDefaults[st.Class][chain[0]]; isHelper {
				hv = HelperV(helperClass)
			} else {
				return
			}
		}
		if !isLit {
			return
		}
		hv = hv.WithObj(chain[1], val)
		st.SetProp(chain[0], hv, 0)
		if st.PropLines == nil {
			st.PropLines = map[string]int{}
		}
		st.PropLines[chain[0]+"."+chain[1]] = line
	}
}
