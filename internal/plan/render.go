package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Script renders the plan back to a canonical ParaView Python script.
// Rendering is the inverse of Compile up to normalization: compiling the
// rendered script and normalizing yields a plan byte-equal to the
// normalized input — including hallucinated properties, which are
// reproduced so that defective plans round-trip faithfully.
func (p *Plan) Script() string {
	var b strings.Builder
	names := p.renderNames()
	b.WriteString("from paraview.simple import *\n")
	b.WriteString("paraview.simple._DisableFirstRenderCameraReset()\n\n")

	// Pipeline stages.
	for i, st := range p.Stages {
		if !st.IsPipeline() {
			continue
		}
		var args []string
		if len(st.Inputs) > 0 {
			args = append(args, "Input="+names[st.Inputs[0]])
		}
		helperProps := []string{}
		for name, v := range st.Props {
			if v.Kind == KindHelper {
				helperProps = append(helperProps, name)
			}
		}
		sort.Strings(helperProps)
		for _, name := range helperProps {
			args = append(args, fmt.Sprintf("%s='%s'", name, st.Props[name].Class))
		}
		fmt.Fprintf(&b, "%s = %s(%s)\n", names[i], st.Class, strings.Join(args, ", "))
		for _, name := range sortedProps(st.Props) {
			v := st.Props[name]
			if v.Kind == KindHelper {
				for _, oname := range sortedProps(v.Obj) {
					fmt.Fprintf(&b, "%s.%s.%s = %s\n", names[i], name, oname, v.Obj[oname].PyLit())
				}
				continue
			}
			fmt.Fprintf(&b, "%s.%s = %s\n", names[i], name, v.PyLit())
		}
		b.WriteString("\n")
	}

	// Views.
	firstView := true
	for i, st := range p.Stages {
		if st.Kind != StageView {
			continue
		}
		if firstView {
			fmt.Fprintf(&b, "%s = GetActiveViewOrCreate('RenderView')\n", names[i])
			firstView = false
		} else {
			fmt.Fprintf(&b, "%s = CreateRenderView()\n", names[i])
		}
		for _, name := range sortedProps(st.Props) {
			fmt.Fprintf(&b, "%s.%s = %s\n", names[i], name, st.Props[name].PyLit())
		}
		b.WriteString("\n")
	}

	// Displays.
	for i, st := range p.Stages {
		if st.Kind != StageDisplay {
			continue
		}
		src := "GetActiveSource()"
		if len(st.Inputs) > 0 {
			src = names[st.Inputs[0]]
		}
		viewArg := ""
		if vn, ok := st.Props[PropViewName]; ok {
			viewArg = ", " + vn.PyLit()
		} else if len(st.Inputs) > 1 {
			viewArg = ", " + names[st.Inputs[1]]
		}
		fmt.Fprintf(&b, "%s = Show(%s%s)\n", names[i], src, viewArg)
		if rep, ok := st.Props[PropRepresentation]; ok {
			fmt.Fprintf(&b, "%s.SetRepresentationType(%s)\n", names[i], rep.PyLit())
		}
		for _, name := range sortedProps(st.Props) {
			switch name {
			case PropRepresentation, PropColorArray, PropRescaleTF, PropViewName:
				continue
			}
			fmt.Fprintf(&b, "%s.%s = %s\n", names[i], name, st.Props[name].PyLit())
		}
		if ca, ok := st.Props[PropColorArray]; ok {
			fmt.Fprintf(&b, "ColorBy(%s, %s)\n", names[i], colorByArg(ca))
		}
		if v, ok := st.Props[PropRescaleTF]; ok && v.Kind == KindBool && v.Bool {
			fmt.Fprintf(&b, "%s.RescaleTransferFunctionToDataRange(True)\n", names[i])
		}
	}
	b.WriteString("\n")

	// Camera operations, per view, in recorded order.
	for i, st := range p.Stages {
		if st.Kind != StageView {
			continue
		}
		for _, op := range st.Camera {
			fmt.Fprintf(&b, "%s.%s()\n", names[i], op)
		}
	}

	// Screenshots.
	for _, st := range p.Stages {
		if st.Kind != StageScreenshot {
			continue
		}
		file := "'screenshot.png'"
		if v, ok := st.Props[PropFilename]; ok {
			file = v.PyLit()
		}
		viewArg := ""
		if vn, ok := st.Props[PropViewName]; ok {
			viewArg = ", " + vn.PyLit()
		} else if len(st.Inputs) > 0 {
			viewArg = ", " + names[st.Inputs[0]]
		}
		fmt.Fprintf(&b, "\nSaveScreenshot(%s%s", file, viewArg)
		for _, name := range sortedProps(st.Props) {
			switch name {
			case PropFilename, PropViewName:
				continue
			}
			fmt.Fprintf(&b, ",\n    %s=%s", name, st.Props[name].PyLit())
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// colorByArg renders a ColorArrayName value as the ColorBy argument.
func colorByArg(v Value) string {
	if v.Kind == KindList && len(v.List) == 2 {
		if v.List[1].Kind == KindNone {
			return "None"
		}
		return fmt.Sprintf("(%s, %s)", v.List[0].PyLit(), v.List[1].PyLit())
	}
	return v.PyLit()
}

func sortedProps[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// renderNames assigns unique, valid Python identifiers to every stage.
func (p *Plan) renderNames() []string {
	names := make([]string, len(p.Stages))
	used := map[string]bool{}
	for i, st := range p.Stages {
		name := sanitizeIdent(st.ID)
		if name == "" {
			name = fmt.Sprintf("stage%d", i+1)
		}
		for used[name] {
			name += "_"
		}
		used[name] = true
		names[i] = name
	}
	return names
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteString("v")
			}
			b.WriteRune(r)
		default:
			b.WriteString("_")
		}
	}
	return b.String()
}
