// Package plan defines the typed pipeline-plan IR: a canonical,
// serializable DAG of visualization stages compiled from ParaView Python
// script text (or built programmatically), validated against a proxy
// schema derived from what the engine actually implements.
//
// The IR is the shared currency between the layers of the reproduction:
// the writer emits the plan it intends, the runner compiles every script
// it executes into one, the engine can execute a plan directly (and
// incrementally, re-running only stages whose canonical subtree hash
// changed), repair consumes pre-execution validation diagnostics, eval
// scores plan-graph similarity, and chatvisd coalesces requests on the
// normalized plan hash instead of raw prompt text.
package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Stage kinds.
const (
	StageSource     = "source"
	StageFilter     = "filter"
	StageView       = "view"
	StageDisplay    = "display"
	StageScreenshot = "screenshot"
)

// Classes of the non-proxy stage kinds.
const (
	// DisplayClass is the representation class a display stage carries.
	DisplayClass = "GeometryRepresentation"
	// ViewClass is the render-view class.
	ViewClass = "RenderView"
	// ScreenshotClass is the pseudo-class of screenshot stages (there is
	// no proxy behind SaveScreenshot; the stage captures its arguments).
	ScreenshotClass = "Screenshot"
)

// Reserved stage property names that are plan markers rather than proxy
// properties.
const (
	// PropViewName records a display whose view was referenced by name
	// string instead of a proxy (the unassisted-GPT-4 failure mode);
	// validation reports it, execution refuses it.
	PropViewName = "ViewName"
	// PropRescaleTF marks a RescaleTransferFunctionToDataRange call on a
	// display. The name deliberately matches the proxy method so schema
	// validation accepts it as a member.
	PropRescaleTF = "RescaleTransferFunctionToDataRange"
	// PropColorArray is the representation's color-array pair, written by
	// ColorBy or direct assignment.
	PropColorArray = "ColorArrayName"
	// PropRepresentation is the representation type, written by
	// SetRepresentationType or direct assignment.
	PropRepresentation = "Representation"
)

// Screenshot stage property names.
const (
	PropFilename        = "Filename"
	PropImageResolution = "ImageResolution"
	PropOverridePalette = "OverrideColorPalette"
)

// Stage is one node of the pipeline DAG: a source or filter proxy, a
// render view, a representation (display), or a screenshot capture.
type Stage struct {
	// ID names the stage; Normalize regenerates IDs canonically.
	ID string `json:"id"`
	// Kind classifies the stage (source/filter/view/display/screenshot).
	Kind string `json:"kind"`
	// Class is the proxy class (or pseudo-class) the stage instantiates.
	Class string `json:"class"`
	// Inputs are indices into Plan.Stages. Pipeline stages have at most
	// one input; display stages have [pipeline, view] (the view entry is
	// absent when the script referenced the view by name); screenshot
	// stages have [view].
	Inputs []int `json:"inputs,omitempty"`
	// Props is the stage's typed property bag. Unknown (hallucinated)
	// properties are recorded too — validation flags them, and script
	// rendering reproduces them so plans round-trip faithfully.
	Props map[string]Value `json:"props,omitempty"`
	// Camera is the ordered camera-operation list of a view stage
	// (ResetCamera, ApplyIsometricView, ResetActiveCameraTo*...).
	Camera []string `json:"camera,omitempty"`

	// Line is the 1-based source line of the constructing statement
	// (0 for programmatically built plans). Not serialized.
	Line int `json:"-"`
	// PropLines locates individual property assignments for diagnostics.
	// Not serialized.
	PropLines map[string]int `json:"-"`
}

// SetProp records a property value, tracking its source line.
func (st *Stage) SetProp(name string, v Value, line int) {
	if st.Props == nil {
		st.Props = map[string]Value{}
	}
	st.Props[name] = v
	if line > 0 {
		if st.PropLines == nil {
			st.PropLines = map[string]int{}
		}
		st.PropLines[name] = line
	}
}

// propLine returns the best-known source line for a property.
func (st *Stage) propLine(name string) int {
	if n, ok := st.PropLines[name]; ok {
		return n
	}
	return st.Line
}

// IsPipeline reports whether the stage is a source or filter.
func (st *Stage) IsPipeline() bool {
	return st.Kind == StageSource || st.Kind == StageFilter
}

// Version tags the serialized plan layout.
const Version = 1

// Plan is a pipeline DAG in (or convertible to) canonical form.
type Plan struct {
	Version int      `json:"version"`
	Stages  []*Stage `json:"stages"`
}

// New returns an empty plan at the current version.
func New() *Plan { return &Plan{Version: Version} }

// Add appends a stage and returns its index.
func (p *Plan) Add(st *Stage) int {
	p.Stages = append(p.Stages, st)
	return len(p.Stages) - 1
}

// Stage returns the stage at index i (nil when out of range).
func (p *Plan) Stage(i int) *Stage {
	if i < 0 || i >= len(p.Stages) {
		return nil
	}
	return p.Stages[i]
}

// FindClass returns the index of the first stage of the given class, or
// -1.
func (p *Plan) FindClass(class string) int {
	for i, st := range p.Stages {
		if st.Class == class {
			return i
		}
	}
	return -1
}

// PipelineEdges lists dataflow edges "UpstreamClass->DownstreamClass"
// over the pipeline stages, in stage order.
func (p *Plan) PipelineEdges() []string {
	var edges []string
	for _, st := range p.Stages {
		if !st.IsPipeline() {
			continue
		}
		for _, in := range st.Inputs {
			if up := p.Stage(in); up != nil && up.IsPipeline() {
				edges = append(edges, up.Class+"->"+st.Class)
			}
		}
	}
	return edges
}

// Encode renders the plan as deterministic, indented JSON (map keys are
// sorted by encoding/json, so semantically equal normalized plans are
// byte-equal).
func (p *Plan) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a serialized plan.
func Decode(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("plan: decoding: %w", err)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("plan: unsupported version %d", p.Version)
	}
	for _, st := range p.Stages {
		for _, in := range st.Inputs {
			if in < 0 || in >= len(p.Stages) {
				return nil, fmt.Errorf("plan: stage %s has out-of-range input %d", st.ID, in)
			}
		}
	}
	// Reject cycles: hashing, normalization and execution all recurse
	// over Inputs and must never see one (compiled and built plans are
	// DAGs by construction; decoded bytes are not trusted).
	if err := p.checkAcyclic(); err != nil {
		return nil, err
	}
	return &p, nil
}

// checkAcyclic verifies the Inputs edges form a DAG (Kahn count).
func (p *Plan) checkAcyclic() error {
	n := len(p.Stages)
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, st := range p.Stages {
		for _, in := range st.Inputs {
			indeg[i]++
			dependents[in] = append(dependents[in], i)
		}
	}
	var ready []int
	for i := range indeg {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	seen := 0
	for len(ready) > 0 {
		next := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		seen++
		for _, d := range dependents[next] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("plan: stage inputs form a cycle")
	}
	return nil
}

// Equal reports whether two plans serialize identically (the byte-equal
// contract normalized plans are held to).
func (p *Plan) Equal(q *Plan) bool {
	if p == nil || q == nil {
		return p == q
	}
	pb, err1 := p.Encode()
	qb, err2 := q.Encode()
	return err1 == nil && err2 == nil && bytes.Equal(pb, qb)
}

// Clone deep-copies the plan (source-position metadata included).
func (p *Plan) Clone() *Plan {
	q := &Plan{Version: p.Version, Stages: make([]*Stage, len(p.Stages))}
	for i, st := range p.Stages {
		c := &Stage{ID: st.ID, Kind: st.Kind, Class: st.Class, Line: st.Line}
		c.Inputs = append([]int(nil), st.Inputs...)
		c.Camera = append([]string(nil), st.Camera...)
		if st.Props != nil {
			c.Props = make(map[string]Value, len(st.Props))
			for k, v := range st.Props {
				c.Props[k] = cloneValue(v)
			}
		}
		if st.PropLines != nil {
			c.PropLines = make(map[string]int, len(st.PropLines))
			for k, v := range st.PropLines {
				c.PropLines[k] = v
			}
		}
		q.Stages[i] = c
	}
	return q
}

func cloneValue(v Value) Value {
	switch v.Kind {
	case KindList:
		items := make([]Value, len(v.List))
		for i, it := range v.List {
			items[i] = cloneValue(it)
		}
		v.List = items
	case KindHelper:
		obj := make(map[string]Value, len(v.Obj))
		for k, pv := range v.Obj {
			obj[k] = cloneValue(pv)
		}
		v.Obj = obj
	}
	return v
}
