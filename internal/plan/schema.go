package plan

// The proxy schema the IR validates against. The schema is *derived*
// from the engine (pvsim.PlanSchema builds it from the same classSchema
// registry that executes scripts), so validation can never drift from
// what execution accepts — the single-source-of-truth property the
// paper's "ground the model in ParaView's real API" future work asks
// for.

// PropType classifies what values a property accepts. Types are inferred
// from the engine's default values, so checking stays deliberately
// lenient where ParaView itself is lenient (scalar-for-list, bare string
// for association pairs).
type PropType string

// Property types.
const (
	// TypeAny accepts anything (properties with no declared default).
	TypeAny PropType = "any"
	// TypeStr accepts strings.
	TypeStr PropType = "str"
	// TypeNum accepts numbers and booleans.
	TypeNum PropType = "num"
	// TypeNumList accepts numeric lists and scalar numbers.
	TypeNumList PropType = "numlist"
	// TypeAssoc accepts ('ASSOCIATION', 'array') pairs or bare strings.
	TypeAssoc PropType = "assoc"
	// TypeList accepts any list (or scalar, which ParaView broadcasts).
	TypeList PropType = "list"
	// TypeHelper accepts a nested helper proxy (or its class name).
	TypeHelper PropType = "helper"
)

// Prop declares one settable property.
type Prop struct {
	Type    PropType `json:"type"`
	Default *Value   `json:"default,omitempty"`
}

// Class declares one proxy class: kind, properties, methods.
type Class struct {
	Name    string          `json:"name"`
	Kind    string          `json:"kind"` // source, filter, view, representation, helper, ...
	Props   map[string]Prop `json:"props"`
	Methods map[string]bool `json:"methods,omitempty"`
}

// HasProp reports whether the class declares the property.
func (c *Class) HasProp(name string) bool {
	_, ok := c.Props[name]
	return ok
}

// HasMember reports whether the name is a property or method.
func (c *Class) HasMember(name string) bool {
	return c.HasProp(name) || c.Methods[name]
}

// Schema is the full validated surface: proxy classes plus the
// module-level paraview.simple functions.
type Schema struct {
	Classes   map[string]*Class `json:"classes"`
	Functions map[string]bool   `json:"functions,omitempty"`
}

// Class looks a class up by name (nil when unknown).
func (s *Schema) Class(name string) *Class {
	if s == nil {
		return nil
	}
	return s.Classes[name]
}

// InferType derives a property type from its default value.
func InferType(def *Value) PropType {
	if def == nil {
		return TypeAny
	}
	switch def.Kind {
	case KindStr:
		return TypeStr
	case KindNum, KindBool:
		return TypeNum
	case KindHelper:
		return TypeHelper
	case KindList:
		if len(def.List) == 0 {
			return TypeList
		}
		for _, it := range def.List {
			if it.Kind == KindStr {
				return TypeAssoc
			}
		}
		return TypeNumList
	}
	return TypeAny
}

// TypeAccepts reports whether a value is admissible for a property type.
// The rules mirror the engine's own coercions (propFloats accepts
// scalars, propAssoc accepts bare strings), so validation only flags
// assignments that would genuinely misbehave.
func TypeAccepts(t PropType, v Value) bool {
	if v.Kind == KindNone {
		return true
	}
	switch t {
	case TypeAny, TypeList:
		return true
	case TypeStr:
		return v.Kind == KindStr
	case TypeNum:
		return v.Kind == KindNum || v.Kind == KindBool
	case TypeNumList:
		if v.Kind == KindNum || v.Kind == KindBool {
			return true
		}
		if v.Kind != KindList {
			return false
		}
		for _, it := range v.List {
			if it.Kind != KindNum && it.Kind != KindBool {
				return false
			}
		}
		return true
	case TypeAssoc:
		return v.Kind == KindStr || v.Kind == KindList
	case TypeHelper:
		return v.Kind == KindHelper || v.Kind == KindStr
	}
	return true
}

// helperDefaults maps constructor classes to the helper proxies the
// engine attaches implicitly, so compilation and normalization agree on
// what an unset SliceType means.
var helperDefaults = map[string]map[string]string{
	"Slice":        {"SliceType": "Plane"},
	"Clip":         {"ClipType": "Plane"},
	"StreamTracer": {"SeedType": "Point Cloud"},
	"Transform":    {"Transform": "TransformHelper"},
}

// screenshotProps are the arguments a screenshot stage understands.
// Unknown SaveScreenshot kwargs are warnings only — the engine ignores
// extras the way pvpython does.
var screenshotProps = map[string]bool{
	PropFilename:        true,
	PropImageResolution: true,
	PropOverridePalette: true,
}
