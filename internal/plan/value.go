package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ValueKind enumerates the typed property value shapes the IR admits.
type ValueKind int

// Value kinds.
const (
	KindNone ValueKind = iota
	KindStr
	KindNum
	KindBool
	KindList
	KindHelper
)

// Value is one typed property value of a pipeline stage. It is a closed
// union: strings, numbers, booleans, None, lists, and helper objects
// (the nested Plane / Point Cloud / TransformHelper property bags
// ParaView attaches to SliceType-style properties).
type Value struct {
	Kind ValueKind
	Str  string
	// Num holds numeric values; IsInt records whether the literal was
	// written without a fractional part. Equal ignores IsInt and
	// canonicalization recomputes it, so 1 and 1.0 are the same value.
	Num   float64
	IsInt bool
	Bool  bool
	List  []Value
	// Helper values carry a class name and their own property bag.
	Class string
	Obj   map[string]Value
}

// Constructors.

// NoneV is the None value.
func NoneV() Value { return Value{Kind: KindNone} }

// StrV builds a string value.
func StrV(s string) Value { return Value{Kind: KindStr, Str: s} }

// NumV builds a float value.
func NumV(f float64) Value { return Value{Kind: KindNum, Num: f} }

// IntV builds an integral numeric value.
func IntV(n int64) Value { return Value{Kind: KindNum, Num: float64(n), IsInt: true} }

// BoolV builds a boolean value.
func BoolV(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// ListV builds a list value.
func ListV(items ...Value) Value { return Value{Kind: KindList, List: items} }

// NumsV builds a numeric list.
func NumsV(vals ...float64) Value {
	items := make([]Value, len(vals))
	for i, v := range vals {
		items[i] = NumV(v)
	}
	return Value{Kind: KindList, List: items}
}

// AssocV builds ParaView's ('ASSOCIATION', 'array') pair.
func AssocV(assoc, array string) Value { return ListV(StrV(assoc), StrV(array)) }

// HelperV builds a helper object value of the given class.
func HelperV(class string) Value {
	return Value{Kind: KindHelper, Class: class, Obj: map[string]Value{}}
}

// WithObj sets one helper property and returns the value (builder style).
func (v Value) WithObj(name string, pv Value) Value {
	if v.Obj == nil {
		v.Obj = map[string]Value{}
	}
	v.Obj[name] = pv
	return v
}

// Equal reports semantic equality: numbers compare numerically (1 == 1.0),
// lists element-wise, helpers by class and property bag.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindNone:
		return true
	case KindStr:
		return v.Str == w.Str
	case KindNum:
		return v.Num == w.Num
	case KindBool:
		return v.Bool == w.Bool
	case KindList:
		if len(v.List) != len(w.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(w.List[i]) {
				return false
			}
		}
		return true
	case KindHelper:
		if v.Class != w.Class || len(v.Obj) != len(w.Obj) {
			return false
		}
		for k, pv := range v.Obj {
			wv, ok := w.Obj[k]
			if !ok || !pv.Equal(wv) {
				return false
			}
		}
		return true
	}
	return false
}

// canonical returns a copy with IsInt recomputed everywhere, so a value
// parsed from "1.0" and one parsed from "1" serialize identically.
func (v Value) canonical() Value {
	switch v.Kind {
	case KindNum:
		v.IsInt = v.Num == math.Trunc(v.Num) && math.Abs(v.Num) < 1e15
	case KindList:
		items := make([]Value, len(v.List))
		for i, it := range v.List {
			items[i] = it.canonical()
		}
		v.List = items
	case KindHelper:
		obj := make(map[string]Value, len(v.Obj))
		for k, pv := range v.Obj {
			obj[k] = pv.canonical()
		}
		v.Obj = obj
	}
	return v
}

// writeKey appends a stable content encoding used for subtree hashing.
func (v Value) writeKey(b *strings.Builder) {
	switch v.Kind {
	case KindNone:
		b.WriteString("N")
	case KindStr:
		fmt.Fprintf(b, "s%q", v.Str)
	case KindNum:
		if v.Num == math.Trunc(v.Num) && math.Abs(v.Num) < 1e15 {
			fmt.Fprintf(b, "i%d", int64(v.Num))
		} else {
			fmt.Fprintf(b, "f%x", math.Float64bits(v.Num))
		}
	case KindBool:
		fmt.Fprintf(b, "b%v", v.Bool)
	case KindList:
		b.WriteString("[")
		for _, it := range v.List {
			it.writeKey(b)
			b.WriteString(",")
		}
		b.WriteString("]")
	case KindHelper:
		fmt.Fprintf(b, "H%s{", v.Class)
		names := make([]string, 0, len(v.Obj))
		for k := range v.Obj {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			b.WriteString(k + "=")
			v.Obj[k].writeKey(b)
			b.WriteString(";")
		}
		b.WriteString("}")
	}
}

// PyLit renders the value as a Python literal for script emission.
// Helper values have no literal form; they render as their class name
// (the constructor-kwarg spelling).
func (v Value) PyLit() string {
	switch v.Kind {
	case KindNone:
		return "None"
	case KindStr:
		return "'" + strings.ReplaceAll(v.Str, "'", "\\'") + "'"
	case KindNum:
		if v.IsInt && v.Num == math.Trunc(v.Num) {
			return fmt.Sprintf("%d", int64(v.Num))
		}
		return fmt.Sprintf("%g", v.Num)
	case KindBool:
		if v.Bool {
			return "True"
		}
		return "False"
	case KindList:
		parts := make([]string, len(v.List))
		for i, it := range v.List {
			parts[i] = it.PyLit()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindHelper:
		return "'" + v.Class + "'"
	}
	return "None"
}

// MarshalJSON encodes the value as native JSON: null, string, number,
// bool, array, or — for helpers — {"$class": ..., "props": {...}}.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.Kind {
	case KindNone:
		return []byte("null"), nil
	case KindStr:
		return json.Marshal(v.Str)
	case KindNum:
		if v.IsInt && v.Num == math.Trunc(v.Num) && math.Abs(v.Num) < 1e15 {
			return json.Marshal(int64(v.Num))
		}
		return json.Marshal(v.Num)
	case KindBool:
		return json.Marshal(v.Bool)
	case KindList:
		if v.List == nil {
			return []byte("[]"), nil
		}
		return json.Marshal(v.List)
	case KindHelper:
		obj := struct {
			Class string           `json:"$class"`
			Props map[string]Value `json:"props,omitempty"`
		}{Class: v.Class}
		if len(v.Obj) > 0 {
			obj.Props = v.Obj
		}
		return json.Marshal(obj)
	}
	return nil, fmt.Errorf("plan: unknown value kind %d", v.Kind)
}

// UnmarshalJSON decodes the native JSON encoding produced by MarshalJSON.
func (v *Value) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw interface{}
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	val, err := valueFromAny(raw)
	if err != nil {
		return err
	}
	*v = val
	return nil
}

func valueFromAny(raw interface{}) (Value, error) {
	switch t := raw.(type) {
	case nil:
		return NoneV(), nil
	case string:
		return StrV(t), nil
	case bool:
		return BoolV(t), nil
	case json.Number:
		f, err := t.Float64()
		if err != nil {
			return Value{}, err
		}
		v := NumV(f)
		v.IsInt = !strings.ContainsAny(t.String(), ".eE")
		return v, nil
	case []interface{}:
		items := make([]Value, len(t))
		for i, it := range t {
			iv, err := valueFromAny(it)
			if err != nil {
				return Value{}, err
			}
			items[i] = iv
		}
		return Value{Kind: KindList, List: items}, nil
	case map[string]interface{}:
		class, _ := t["$class"].(string)
		if class == "" {
			return Value{}, fmt.Errorf("plan: object value without $class")
		}
		h := HelperV(class)
		if props, ok := t["props"].(map[string]interface{}); ok {
			for k, pv := range props {
				iv, err := valueFromAny(pv)
				if err != nil {
					return Value{}, err
				}
				h.Obj[k] = iv
			}
		}
		return h, nil
	}
	return Value{}, fmt.Errorf("plan: unsupported JSON value %T", raw)
}
