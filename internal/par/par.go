// Package par is the parallel compute substrate shared by the filters,
// the renderer and the pipeline engine: a bounded worker pool plus
// deterministic chunked map/reduce helpers.
//
// Determinism contract: every helper in this package assigns work by
// index and collects results by index, so the *values* produced are
// independent of the worker count, the chunking schedule (see Sched)
// and scheduling order. Callers that merge chunk results in index order
// therefore produce byte-identical output for any worker count and
// either schedule — the property the serial/parallel equivalence tests
// in filters and render pin down. OrderedSweep extends the same
// contract to pipelined merges: the consumer still sees builders in
// index order even though chunks complete out of order.
//
// Concurrency model: each call runs chunks on the calling goroutine plus
// up to Parallelism()-1 helper goroutines drawn from a process-wide
// token pool. Workers() (the configured count) shapes the chunk
// schedule; Parallelism() clamps actual goroutine fan-out to
// runtime.GOMAXPROCS(0), so asking for 8 workers on a 1-core box keeps
// 8-worker chunk boundaries (and thus 8-worker-identical output) while
// running on one goroutine instead of oversubscribing. Helpers are
// acquired opportunistically (never blocking), so nested parallel
// sections — a parallel filter inside a parallel render inside a
// chatvisd job — cannot deadlock and total compute goroutines stay
// bounded near the machine's parallelism.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// defaultWorkers holds the configured worker count; 0 means "follow
// runtime.GOMAXPROCS(0)".
var defaultWorkers atomic.Int64

// helperTokens bounds the number of helper goroutines alive across all
// concurrent par calls in the process. It is sized lazily from the
// machine parallelism.
var (
	tokenMu      sync.Mutex
	helperTokens chan struct{}
	tokenCap     int
)

// Workers returns the configured worker count: the value set with
// SetWorkers, or runtime.GOMAXPROCS(0) when unset. This count shapes
// chunk boundaries (determinism is keyed on it); the goroutine fan-out
// is separately clamped by Parallelism.
func Workers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Parallelism returns how many goroutines a sweep may actually run on:
// Workers() clamped to runtime.GOMAXPROCS(0). Requesting more workers
// than the machine has cores changes chunk shaping but never
// oversubscribes the scheduler.
func Parallelism() int {
	w := Workers()
	if p := runtime.GOMAXPROCS(0); w > p {
		return p
	}
	return w
}

// SetWorkers fixes the process-wide worker count (the chatvisd
// -compute-workers flag lands here). n <= 0 restores the default of
// runtime.GOMAXPROCS(0).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// acquireHelpers grabs up to want helper tokens without blocking and
// returns how many it got plus a release function.
func acquireHelpers(want int) (int, func()) {
	if want <= 0 {
		return 0, func() {}
	}
	tokenMu.Lock()
	need := Parallelism() - 1
	if need < 0 {
		need = 0
	}
	if helperTokens == nil || tokenCap < need {
		// Grow the pool to the current parallelism. Outstanding tokens
		// from the old channel release into the old channel (captured by
		// their release closures), so growth never corrupts accounting.
		if need < 1 {
			need = 1
		}
		helperTokens = make(chan struct{}, need)
		for i := 0; i < need; i++ {
			helperTokens <- struct{}{}
		}
		tokenCap = need
	}
	tokens := helperTokens
	tokenMu.Unlock()

	got := 0
	for got < want {
		select {
		case <-tokens:
			got++
		default:
			return got, releaseFn(tokens, got)
		}
	}
	return got, releaseFn(tokens, got)
}

func releaseFn(tokens chan struct{}, n int) func() {
	return func() {
		for i := 0; i < n; i++ {
			tokens <- struct{}{}
		}
	}
}

// runRanges executes process(worker, chunk, spans[chunk]) for every
// chunk across the caller (worker 0) plus opportunistically-acquired
// helpers (workers 1..n), dispatching chunks through an atomic counter
// so idle workers backfill stragglers. Worker IDs let callers keep
// worker-affine state (Arena slots). items is the sweep's index-space
// size, reported in telemetry. It returns ctx.Err() if the context was
// canceled before every chunk was claimed; chunks already started
// always finish (callers rely on partial results never being observed —
// the error return is the only signal).
func runRanges(ctx context.Context, items int, spans []Range, process func(worker, chunk int, r Range)) error {
	nc := len(spans)
	if nc == 0 {
		return nil // an empty sweep is trivially complete
	}
	nHelpers := 0
	release := func() {}
	if want := min(nc-1, Parallelism()-1); want > 0 {
		nHelpers, release = acquireHelpers(want)
	}
	defer release()

	clocks := make([]workerClock, nHelpers+1)
	var next atomic.Int64
	canceled := ctx.Done()
	loop := func(w int) {
		wc := &clocks[w]
		for {
			if canceled != nil {
				select {
				case <-canceled:
					return
				default:
				}
			}
			c := int(next.Add(1)) - 1
			if c >= nc {
				return
			}
			t0 := time.Now()
			process(w, c, spans[c])
			d := time.Since(t0).Nanoseconds()
			wc.busy += d
			wc.chunks++
			if d > wc.maxChunk {
				wc.maxChunk = d
			}
		}
	}
	var wg sync.WaitGroup
	for i := 1; i <= nHelpers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			loop(w)
		}(i)
	}
	loop(0)
	wg.Wait()

	recordSweep(ctx, items, clocks)

	if int(next.Load()) < nc {
		// Cancellation stopped the sweep before every chunk was claimed.
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	// Every chunk was claimed, and a claimed chunk always runs to
	// completion — the sweep finished, even if ctx was canceled after
	// the last claim. Completed work is never reported as failed.
	return nil
}

// NumChunks picks the static-schedule chunk count for n items: enough
// to balance load across workers (4 chunks per worker) without
// degenerating into per-item scheduling. The adaptive schedule
// supersedes this for sweeps (see sweepRanges); it remains the
// SchedStatic granularity.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	c := Workers() * 4
	if c > n {
		c = n
	}
	if c < 1 {
		c = 1
	}
	return c
}

// chunkRange returns the half-open item range of chunk c when n items
// are split into chunks nearly-equal contiguous ranges.
func chunkRange(c, chunks, n int) (start, end int) {
	q, r := n/chunks, n%chunks
	start = c*q + min(c, r)
	end = start + q
	if c < r {
		end++
	}
	return start, end
}

// For runs fn over every contiguous sub-range of [0, n) in parallel,
// chunked under the current schedule. fn(start, end) must only touch
// state owned by its range (or its own locals); ranges are disjoint and
// cover [0, n) exactly once. Returns ctx.Err() if canceled early.
func For(ctx context.Context, n int, fn func(start, end int)) error {
	return runRanges(ctx, n, sweepRanges(n, nil), func(_, _ int, r Range) {
		fn(r.Start, r.End)
	})
}

// MapChunks splits [0, n) into contiguous chunks under the current
// schedule, computes fn(start, end) for each, and returns the results
// in chunk order (deterministic regardless of worker count or
// scheduling). A nil error guarantees every chunk ran.
func MapChunks[T any](ctx context.Context, n int, fn func(start, end int) T) ([]T, error) {
	spans := sweepRanges(n, nil)
	out := make([]T, len(spans))
	err := runRanges(ctx, n, spans, func(_, c int, r Range) {
		out[c] = fn(r.Start, r.End)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapN computes out[i] = fn(i) for every i in [0, n), scheduling
// contiguous index chunks across workers. Results are positionally
// deterministic.
func MapN[T any](ctx context.Context, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := For(ctx, n, func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = fn(i)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
