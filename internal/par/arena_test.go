package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

type testScratch struct {
	vals   []int
	resets int
}

func (s *testScratch) Reset() {
	s.vals = s.vals[:0]
	s.resets++
}

func TestArenaReusesValues(t *testing.T) {
	var built atomic.Int64
	a := NewArena(func() *testScratch {
		built.Add(1)
		return &testScratch{}
	})
	s := a.Get()
	s.vals = append(s.vals, 1, 2, 3)
	a.Put(s)
	s2 := a.Get()
	if s2 != s {
		t.Fatal("Get after Put should reuse the pooled value")
	}
	if len(s2.vals) != 0 {
		t.Fatalf("pooled value not Reset: %v", s2.vals)
	}
	if cap(s2.vals) < 3 {
		t.Fatal("Reset must retain capacity")
	}
	if built.Load() != 1 {
		t.Fatalf("constructor ran %d times, want 1", built.Load())
	}
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena(func() *testScratch { return &testScratch{} })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := a.Get()
				if len(s.vals) != 0 {
					t.Error("dirty scratch from Get")
					return
				}
				s.vals = append(s.vals, g)
				a.Put(s)
			}
		}(g)
	}
	wg.Wait()
}

func TestSweepChunksDeterministicAndRecycled(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	a := NewArena(func() *testScratch { return &testScratch{} })
	const n = 1000

	run := func() []int {
		chunks, release, err := SweepChunks(context.Background(), n, a, func(s *testScratch, start, end int) {
			for i := start; i < end; i++ {
				s.vals = append(s.vals, i*i)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		defer release()
		var merged []int
		for _, c := range chunks {
			merged = append(merged, c.vals...)
		}
		return merged
	}

	first := run()
	if len(first) != n {
		t.Fatalf("merged %d items, want %d", len(first), n)
	}
	for i, v := range first {
		if v != i*i {
			t.Fatalf("item %d = %d: chunk order not deterministic", i, v)
		}
	}
	// Second sweep must reuse the same builders (stale-scratch
	// contamination is caught by comparing outputs).
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("sweep 2 diverges at %d: arena reuse contaminated output", i)
		}
	}
}

func TestSweepChunksReleaseIdempotent(t *testing.T) {
	a := NewArena(func() *testScratch { return &testScratch{} })
	chunks, release, err := SweepChunks(context.Background(), 10, a, func(s *testScratch, start, end int) {})
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // double release must not double-pool
	seen := map[*testScratch]bool{}
	for i := 0; i < len(chunks)+2; i++ {
		s := a.Get()
		if seen[s] {
			t.Fatal("double release put the same builder in the pool twice")
		}
		seen[s] = true
	}
}

func TestSweepChunksCanceled(t *testing.T) {
	a := NewArena(func() *testScratch { return &testScratch{} })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	chunks, release, err := SweepChunks(ctx, 100, a, func(s *testScratch, start, end int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if chunks != nil {
		t.Fatal("canceled sweep must not return builders")
	}
	release() // returned no-op must be callable
}
