package par

import (
	"context"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	SetWorkers(n)
	t.Cleanup(func() { SetWorkers(0) })
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 4, 8} {
		withWorkers(t, w)
		const n = 1000
		hits := make([]int32, n)
		if err := For(context.Background(), n, func(s, e int) {
			for i := s; i < e; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, h)
			}
		}
	}
}

func TestMapChunksOrderDeterministic(t *testing.T) {
	ref, err := MapChunks(context.Background(), 100, func(s, e int) int { return s })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ref); i++ {
		if ref[i] <= ref[i-1] {
			t.Fatalf("chunk starts not increasing: %v", ref)
		}
	}
	withWorkers(t, 8)
	got, err := MapChunks(context.Background(), 100, func(s, e int) int { return s })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no chunks")
	}
}

func TestMapNPositional(t *testing.T) {
	withWorkers(t, 4)
	out, err := MapN(context.Background(), 257, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForHonorsCancellation(t *testing.T) {
	withWorkers(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := For(ctx, 1_000_000, func(s, e int) {})
	if err == nil {
		t.Fatal("canceled context should surface an error")
	}
}

func TestChunkRangesPartition(t *testing.T) {
	for _, tc := range []struct{ n, chunks int }{{10, 3}, {7, 7}, {100, 16}, {1, 1}} {
		prev := 0
		for c := 0; c < tc.chunks; c++ {
			s, e := chunkRange(c, tc.chunks, tc.n)
			if s != prev {
				t.Fatalf("n=%d chunks=%d: chunk %d starts at %d, want %d", tc.n, tc.chunks, c, s, prev)
			}
			if e < s {
				t.Fatalf("n=%d chunks=%d: chunk %d empty range [%d,%d)", tc.n, tc.chunks, c, s, e)
			}
			prev = e
		}
		if prev != tc.n {
			t.Fatalf("n=%d chunks=%d: ranges cover %d items", tc.n, tc.chunks, prev)
		}
	}
}

func TestSetWorkers(t *testing.T) {
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("default Workers() = %d", Workers())
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	withWorkers(t, 4)
	err := For(context.Background(), 16, func(s, e int) {
		for i := s; i < e; i++ {
			if err := For(context.Background(), 64, func(s2, e2 int) {}); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
