package par

import (
	"context"
	"sync"
)

// Resetter is the contract for arena-pooled scratch: Reset must return
// the value to a clean state while retaining its allocated capacity.
// Every hot-path builder in filters and render implements it.
type Resetter interface{ Reset() }

// Arena is a typed free list of reusable scratch values. Get hands out
// a clean (Reset) value — recycled when one is available, freshly
// constructed otherwise — and Put returns it for reuse. The steady
// state of a sweep-per-request workload is therefore zero builder
// allocations: each request checks builders out, fills them, and
// returns them.
//
// Values must not be used after Put. The arena itself is safe for
// concurrent Get/Put (chunks of one sweep and concurrent sweeps share
// it), but an individual value belongs to exactly one goroutine
// between Get and Put.
type Arena[S Resetter] struct {
	mu    sync.Mutex
	free  []S
	newFn func() S
}

// arenaMaxFree bounds how many idle values an arena retains, so a
// one-off burst (a wide sweep on a big machine) doesn't pin its peak
// scratch forever.
const arenaMaxFree = 64

// NewArena returns an arena constructing values with newFn.
func NewArena[S Resetter](newFn func() S) *Arena[S] {
	return &Arena[S]{newFn: newFn}
}

// Get returns a clean scratch value, reusing a pooled one when
// possible. The value has been Reset before return.
func (a *Arena[S]) Get() S {
	a.mu.Lock()
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		var zero S
		a.free[n-1] = zero
		a.free = a.free[:n-1]
		a.mu.Unlock()
		s.Reset()
		return s
	}
	a.mu.Unlock()
	s := a.newFn()
	s.Reset()
	return s
}

// Put recycles a value for a future Get. The caller must not touch it
// afterwards.
func (a *Arena[S]) Put(s S) {
	a.mu.Lock()
	if len(a.free) < arenaMaxFree {
		a.free = append(a.free, s)
	}
	a.mu.Unlock()
}

// SweepChunks runs one parallel sweep over [0, n): the range is split
// into NumChunks(n) contiguous chunks, each chunk checks a scratch
// value out of the arena, fn fills it for its range, and the filled
// builders are returned in chunk order (the deterministic-merge
// contract). The caller merges them and then calls release() to return
// every builder to the arena — after which the slice contents must not
// be used. On error (cancellation) the builders are already released
// and the returned slice is nil.
func SweepChunks[S Resetter](ctx context.Context, n int, a *Arena[S], fn func(s S, start, end int)) (chunks []S, release func(), err error) {
	nc := NumChunks(n)
	out := make([]S, nc)
	// filled marks chunks whose builder was actually checked out — a
	// canceled sweep leaves holes, and a zero S must never reach Put
	// (note any(S(nil)) != nil for pointer types, so a nil check can't
	// distinguish them).
	filled := make([]bool, nc)
	err = runChunks(ctx, nc, func(c int) {
		s := a.Get()
		start, end := chunkRange(c, nc, n)
		fn(s, start, end)
		out[c] = s
		filled[c] = true
	})
	var once sync.Once
	release = func() {
		once.Do(func() {
			var zero S
			for i := range out {
				if filled[i] {
					a.Put(out[i])
					out[i] = zero
					filled[i] = false
				}
			}
		})
	}
	if err != nil {
		// A canceled sweep may have filled only some chunks; recycle
		// whatever ran.
		release()
		return nil, func() {}, err
	}
	return out, release, nil
}
