package par

import (
	"context"
	"sync"
)

// Resetter is the contract for arena-pooled scratch: Reset must return
// the value to a clean state while retaining its allocated capacity.
// Every hot-path builder in filters and render implements it.
type Resetter interface{ Reset() }

// Arena is a typed free list of reusable scratch values. Get hands out
// a clean (Reset) value — recycled when one is available, freshly
// constructed otherwise — and Put returns it for reuse. The steady
// state of a sweep-per-request workload is therefore zero builder
// allocations: each request checks builders out, fills them, and
// returns them.
//
// In front of the shared free list sit worker-affine slots
// (GetSlot/PutSlot): each sweep worker prefers a single-value slot
// keyed by its worker ID, so the builder a worker just filled comes
// back to the same worker on the next chunk — warm caches, no
// cross-worker bouncing through the shared list.
//
// Values must not be used after Put. The arena itself is safe for
// concurrent Get/Put (chunks of one sweep and concurrent sweeps share
// it), but an individual value belongs to exactly one goroutine
// between Get and Put.
type Arena[S Resetter] struct {
	mu    sync.Mutex
	free  []S
	newFn func() S
	slots [arenaSlots]arenaSlot[S]
}

// arenaSlot is a one-value worker-affine cache in front of the shared
// free list. Its own mutex keeps slot traffic off the arena lock.
type arenaSlot[S Resetter] struct {
	mu     sync.Mutex
	val    S
	filled bool
}

// arenaMaxFree bounds how many idle values an arena retains, so a
// one-off burst (a wide sweep on a big machine) doesn't pin its peak
// scratch forever.
const arenaMaxFree = 64

// arenaSlots is the number of worker-affine slots per arena; worker IDs
// map onto slots modulo this, so wider sweeps than arenaSlots degrade
// to sharing slots, never to breaking.
const arenaSlots = 16

// NewArena returns an arena constructing values with newFn.
func NewArena[S Resetter](newFn func() S) *Arena[S] {
	return &Arena[S]{newFn: newFn}
}

// Get returns a clean scratch value, reusing a pooled one when
// possible. The value has been Reset before return.
func (a *Arena[S]) Get() S {
	a.mu.Lock()
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		var zero S
		a.free[n-1] = zero
		a.free = a.free[:n-1]
		a.mu.Unlock()
		s.Reset()
		return s
	}
	a.mu.Unlock()
	s := a.newFn()
	s.Reset()
	return s
}

// Put recycles a value for a future Get. The caller must not touch it
// afterwards.
func (a *Arena[S]) Put(s S) {
	a.mu.Lock()
	if len(a.free) < arenaMaxFree {
		a.free = append(a.free, s)
	}
	a.mu.Unlock()
}

// GetSlot returns a clean scratch value, preferring worker w's affine
// slot over the shared free list. w < 0 bypasses the slots (shared
// path). The value has been Reset before return.
func (a *Arena[S]) GetSlot(w int) S {
	if w < 0 {
		return a.Get()
	}
	slot := &a.slots[w%arenaSlots]
	slot.mu.Lock()
	if slot.filled {
		s := slot.val
		var zero S
		slot.val = zero
		slot.filled = false
		slot.mu.Unlock()
		s.Reset()
		return s
	}
	slot.mu.Unlock()
	return a.Get()
}

// PutSlot recycles a value into worker w's affine slot, overflowing to
// the shared free list when the slot is occupied. w < 0 bypasses the
// slots. The caller must not touch the value afterwards.
func (a *Arena[S]) PutSlot(w int, s S) {
	if w < 0 {
		a.Put(s)
		return
	}
	slot := &a.slots[w%arenaSlots]
	slot.mu.Lock()
	if !slot.filled {
		slot.val = s
		slot.filled = true
		slot.mu.Unlock()
		return
	}
	slot.mu.Unlock()
	a.Put(s)
}

// SweepChunks runs one parallel sweep over [0, n): the range is chunked
// under the current schedule, each chunk checks a scratch value out of
// the arena (worker-affine), fn fills it for its range, and the filled
// builders are returned in chunk order (the deterministic-merge
// contract). The caller merges them and then calls release() to return
// every builder to the arena — after which the slice contents must not
// be used. On error (cancellation) the builders are already released
// and the returned slice is nil. Prefer OrderedSweep where the merge
// can be expressed as a streaming consumer; SweepChunks remains for
// merges that need every chunk at once.
func SweepChunks[S Resetter](ctx context.Context, n int, a *Arena[S], fn func(s S, start, end int)) (chunks []S, release func(), err error) {
	spans := sweepRanges(n, nil)
	out := make([]S, len(spans))
	owners := make([]int16, len(spans))
	// filled marks chunks whose builder was actually checked out — a
	// canceled sweep leaves holes, and a zero S must never reach Put
	// (note any(S(nil)) != nil for pointer types, so a nil check can't
	// distinguish them).
	filled := make([]bool, len(spans))
	err = runRanges(ctx, n, spans, func(w, c int, r Range) {
		s := a.GetSlot(w)
		fn(s, r.Start, r.End)
		out[c] = s
		owners[c] = int16(w)
		filled[c] = true
	})
	var once sync.Once
	release = func() {
		once.Do(func() {
			var zero S
			for i := range out {
				if filled[i] {
					a.PutSlot(int(owners[i]), out[i])
					out[i] = zero
					filled[i] = false
				}
			}
		})
	}
	if err != nil {
		// A canceled sweep may have filled only some chunks; recycle
		// whatever ran.
		release()
		return nil, func() {}, err
	}
	return out, release, nil
}
