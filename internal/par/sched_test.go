package par

import (
	"context"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func withSchedule(t *testing.T, s Sched) {
	t.Helper()
	SetSchedule(s)
	t.Cleanup(func() { SetSchedule(SchedAdaptive) })
}

// withGOMAXPROCS raises the runtime parallelism so helper goroutines
// genuinely interleave even on a single-core runner.
func withGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// rangesPartition asserts spans tile [0, n) exactly: contiguous,
// non-empty, in order.
func rangesPartition(t *testing.T, n int, spans []Range) {
	t.Helper()
	prev := 0
	for i, r := range spans {
		if r.Start != prev {
			t.Fatalf("chunk %d starts at %d, want %d (spans %v)", i, r.Start, prev, spans)
		}
		if r.End <= r.Start {
			t.Fatalf("chunk %d empty range [%d,%d)", i, r.Start, r.End)
		}
		prev = r.End
	}
	if prev != n {
		t.Fatalf("spans cover [0,%d), want [0,%d)", prev, n)
	}
}

func TestSweepRangesPartitionBothSchedules(t *testing.T) {
	for _, sched := range []Sched{SchedAdaptive, SchedStatic} {
		for _, w := range []int{1, 4, 8} {
			for _, n := range []int{1, 2, 7, 100, 4096, 100_000} {
				withSchedule(t, sched)
				withWorkers(t, w)
				spans := sweepRanges(n, nil)
				rangesPartition(t, n, spans)
			}
		}
	}
}

func TestSweepRangesDeterministic(t *testing.T) {
	withWorkers(t, 8)
	a := sweepRanges(10_000, nil)
	b := sweepRanges(10_000, nil)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSweepRangesGuidedShape pins the guided schedule's defining
// properties: chunk sizes never grow along the sweep (large head,
// shrinking tail), and the tail chunks are strictly smaller than the
// static split so stragglers can be backfilled.
func TestSweepRangesGuidedShape(t *testing.T) {
	withSchedule(t, SchedAdaptive)
	withWorkers(t, 8)
	const n = 100_000
	spans := sweepRanges(n, nil)
	for i := 1; i < len(spans); i++ {
		if sz, prev := spans[i].End-spans[i].Start, spans[i-1].End-spans[i-1].Start; sz > prev {
			t.Fatalf("chunk %d (%d items) larger than chunk %d (%d items)", i, sz, i-1, prev)
		}
	}
	head := spans[0].End - spans[0].Start
	tail := spans[len(spans)-1].End - spans[len(spans)-1].Start
	if head <= tail {
		t.Fatalf("guided schedule did not shrink: head %d, tail %d", head, tail)
	}
	staticChunk := n / NumChunks(n)
	if tail >= staticChunk {
		t.Fatalf("guided tail chunk (%d items) no finer than static chunk (%d items)", tail, staticChunk)
	}
}

// TestSweepRangesCostHints checks cost-weighted chunking: when all the
// cost sits in the tail of the index space, the tail must be cut into
// many more chunks than the cheap head.
func TestSweepRangesCostHints(t *testing.T) {
	withSchedule(t, SchedAdaptive)
	withWorkers(t, 8)
	const n = 10_000
	// Items below 9000 are ~free; the last 1000 carry all the work.
	cost := func(i int) float64 {
		if i < 9000 {
			return 0.001
		}
		return 100
	}
	spans := sweepRanges(n, cost)
	rangesPartition(t, n, spans)
	headChunks, tailChunks := 0, 0
	for _, r := range spans {
		if r.Start >= 9000 {
			tailChunks++
		} else {
			headChunks++
		}
	}
	if tailChunks <= headChunks {
		t.Fatalf("expensive tail got %d chunks vs cheap head's %d — cost hints ignored", tailChunks, headChunks)
	}
	// Determinism: the sequential cost walk must reproduce boundaries.
	again := sweepRanges(n, cost)
	for i := range spans {
		if spans[i] != again[i] {
			t.Fatalf("cost-hinted chunking not deterministic at chunk %d", i)
		}
	}
}

func TestSweepRangesDegenerateCostFallsBack(t *testing.T) {
	withSchedule(t, SchedAdaptive)
	withWorkers(t, 4)
	const n = 1000
	zero := func(int) float64 { return 0 }
	withCost := sweepRanges(n, zero)
	uniform := sweepRanges(n, nil)
	if len(withCost) != len(uniform) {
		t.Fatalf("degenerate cost produced %d chunks, uniform %d", len(withCost), len(uniform))
	}
	for i := range withCost {
		if withCost[i] != uniform[i] {
			t.Fatalf("degenerate cost chunk %d = %v, uniform %v", i, withCost[i], uniform[i])
		}
	}
	rangesPartition(t, n, withCost)
}

func TestSchedString(t *testing.T) {
	if SchedAdaptive.String() != "adaptive" || SchedStatic.String() != "static" {
		t.Fatalf("Sched names: %q, %q", SchedAdaptive, SchedStatic)
	}
}

func TestParallelismClampsToGOMAXPROCS(t *testing.T) {
	withWorkers(t, 64)
	if p, max := Parallelism(), runtime.GOMAXPROCS(0); p > max {
		t.Fatalf("Parallelism() = %d exceeds GOMAXPROCS %d", p, max)
	}
	if Workers() != 64 {
		t.Fatalf("Workers() = %d; the configured count must survive the clamp", Workers())
	}
	withWorkers(t, 1)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d with one worker", Parallelism())
	}
}

// TestConveyorOutOfOrderAdversarial drives the conveyor directly with
// completions in reverse and shuffled order — the worst cases a real
// sweep can produce — and asserts deliveries are strictly in index
// order with exactly one consumer at a time.
func TestConveyorOutOfOrderAdversarial(t *testing.T) {
	const n = 64
	orders := [][]int{make([]int, n), make([]int, n)}
	for i := range orders[0] {
		orders[0][i] = n - 1 - i // strict reverse
	}
	perm := rand.New(rand.NewSource(7)).Perm(n)
	copy(orders[1], perm)
	for oi, order := range orders {
		cv := newConveyor[int](n)
		var delivered []int
		var inConsumer atomic.Int32
		deliver := func(v int) {
			if inConsumer.Add(1) != 1 {
				t.Error("concurrent delivery — conveyor allowed two consumers")
			}
			delivered = append(delivered, v)
			inConsumer.Add(-1)
		}
		for _, c := range order {
			cv.put(c, c, deliver)
		}
		if len(delivered) != n {
			t.Fatalf("order %d: delivered %d of %d items", oi, len(delivered), n)
		}
		for i, v := range delivered {
			if v != i {
				t.Fatalf("order %d: delivery %d was chunk %d — not index order", oi, i, v)
			}
		}
	}
}

// TestConveyorConcurrentPuts hammers the conveyor from many goroutines
// (with GOMAXPROCS raised so they truly interleave) and checks the
// single-consumer, in-order guarantee under real contention. Run under
// -race this also proves deliver needs no locking of its own.
func TestConveyorConcurrentPuts(t *testing.T) {
	withGOMAXPROCS(t, 8)
	const n = 512
	cv := newConveyor[int](n)
	var delivered []int
	var inConsumer atomic.Int32
	deliver := func(v int) {
		if inConsumer.Add(1) != 1 {
			t.Error("concurrent delivery")
		}
		delivered = append(delivered, v)
		inConsumer.Add(-1)
	}
	done := make(chan struct{})
	perm := rand.New(rand.NewSource(11)).Perm(n)
	const gors = 8
	for g := 0; g < gors; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := g; i < n; i += gors {
				cv.put(perm[i], perm[i], deliver)
			}
		}(g)
	}
	for g := 0; g < gors; g++ {
		<-done
	}
	if len(delivered) != n {
		t.Fatalf("delivered %d of %d", len(delivered), n)
	}
	for i, v := range delivered {
		if v != i {
			t.Fatalf("delivery %d was chunk %d", i, v)
		}
	}
}

func TestConveyorDrainRecyclesStranded(t *testing.T) {
	cv := newConveyor[int](4)
	deliver := func(int) { t.Fatal("nothing should deliver: chunk 0 never completed") }
	cv.put(2, 2, deliver)
	cv.put(3, 3, deliver)
	var drained []int
	cv.drain(func(v int) { drained = append(drained, v) })
	if len(drained) != 2 || drained[0] != 2 || drained[1] != 3 {
		t.Fatalf("drained %v, want [2 3]", drained)
	}
	// drain is idempotent: stranded slots were cleared.
	cv.drain(func(v int) { t.Fatalf("re-drained %d", v) })
}

// sumBuilder is a minimal Resetter for OrderedSweep tests.
type sumBuilder struct {
	vals []int
}

func (b *sumBuilder) Reset() { b.vals = b.vals[:0] }

func TestOrderedSweepConsumesInIndexOrder(t *testing.T) {
	withGOMAXPROCS(t, 8)
	for _, sched := range []Sched{SchedAdaptive, SchedStatic} {
		for _, w := range []int{1, 4, 8} {
			withSchedule(t, sched)
			withWorkers(t, w)
			a := NewArena(func() *sumBuilder { return &sumBuilder{} })
			const n = 10_000
			var got []int
			err := OrderedSweep(context.Background(), n, a, nil,
				func(b *sumBuilder, start, end int) {
					for i := start; i < end; i++ {
						b.vals = append(b.vals, i)
					}
				},
				func(b *sumBuilder) { got = append(got, b.vals...) })
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("sched=%v workers=%d: consumed %d of %d items", sched, w, len(got), n)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("sched=%v workers=%d: position %d holds %d — consumption not in index order", sched, w, i, v)
				}
			}
		}
	}
}

// TestOrderedSweepCostHintedEquivalence checks that cost hints change
// only the chunking, never the consumed sequence.
func TestOrderedSweepCostHintedEquivalence(t *testing.T) {
	withGOMAXPROCS(t, 8)
	withWorkers(t, 8)
	a := NewArena(func() *sumBuilder { return &sumBuilder{} })
	const n = 5000
	run := func(cost func(int) float64) []int {
		var got []int
		err := OrderedSweep(context.Background(), n, a, cost,
			func(b *sumBuilder, start, end int) {
				for i := start; i < end; i++ {
					b.vals = append(b.vals, i*i)
				}
			},
			func(b *sumBuilder) { got = append(got, b.vals...) })
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	plain := run(nil)
	hinted := run(func(i int) float64 { return float64(i % 97) })
	if len(plain) != len(hinted) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(hinted))
	}
	for i := range plain {
		if plain[i] != hinted[i] {
			t.Fatalf("cost hints changed output at %d: %d vs %d", i, plain[i], hinted[i])
		}
	}
}

// TestOrderedSweepCancellationRecycles runs many canceled sweeps and
// asserts the arena keeps recycling builders: if cancellation leaked
// checked-out builders, every cycle would construct fresh ones.
func TestOrderedSweepCancellationRecycles(t *testing.T) {
	withGOMAXPROCS(t, 4)
	withWorkers(t, 4)
	var constructed atomic.Int64
	a := NewArena(func() *sumBuilder {
		constructed.Add(1)
		return &sumBuilder{}
	})
	const cycles = 50
	canceledSweeps := 0
	for i := 0; i < cycles; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var consumed atomic.Int64
		err := OrderedSweep(ctx, 10_000, a, nil,
			func(b *sumBuilder, start, end int) {
				if start > 0 {
					cancel() // cancel mid-sweep, after at least one chunk ran
				}
				for j := start; j < end; j++ {
					b.vals = append(b.vals, j)
				}
			},
			func(b *sumBuilder) { consumed.Add(int64(len(b.vals))) })
		cancel()
		if err != nil {
			canceledSweeps++
		}
	}
	if canceledSweeps == 0 {
		t.Fatal("no sweep observed the cancellation — the test exercised nothing")
	}
	// Steady state needs at most one builder per worker slot in flight at
	// once; allow generous slack but far below one-per-cycle leakage.
	if c := constructed.Load(); c > 3*int64(Workers()) {
		t.Fatalf("%d builders constructed over %d canceled sweeps — cancellation leaks builders from the arena", c, cycles)
	}
	// The arena must still work after cancellations.
	var got []int
	if err := OrderedSweep(context.Background(), 100, a, nil,
		func(b *sumBuilder, start, end int) {
			for i := start; i < end; i++ {
				b.vals = append(b.vals, i)
			}
		},
		func(b *sumBuilder) { got = append(got, b.vals...) }); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("post-cancel sweep wrong at %d: %d", i, v)
		}
	}
}

func TestArenaSlotAffinityAndReset(t *testing.T) {
	a := NewArena(func() *sumBuilder { return &sumBuilder{} })
	b := a.GetSlot(3)
	b.vals = append(b.vals, 1, 2, 3) // contaminate
	a.PutSlot(3, b)
	// Same worker gets the same builder back, Reset.
	again := a.GetSlot(3)
	if again != b {
		t.Fatal("worker 3 did not get its own builder back from the affine slot")
	}
	if len(again.vals) != 0 {
		t.Fatalf("slot checkout skipped Reset: %v leaked through", again.vals)
	}
	a.PutSlot(3, again)
	// A different worker's slot is empty; it must not steal slot 3.
	other := a.GetSlot(4)
	if other == b {
		t.Fatal("worker 4 received worker 3's slotted builder")
	}
	// Negative worker IDs take the shared path and still work.
	shared := a.GetSlot(-1)
	if shared == nil {
		t.Fatal("shared-path GetSlot returned nil")
	}
	a.PutSlot(-1, shared)
	a.PutSlot(4, other)
	// Slot overflow: putting twice into one slot spills to the free list
	// rather than dropping the value.
	x, y := a.GetSlot(5), a.Get()
	a.PutSlot(5, x)
	a.PutSlot(5, y) // slot occupied -> shared free list
	gx, gy := a.GetSlot(5), a.Get()
	if gx != x {
		t.Fatal("slot 5 lost its affine value")
	}
	if gy != y {
		t.Fatal("overflow value did not reach the shared free list")
	}
}

func TestSweepObserverAndSnapshot(t *testing.T) {
	withWorkers(t, 4)
	before := Snapshot()
	var agg SweepAgg
	ctx := WithSweepObserver(context.Background(), agg.Observe)
	if err := For(ctx, 10_000, func(s, e int) {
		x := 0
		for i := s; i < e; i++ {
			x += i
		}
		_ = x
	}); err != nil {
		t.Fatal(err)
	}
	sum := agg.Summary()
	if sum.Sweeps != 1 {
		t.Fatalf("observer saw %d sweeps, want 1", sum.Sweeps)
	}
	if sum.Chunks < 1 {
		t.Fatalf("observer saw %d chunks", sum.Chunks)
	}
	after := Snapshot()
	if after.Sweeps <= before.Sweeps {
		t.Fatalf("global sweep counter did not advance: %d -> %d", before.Sweeps, after.Sweeps)
	}
	if after.Chunks < before.Chunks+int64(sum.Chunks) {
		t.Fatalf("global chunk counter advanced by %d, observer saw %d", after.Chunks-before.Chunks, sum.Chunks)
	}
}

// TestSweepAggConcurrent exercises the aggregator from concurrent
// sweeps sharing one context (the engine installs one observer per
// request span).
func TestSweepAggConcurrent(t *testing.T) {
	withGOMAXPROCS(t, 4)
	withWorkers(t, 4)
	var agg SweepAgg
	ctx := WithSweepObserver(context.Background(), agg.Observe)
	done := make(chan error)
	const sweeps = 8
	for i := 0; i < sweeps; i++ {
		go func() {
			done <- For(ctx, 1000, func(s, e int) {})
		}()
	}
	for i := 0; i < sweeps; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if sum := agg.Summary(); sum.Sweeps != sweeps {
		t.Fatalf("aggregated %d sweeps, want %d", sum.Sweeps, sweeps)
	}
}

// TestForEquivalentAcrossSchedules pins the package determinism
// contract at the For level: identical results for every (schedule,
// workers) combination.
func TestForEquivalentAcrossSchedules(t *testing.T) {
	withGOMAXPROCS(t, 8)
	const n = 4096
	ref := make([]int, n)
	for i := range ref {
		ref[i] = 3*i + 1
	}
	for _, sched := range []Sched{SchedAdaptive, SchedStatic} {
		for _, w := range []int{1, 4, 8} {
			withSchedule(t, sched)
			withWorkers(t, w)
			out, err := MapN(context.Background(), n, func(i int) int { return 3*i + 1 })
			if err != nil {
				t.Fatal(err)
			}
			for i := range out {
				if out[i] != ref[i] {
					t.Fatalf("sched=%v workers=%d: out[%d] = %d, want %d", sched, w, i, out[i], ref[i])
				}
			}
		}
	}
}
