package par

import (
	"context"
	"sync"
)

// conveyor orders out-of-order chunk completions for a single consumer:
// put records completions in any order, and whichever goroutine finds
// the conveyor unserved becomes the server, delivering every ready item
// from the index cursor onward. Exactly one goroutine serves at a time,
// so deliveries are strictly in index order and never concurrent.
type conveyor[T any] struct {
	mu      sync.Mutex
	items   []T
	done    []bool
	next    int
	serving bool
}

func newConveyor[T any](n int) *conveyor[T] {
	return &conveyor[T]{items: make([]T, n), done: make([]bool, n)}
}

// put records slot c as complete, then serves the cursor if nobody else
// is serving. The lock is released around each deliver call so other
// workers keep completing chunks while the consumer runs. No wakeup can
// be lost: a put that arrives while a server is active returns
// immediately, and the server re-checks the cursor under the lock after
// every delivery — the serving flag is only cleared in the same lock
// hold as the final (failed) cursor check.
func (cv *conveyor[T]) put(c int, v T, deliver func(T)) {
	cv.mu.Lock()
	cv.items[c] = v
	cv.done[c] = true
	if cv.serving {
		cv.mu.Unlock()
		return
	}
	cv.serving = true
	for cv.next < len(cv.done) && cv.done[cv.next] {
		item := cv.items[cv.next]
		var zero T
		cv.items[cv.next] = zero
		cv.next++
		cv.mu.Unlock()
		deliver(item)
		cv.mu.Lock()
	}
	cv.serving = false
	cv.mu.Unlock()
}

// drain hands every completed-but-undelivered item to fn in index
// order — the stranded completions of a canceled sweep. The caller must
// guarantee no put is in flight.
func (cv *conveyor[T]) drain(fn func(T)) {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	for i := cv.next; i < len(cv.done); i++ {
		if cv.done[i] {
			fn(cv.items[i])
			var zero T
			cv.items[i] = zero
			cv.done[i] = false
		}
	}
}

// slotItem carries a chunk's builder plus the worker slot it came from,
// so the conveyor can recycle it worker-affine after consumption.
type slotItem[S any] struct {
	val   S
	owner int
}

// OrderedSweep runs one pipelined parallel sweep over [0, n): the range
// is chunked under the current schedule (cost optionally weights item i
// for the adaptive schedule; nil means uniform), each chunk checks a
// builder out of the arena's worker-affine slots, fn fills it for its
// range, and consume receives the filled builders strictly in chunk
// index order *as they complete* — so the merge overlaps the tail of
// the sweep instead of waiting for a barrier. Scheduled by index,
// consumed by index: outputs inherit the package determinism contract.
//
// consume runs on exactly one goroutine at a time (not always the same
// one) and must not assume any particular worker; builders are recycled
// into the arena automatically after consume returns and must not be
// retained. On error (cancellation) consume may have seen only a prefix
// of the chunks and every unconsumed builder is recycled — per the
// substrate contract an error means the sweep's output is discarded.
func OrderedSweep[S Resetter](ctx context.Context, n int, a *Arena[S], cost func(int) float64, fn func(s S, start, end int), consume func(S)) error {
	spans := sweepRanges(n, cost)
	cv := newConveyor[slotItem[S]](len(spans))
	deliver := func(it slotItem[S]) {
		consume(it.val)
		a.PutSlot(it.owner, it.val)
	}
	err := runRanges(ctx, n, spans, func(w, c int, r Range) {
		s := a.GetSlot(w)
		fn(s, r.Start, r.End)
		cv.put(c, slotItem[S]{val: s, owner: w}, deliver)
	})
	if err != nil {
		// Recycle stranded builders without consuming them.
		cv.drain(func(it slotItem[S]) { a.PutSlot(it.owner, it.val) })
		return err
	}
	return nil
}
