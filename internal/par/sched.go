package par

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Sched selects the chunking policy of a sweep.
type Sched int32

const (
	// SchedAdaptive is guided self-scheduling: chunks start large (a
	// fraction of the remaining work per worker) and shrink
	// geometrically toward the tail, so early chunks amortize dispatch
	// cost while late chunks are small enough to backfill stragglers.
	// This is the default.
	SchedAdaptive Sched = iota
	// SchedStatic is the fixed-granularity split (NumChunks near-equal
	// ranges), kept for A/B measurement against the adaptive schedule.
	SchedStatic
)

// String names the schedule for test labels and benchcore output.
func (s Sched) String() string {
	switch s {
	case SchedAdaptive:
		return "adaptive"
	case SchedStatic:
		return "static"
	}
	return "unknown"
}

var schedule atomic.Int32

// SetSchedule fixes the process-wide chunking policy. The schedule
// never changes sweep *output* — only how work is cut into chunks —
// because every merge walks chunks in index order (see the package
// determinism contract).
func SetSchedule(s Sched) { schedule.Store(int32(s)) }

// Schedule returns the current chunking policy.
func Schedule() Sched { return Sched(schedule.Load()) }

// Range is one contiguous half-open chunk [Start, End) of a sweep.
type Range struct{ Start, End int }

// guidedMinFactor bounds how small guided chunks shrink: no chunk is
// smaller than 1/(workers*guidedMinFactor) of the sweep (or of its
// total cost, with hints), which caps a sweep at a few dozen chunks
// per worker while leaving enough tail granularity to backfill a
// straggler.
const guidedMinFactor = 16

// sweepRanges cuts [0, n) into chunk ranges under the current schedule
// and worker count. It is a pure function of (n, Workers(),
// Schedule(), cost) — the same inputs always produce the same
// boundaries, so a sweep's chunking is deterministic even though its
// scheduling order is not. cost, when non-nil, gives the relative cost
// of item i (it must itself be deterministic); chunks then hold
// approximately equal cost instead of equal item counts, so skewed
// sweeps rebalance. A nil (or degenerate, all non-positive) cost falls
// back to item-count chunking.
func sweepRanges(n int, cost func(int) float64) []Range {
	if n <= 0 {
		return nil
	}
	if Schedule() == SchedStatic {
		nc := NumChunks(n)
		spans := make([]Range, nc)
		for c := range spans {
			s, e := chunkRange(c, nc, n)
			spans[c] = Range{s, e}
		}
		return spans
	}
	w := Workers()
	if w < 1 {
		w = 1
	}
	if cost != nil {
		if spans, ok := costRanges(n, w, cost); ok {
			return spans
		}
	}
	// Guided self-scheduling: chunk k covers 1/(2w) of the remaining
	// items, floored at minChunk.
	minChunk := n / (w * guidedMinFactor)
	if minChunk < 1 {
		minChunk = 1
	}
	spans := make([]Range, 0, 4*w+8)
	for start := 0; start < n; {
		rem := n - start
		size := (rem + 2*w - 1) / (2 * w)
		if size < minChunk {
			size = minChunk
		}
		if size > rem {
			size = rem
		}
		spans = append(spans, Range{start, start + size})
		start += size
	}
	return spans
}

// costBufPool recycles the per-item cost buffer costRanges fills, so
// the single pass over the (possibly expensive) cost closure is paid
// once per sweep and warm sweeps allocate nothing for it.
var costBufPool = sync.Pool{New: func() any { return new([]float64) }}

// costRanges is the cost-hinted guided schedule: each chunk closes once
// it has accumulated 1/(2w) of the remaining cost (floored at
// 1/(w*guidedMinFactor) of the total), so a run of expensive items is
// spread across many chunks while a cheap prefix globs into few. The
// cost closure is evaluated exactly once per item into a pooled
// buffer; the accumulation walk is sequential in index order, so every
// boundary is deterministic. ok is false when the hints are degenerate
// (no positive cost anywhere).
func costRanges(n, w int, cost func(int) float64) ([]Range, bool) {
	bufp := costBufPool.Get().(*[]float64)
	buf := *bufp
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	defer func() {
		*bufp = buf
		costBufPool.Put(bufp)
	}()
	total := 0.0
	for i := 0; i < n; i++ {
		c := cost(i)
		if c < 0 {
			c = 0
		}
		buf[i] = c
		total += c
	}
	if !(total > 0) {
		return nil, false
	}
	minCost := total / float64(w*guidedMinFactor)
	spans := make([]Range, 0, 4*w+8)
	remaining := total
	for start := 0; start < n; {
		target := remaining / float64(2*w)
		if target < minCost {
			target = minCost
		}
		acc := 0.0
		end := start
		for end < n && (end == start || acc < target) {
			acc += buf[end]
			end++
		}
		spans = append(spans, Range{start, end})
		remaining -= acc
		start = end
	}
	return spans, true
}

// SweepStats summarizes the execution of one parallel sweep: how the
// dispatched chunks spread across workers and how unbalanced their
// runtime was.
type SweepStats struct {
	// Items is the sweep's index-space size.
	Items int
	// Chunks is how many chunks actually executed (less than the
	// schedule's chunk count when the sweep was canceled).
	Chunks int
	// Workers is the goroutine count the sweep ran on (caller plus
	// acquired helpers).
	Workers int
	// Busy is chunk execution time summed over all workers.
	Busy time.Duration
	// MaxChunk and MeanChunk bound the per-chunk time distribution —
	// a MaxChunk far above MeanChunk is the straggler signature.
	MaxChunk  time.Duration
	MeanChunk time.Duration
	// Imbalance is max worker busy time over mean worker busy time:
	// 1.0 is perfect balance, Workers is one worker doing everything.
	// Always 1 for single-worker sweeps.
	Imbalance float64
}

// workerClock is one worker's per-sweep timing accumulator.
type workerClock struct {
	busy     int64
	maxChunk int64
	chunks   int64
}

// Process-wide sweep counters, surfaced as chatvis_par_* metrics.
var (
	statSweeps    atomic.Int64
	statChunks    atomic.Int64
	statBusyNs    atomic.Int64
	statParSweeps atomic.Int64
	statImbMilli  atomic.Int64 // sum of imbalance*1000 over parallel sweeps
)

// Stats is the process-wide sweep telemetry snapshot.
type Stats struct {
	// Sweeps counts every sweep (serial ones included); Chunks counts
	// chunks dispatched across them; Busy sums chunk execution time
	// over all workers.
	Sweeps int64
	Chunks int64
	Busy   time.Duration
	// ParallelSweeps counts sweeps that ran on two or more workers;
	// AvgImbalance is the mean per-sweep imbalance ratio over exactly
	// those sweeps (0 when none ran).
	ParallelSweeps int64
	AvgImbalance   float64
}

// Snapshot returns the process-wide sweep counters.
func Snapshot() Stats {
	s := Stats{
		Sweeps:         statSweeps.Load(),
		Chunks:         statChunks.Load(),
		Busy:           time.Duration(statBusyNs.Load()),
		ParallelSweeps: statParSweeps.Load(),
	}
	if s.ParallelSweeps > 0 {
		s.AvgImbalance = float64(statImbMilli.Load()) / 1000 / float64(s.ParallelSweeps)
	}
	return s
}

type sweepObsKey struct{}

// WithSweepObserver attaches fn to the context: every sweep that runs
// under it reports its SweepStats after completing (or being
// canceled). fn may be called from any sweep's calling goroutine —
// concurrently, when independent sweeps share the context — so it must
// be safe for concurrent use; SweepAgg is the ready-made aggregator.
func WithSweepObserver(ctx context.Context, fn func(SweepStats)) context.Context {
	return context.WithValue(ctx, sweepObsKey{}, fn)
}

func sweepObserver(ctx context.Context) func(SweepStats) {
	fn, _ := ctx.Value(sweepObsKey{}).(func(SweepStats))
	return fn
}

// recordSweep folds one sweep's worker clocks into its SweepStats,
// updates the process-wide counters and notifies any ctx observer.
func recordSweep(ctx context.Context, items int, clocks []workerClock) {
	var totBusy, maxBusy, maxChunk, chunks int64
	for i := range clocks {
		c := &clocks[i]
		totBusy += c.busy
		chunks += c.chunks
		if c.busy > maxBusy {
			maxBusy = c.busy
		}
		if c.maxChunk > maxChunk {
			maxChunk = c.maxChunk
		}
	}
	s := SweepStats{
		Items:     items,
		Chunks:    int(chunks),
		Workers:   len(clocks),
		Busy:      time.Duration(totBusy),
		MaxChunk:  time.Duration(maxChunk),
		Imbalance: 1,
	}
	if chunks > 0 {
		s.MeanChunk = time.Duration(totBusy / chunks)
	}
	if len(clocks) > 1 && totBusy > 0 {
		s.Imbalance = float64(maxBusy) * float64(len(clocks)) / float64(totBusy)
	}
	statSweeps.Add(1)
	statChunks.Add(chunks)
	statBusyNs.Add(totBusy)
	if len(clocks) > 1 {
		statParSweeps.Add(1)
		statImbMilli.Add(int64(s.Imbalance*1000 + 0.5))
	}
	if obs := sweepObserver(ctx); obs != nil {
		obs(s)
	}
}

// SweepAgg aggregates the stats of every sweep under one request or
// span. Install its Observe method with WithSweepObserver, read the
// result with Summary. Safe for concurrent sweeps.
type SweepAgg struct {
	mu       sync.Mutex
	sweeps   int
	chunks   int
	busy     time.Duration
	maxChunk time.Duration
	maxImb   float64
}

// Observe folds one sweep's stats in; pass it to WithSweepObserver.
func (g *SweepAgg) Observe(s SweepStats) {
	g.mu.Lock()
	g.sweeps++
	g.chunks += s.Chunks
	g.busy += s.Busy
	if s.MaxChunk > g.maxChunk {
		g.maxChunk = s.MaxChunk
	}
	if s.Imbalance > g.maxImb {
		g.maxImb = s.Imbalance
	}
	g.mu.Unlock()
}

// SweepSummary is the aggregate of every sweep a SweepAgg observed.
type SweepSummary struct {
	Sweeps, Chunks int
	Busy, MaxChunk time.Duration
	// MaxImbalance is the worst per-sweep imbalance ratio observed
	// (1.0 when every sweep was balanced or single-worker).
	MaxImbalance float64
}

// Summary snapshots the aggregate.
func (g *SweepAgg) Summary() SweepSummary {
	g.mu.Lock()
	defer g.mu.Unlock()
	return SweepSummary{
		Sweeps: g.sweeps, Chunks: g.chunks,
		Busy: g.busy, MaxChunk: g.maxChunk,
		MaxImbalance: g.maxImb,
	}
}
