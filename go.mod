module chatvis

go 1.22
