package chatvis_bench

import (
	"testing"

	"chatvis/internal/benchkernels"
)

// isosurfaceAllocCeiling is the bench-smoke gate on the flagship
// kernel: a warm Substrate_Isosurface64 op on the arena-pooled SoA
// substrate runs in a few dozen allocations (output buffers only); the
// pre-overhaul figure was ~503k. The ceiling leaves two orders of
// magnitude of headroom over steady state while still catching any
// return of per-cell allocation.
const isosurfaceAllocCeiling = 50_000

// sparseContourAllocCeiling gates the sparse-field contour the same
// way: a mostly-empty sweep must not allocate per-chunk — empty chunk
// builders recycle through the arena's worker-affine slots just like
// full ones do.
const sparseContourAllocCeiling = 50_000

// TestBenchSmokeAllocs runs each compute kernel once (after a warm-up
// op) and reports its allocation profile, failing if Isosurface64
// climbs back over the ceiling — the cheap `make bench-smoke` gate
// that runs in CI without the iteration counts of the full bench
// suite.
func TestBenchSmokeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not a -short test")
	}
	if benchkernels.RaceEnabled {
		t.Skip("allocation ceilings are meaningless under -race shadow allocation")
	}
	for _, name := range benchkernels.ComputeOrder {
		allocs, bytes := benchkernels.MeasureOnce(t, name)
		t.Logf("%-26s %8d allocs/op %12d B/op (warm)", name, allocs, bytes)
		if name == "Substrate_Isosurface64" && allocs > isosurfaceAllocCeiling {
			t.Errorf("%s allocated %d times in one warm op; ceiling is %d — the SoA/arena path regressed",
				name, allocs, isosurfaceAllocCeiling)
		}
		if name == "Substrate_SparseContour64" && allocs > sparseContourAllocCeiling {
			t.Errorf("%s allocated %d times in one warm op; ceiling is %d — the sparse-sweep arena path regressed",
				name, allocs, sparseContourAllocCeiling)
		}
	}
}
