# CI entry points. `make ci` is the gate: formatting, vet, the plan
# validation of every example pipeline, the full test suite under the
# race detector (the eval grid runner, the llm cache/registry and the
# chatvisd queue/coalescing paths are exercised concurrently in their
# tests), and the daemon smoke step.

GO ?= go

.PHONY: ci fmt vet test test-race test-race-service bench bench-core bench-diff bench-grid bench-serve bench-smoke build serve smoke smoke-cluster plan-validate lint-metrics calibrate-smoke

ci: fmt vet plan-validate lint-metrics calibrate-smoke test-race bench-smoke smoke smoke-cluster

# Metrics contract gate: scrape a fully-attached in-memory daemon and
# fail on any chatvis_* name that is not snake_case, lacks HELP/TYPE
# metadata, or is registered more than once.
lint-metrics:
	$(GO) run ./cmd/metriclint

# Routing calibration gate: probe the sim registry twice over a fixed
# 2-scenario slice into a scratch directory and fail unless the
# measurements are deterministic and the compiled routes price
# edit-intent below cold writes (docs/routing.md). Writes no profiles.
calibrate-smoke:
	$(GO) run ./cmd/calibrate -smoke -q 		-data $${TMPDIR:-/tmp}/chatvis-calibrate-smoke/data 		-out $${TMPDIR:-/tmp}/chatvis-calibrate-smoke/out

# Compile + schema-validate every example pipeline (scenario ground
# truths, plan-native IRs, writer/intent agreement) — fails fast on any
# schema or IR drift, before the test suite renders anything.
plan-validate:
	$(GO) run ./cmd/planlint

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Focused race pass over the serving subsystem (queue, coalescing,
# store, handlers, daemon wiring) — a faster loop than the full suite.
test-race-service:
	$(GO) test -race -count=1 ./internal/service ./cmd/chatvisd

# Run the chatvisd HTTP daemon locally.
serve:
	$(GO) run ./cmd/chatvisd -addr :8080 -data data -out out

# CI smoke: start the daemon wiring on a real listener, submit a job
# against the stub LLM profile, poll it to completion, fetch artifacts
# by hash, drive a two-turn session (create → edit → assert only the
# changed stage re-executed), and drain the queue.
smoke:
	$(GO) test -run 'TestDaemonSmoke|TestDaemonConcurrentIdenticalSubmissions|TestDaemonSessionTwoTurns' -count=1 ./cmd/chatvisd

# Cluster smoke: boot three full daemons on loopback sharing one store,
# post the identical prompt to all three at once, and require exactly
# one pipeline execution fleet-wide; then drive a session turn through a
# non-owner node to prove shard-ring forwarding. The trace propagation
# step submits through a non-owner and requires ONE stitched trace
# (queue wait, LLM tokens, plan stages, forward hop) across both nodes.
smoke-cluster:
	$(GO) test -race -run 'TestClusterSmoke3Nodes|TestClusterTracePropagation' -count=1 ./cmd/chatvisd

# All paper-reproduction benchmarks (tables, figures, ablations).
bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable perf trajectory of the compute substrate: runs the
# BenchmarkSubstrate_* kernels at worker counts {1,4,8} and rewrites
# BENCH_substrate.json (ns/op, allocs/op, B/op, GOMAXPROCS, speedup)
# so future PRs can diff hot-path performance.
bench-core:
	$(GO) run ./cmd/benchcore -out BENCH_substrate.json

# Perf regression gate: re-run the substrate kernels and fail when any
# (kernel, worker-count) pair regresses >25% in ns/op, allocs/op, B/op
# or parallel speedup vs the committed BENCH_substrate.json baseline.
# Refuses baselines recorded on a different core count (timings would
# compare machines, not code) unless -allow-cpu-mismatch downgrades
# that to allocation-only gating. Run on a quiet machine.
bench-diff:
	$(GO) run ./cmd/benchcore -diff BENCH_substrate.json

# Fast allocation smoke gate (part of `make ci`): run each compute
# kernel once warm and fail if Substrate_Isosurface64 allocates past
# its ceiling — catches any return of per-cell allocation without the
# runtime of the full benchmark suite.
bench-smoke:
	$(GO) test -run TestBenchSmokeAllocs -count=1 -v .

# Just the serial-vs-concurrent grid sweep comparison.
bench-grid:
	$(GO) test -run xxx -bench BenchmarkGridThroughput -benchtime 3x .

# The serving-layer throughput benchmark (coalescing + store hits).
bench-serve:
	$(GO) test -run xxx -bench BenchmarkServiceThroughput -benchtime 20x .
