# CI entry points. `make ci` is the gate: formatting, vet, and the full
# test suite under the race detector (the eval grid runner and the llm
# cache/registry are exercised concurrently in their tests).

GO ?= go

.PHONY: ci fmt vet test test-race bench bench-grid build

ci: fmt vet test-race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# All paper-reproduction benchmarks (tables, figures, ablations).
bench:
	$(GO) test -bench=. -benchmem .

# Just the serial-vs-concurrent grid sweep comparison.
bench-grid:
	$(GO) test -run xxx -bench BenchmarkGridThroughput -benchtime 3x .
